"""Benchmark regenerating Table 3 (overall fuzzing effectiveness).

Run with `pytest benchmarks/bench_table3.py --benchmark-only -s` to print the
reproduced table alongside the timing.
"""

from repro.experiments import run_table3


def test_table3(benchmark, ctx):
    result = benchmark.pedantic(run_table3, args=(ctx,), rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.rows
