"""Benchmark: what the resilience wrapper costs when nothing goes wrong.

The workload is a full KernelGPT generation run over the determinism-matrix
handlers, measured two ways in the same process:

* **bare**: the plain oracle backend — the historical fault-free path;
* **wrapped**: ``ResilientBackend(FaultyBackend(oracle, rate=0))`` — the
  whole resilience stack armed but idle, exactly what ``--fault-plan
  rate=0`` (or ``--retry`` alone) costs production runs.

Before timing is reported the two paths are asserted *exactly* equivalent:
byte-identical suites and an identical backend query count (the wrapper adds
zero extra round-trips at rate 0 — retries only ever re-send failed
sub-batches, and there are none).  The headline is ``overhead_pct``, the
best-of-N wall-clock cost of the idle wrapper; a chaos row at 20% faults is
also measured for the record (its ``retries`` count shows the machinery
actually engaged) but is not gated — convergence cost under chaos is policy,
not overhead.

CI usage (the chaos-smoke job)::

    python benchmarks/bench_resilience.py --check benchmarks/BENCH_resilience.json \
        --json BENCH_resilience.json

``--check`` exits non-zero when the measured idle overhead exceeds the
recorded trajectory's ``check_ceiling``; ``--json`` writes the measured row
for the artifact upload.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core import KernelGPT  # noqa: E402
from repro.extractor import KernelExtractor  # noqa: E402
from repro.kernel import build_default_kernel  # noqa: E402
from repro.llm import (  # noqa: E402
    FaultPlan,
    FaultyBackend,
    OracleBackend,
    ResilientBackend,
)

HANDLERS = ["dm_ctl_fops", "cec_devnode_fops", "rds_proto_ops", "udmabuf_fops"]


def _wrapped(rate: float, seed: int = 7) -> ResilientBackend:
    return ResilientBackend(FaultyBackend(OracleBackend(), FaultPlan(rate=rate, seed=seed)))


def _run_once(kernel, extractor, backend, scale: int) -> tuple[float, dict, int, int]:
    """``scale`` fresh generation runs on one backend; returns
    (wall_s, suites, queries_per_run, retries).  A fresh :class:`KernelGPT`
    per iteration defeats the memo caches, so each iteration replays the
    full query stream — the loop amortizes timer noise, not work."""
    started = time.perf_counter()
    for _ in range(scale):
        generator = KernelGPT(kernel, backend, extractor=extractor)
        run = generator.generate_for_handlers(HANDLERS)
    wall = time.perf_counter() - started
    suites = {handler: result.suite_text() for handler, result in run.results.items()}
    retries = backend.stats.retries if isinstance(backend, ResilientBackend) else 0
    assert backend.usage.queries % scale == 0, "iterations issued unequal query streams"
    return wall, suites, backend.usage.queries // scale, retries


def measure(repetitions: int, scale: int) -> dict:
    kernel = build_default_kernel("small")
    extractor = KernelExtractor(kernel)

    bare_walls, wrapped_walls, chaos_walls = [], [], []
    baseline = None
    chaos_retries = 0
    # Interleave the flavours so drift (thermal, allocator warm-up) hits all
    # of them equally; best-of-N then discards the noise.
    for _ in range(repetitions):
        wall, suites, queries, _ = _run_once(kernel, extractor, OracleBackend(), scale)
        bare_walls.append(wall)
        if baseline is None:
            baseline = (suites, queries)
        assert (suites, queries) == baseline, "bare runs diverged"

        wall, suites, queries, retries = _run_once(
            kernel, extractor, _wrapped(rate=0.0), scale
        )
        wrapped_walls.append(wall)
        assert suites == baseline[0], "idle wrapper changed output bytes"
        assert queries == baseline[1], "idle wrapper added backend round-trips"
        assert retries == 0, "idle wrapper retried without faults"

        wall, suites, queries, retries = _run_once(
            kernel, extractor, _wrapped(rate=0.2), scale
        )
        chaos_walls.append(wall)
        assert suites == baseline[0], "chaos run failed to converge to baseline bytes"
        assert queries == baseline[1], "chaos run double-charged converged queries"
        chaos_retries = max(chaos_retries, retries)
    assert chaos_retries > 0, "20% chaos injected no faults — dead machinery?"

    bare, wrapped, chaos = min(bare_walls), min(wrapped_walls), min(chaos_walls)
    return {
        "handlers": len(HANDLERS),
        "queries": baseline[1],
        "repetitions": repetitions,
        "scale": scale,
        "bare_wall_s": round(bare, 4),
        "wrapped_wall_s": round(wrapped, 4),
        "overhead_pct": round((wrapped / bare - 1.0) * 100, 2),
        "chaos_wall_s": round(chaos, 4),
        "chaos_retries": chaos_retries,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Resilience wrapper benchmark: idle overhead at fault rate 0"
    )
    parser.add_argument("--repetitions", type=int, default=3,
                        help="interleaved runs per flavour; best-of-N is reported")
    parser.add_argument("--scale", type=int, default=25,
                        help="generation runs per timed measurement (amortizes "
                             "timer noise on the ~15ms single-run workload)")
    parser.add_argument("--json", type=Path, default=None,
                        help="write the measured trajectory row to this JSON file")
    parser.add_argument("--check", type=Path, default=None,
                        help="fail if idle overhead exceeds the recorded "
                             "trajectory's check_ceiling in this JSON file")
    args = parser.parse_args(argv)

    row = measure(args.repetitions, args.scale)
    print(f"generation x{row['handlers']} handlers ({row['queries']} queries): "
          f"bare {row['bare_wall_s']:.2f}s  idle-wrapped {row['wrapped_wall_s']:.2f}s "
          f"(overhead {row['overhead_pct']:+.2f}%)  "
          f"20%-chaos {row['chaos_wall_s']:.2f}s with {row['chaos_retries']} retries "
          f"(byte-identical, zero extra round-trips)")

    exit_code = 0
    if args.check is not None:
        recorded = json.loads(args.check.read_text())
        ceiling = recorded["rows"][-1].get("check_ceiling", 5.0)
        measured = row["overhead_pct"]
        if measured > ceiling:
            print(f"FAIL: measured idle overhead {measured:.2f}% exceeds the recorded "
                  f"ceiling {ceiling:.2f}%", file=sys.stderr)
            exit_code = 1
        else:
            print(f"check ok: {measured:.2f}% <= ceiling {ceiling:.2f}%")
    if args.json is not None:
        # The ceiling for future --check runs: the 2% design budget, widened
        # only if this machine already measured noisier-than-budget.
        row["check_ceiling"] = max(5.0, round(row["overhead_pct"] * 2.5, 2))
        payload = {"benchmark": "resilience-overhead", "rows": [row]}
        if args.json.exists():
            try:
                existing = json.loads(args.json.read_text())
                payload["rows"] = existing.get("rows", []) + payload["rows"]
            except (ValueError, KeyError):
                pass
        args.json.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote trajectory row to {args.json}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
