"""Benchmark: cold campaign vs digest-keyed partial re-run.

The workload is the full quick-preset evaluation campaign — nine report
tasks over the generate → validate → fuzz pipeline plus the three quality
gates — run twice through the real CLI in separate interpreter processes
(so no in-process cache warmth leaks between runs):

* **cold**: an empty artifact store; every task executes;
* **rerun**: the same store; every cacheable task's input digest matches,
  so the scheduler serves it as ``task_reused`` and only the gates (which
  never reuse — they verify the present run) re-execute.

Before timing is reported, the two runs' stdout and ``--output`` files are
asserted byte-identical and the rerun's event log is asserted to have
reused every report task — the speedup only counts for a correct partial
re-run.  The headline is ``reuse_speedup`` (cold wall / rerun wall).

CI usage (the campaign smoke job)::

    python benchmarks/bench_orchestrator.py --check benchmarks/BENCH_orchestrator.json \
        --json BENCH_orchestrator.json

``--check`` exits non-zero when the measured reuse speedup falls below the
recorded trajectory's ``check_floor``; ``--json`` writes the measured row
for the artifact upload.
"""

from __future__ import annotations

import argparse
import filecmp
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.orchestrator.events import read_events  # noqa: E402


def run_campaign_cli(store: Path, events: Path, output: Path, preset: str) -> tuple[float, bytes]:
    """One campaign CLI run in a fresh interpreter; returns (wall_s, stdout)."""
    env = os.environ.copy()
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable, "-m", "repro.experiments.runner", "campaign",
        "--preset", preset,
        "--store", str(store),
        "--events", str(events),
        "--output", str(output),
        "--bench", str(REPO / "benchmarks"),
    ]
    started = time.perf_counter()
    completed = subprocess.run(
        command, cwd=REPO, env=env, check=True,
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
    )
    return time.perf_counter() - started, completed.stdout


def assert_identical_outputs(cold_dir: Path, warm_dir: Path) -> int:
    """Every rendered table must be byte-identical across the two runs."""
    cold_files = sorted(path.name for path in cold_dir.iterdir())
    warm_files = sorted(path.name for path in warm_dir.iterdir())
    assert cold_files == warm_files, (cold_files, warm_files)
    match, mismatch, errors = filecmp.cmpfiles(cold_dir, warm_dir, cold_files, shallow=False)
    assert not mismatch and not errors, (mismatch, errors)
    return len(match)


def measure(preset: str) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-orchestrator-") as scratch_name:
        scratch = Path(scratch_name)
        store = scratch / "store"
        cold_wall, cold_stdout = run_campaign_cli(
            store, scratch / "events-cold.jsonl", scratch / "out-cold", preset
        )
        rerun_wall, rerun_stdout = run_campaign_cli(
            store, scratch / "events-rerun.jsonl", scratch / "out-rerun", preset
        )
        assert cold_stdout == rerun_stdout, "rerun stdout diverged from the cold run"
        tables = assert_identical_outputs(scratch / "out-cold", scratch / "out-rerun")
        cold_events = read_events(scratch / "events-cold.jsonl")
        rerun_events = read_events(scratch / "events-rerun.jsonl")
        reused = [e["task_id"] for e in rerun_events if e["type"] == "task_reused"]
        reused_reports = [task_id for task_id in reused if task_id.startswith("report:")]
        assert len(reused_reports) == tables, (reused_reports, tables)
        assert not [e for e in cold_events if e["type"] == "task_reused"], \
            "cold run unexpectedly reused tasks"
        tasks = sum(1 for e in cold_events if e["type"] == "task_scheduled")
    return {
        "preset": preset,
        "tasks": tasks,
        "tables": tables,
        "reused": len(reused),
        "cold_wall_s": round(cold_wall, 4),
        "rerun_wall_s": round(rerun_wall, 4),
        "reuse_speedup": round(cold_wall / rerun_wall, 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Campaign orchestrator benchmark: cold run vs digest-keyed partial re-run"
    )
    parser.add_argument("--preset", choices=["quick", "paper"], default="quick")
    parser.add_argument("--json", type=Path, default=None,
                        help="write the measured trajectory row to this JSON file")
    parser.add_argument("--check", type=Path, default=None,
                        help="fail if the reuse speedup drops below the recorded "
                             "trajectory's check_floor in this JSON file")
    args = parser.parse_args(argv)

    row = measure(args.preset)
    print(f"campaign ({row['tasks']} tasks, {row['tables']} tables, preset {row['preset']}): "
          f"cold {row['cold_wall_s']:.2f}s  rerun {row['rerun_wall_s']:.2f}s "
          f"({row['reused']} tasks reused)  reuse speedup {row['reuse_speedup']:.2f}x "
          f"(byte-identical outputs)")

    exit_code = 0
    if args.check is not None:
        recorded = json.loads(args.check.read_text())
        floor = recorded["rows"][-1].get("check_floor", 1.0)
        measured = row["reuse_speedup"]
        if measured < floor:
            print(f"FAIL: measured reuse speedup {measured:.2f}x is below the recorded "
                  f"floor {floor:.2f}x", file=sys.stderr)
            exit_code = 1
        else:
            print(f"check ok: {measured:.2f}x >= floor {floor:.2f}x")
    if args.json is not None:
        # The floor for future --check runs: the measured ratio with a noise
        # margin, never below break-even.
        row["check_floor"] = max(1.2, round(row["reuse_speedup"] * 0.6, 2))
        payload = {"benchmark": "campaign-orchestrator", "rows": [row]}
        if args.json.exists():
            try:
                existing = json.loads(args.json.read_text())
                payload["rows"] = existing.get("rows", []) + payload["rows"]
            except (ValueError, KeyError):
                pass
        args.json.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote trajectory row to {args.json}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
