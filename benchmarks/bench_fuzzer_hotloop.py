"""Benchmark: string-set fuzz loop baseline vs the interned bitmap hot loop.

The workload is the experiment-representative suite mix — the existing
Syzkaller corpus plus KernelGPT-generated driver/socket suites (a delegating
driver, a secondary-handler-heavy driver, a socket) — fuzzed at budgets 500
and 2000 through both implementations:

* **string-set**: the pre-bitmap implementation preserved verbatim in
  ``repro.fuzzer.reference`` (ladder generator, f-string labels, linear
  ``_match_ioctl`` scans, string-set unions);
* **bitmap**: the compiled hot loop (``repro.fuzzer``) — value plans,
  dict dispatch, interned indices, ``CoverageBitmap`` folding.

Every cell asserts the bitmap campaign's ``labels()``, crash ids, corpus
size and call counts equal the string-set run before timing is reported, so
a speedup is only ever printed for a byte-identical result.  ``--jobs``
additionally times the engine fan-out of repeated bitmap campaigns (serial
vs a 4-worker process pool), the path whose task results shrank from
thousands of pickled label strings to one integer per campaign.  The
fan-out row separates fixed pool **setup** (spawn + payload pickling,
measured by a tiny probe run) from **steady-state** campaign time and
derives the ``crossover_budget`` where fan-out starts to pay — see
:func:`measure_jobs`.

CI usage (the fuzz-hotloop smoke job)::

    python benchmarks/bench_fuzzer_hotloop.py --check benchmarks/BENCH_fuzzer.json \
        --json BENCH_fuzzer.json

``--check`` exits non-zero when the measured budget-2000 speedup falls below
the recorded trajectory's ``check_floor`` (the recorded ratio with a noise
margin); ``--json`` writes the measured row for the artifact upload.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines import build_syzkaller_corpus  # noqa: E402
from repro.core import KernelGPT  # noqa: E402
from repro.extractor import KernelExtractor  # noqa: E402
from repro.fuzzer import run_campaign, run_repeated_campaigns  # noqa: E402
from repro.fuzzer.reference import run_reference_campaign  # noqa: E402
from repro.kernel import build_default_kernel  # noqa: E402
from repro.llm import OracleBackend  # noqa: E402

#: Benchmark seeds/budgets: small enough for CI, large enough to dominate noise.
SEED = 13
BUDGETS = (500, 2000)
ROUNDS = 3  # best-of rounds per cell


def build_suites():
    """The representative mix: existing corpus + generated driver/socket suites."""
    kernel = build_default_kernel("small")
    extractor = KernelExtractor(kernel)
    generator = KernelGPT(kernel, OracleBackend(), extractor=extractor)
    suites = {"syzkaller": build_syzkaller_corpus(kernel).flatten("syzkaller")}
    for label, handler in (("dm", "dm_ctl_fops"), ("kvm", "kvm_fops"), ("rds", "rds_proto_ops")):
        result = generator.generate_for_handler(handler)
        if result.valid:
            suites[label] = result.suite
    return kernel, suites


def assert_equivalent(bitmap_campaign, reference_campaign) -> None:
    """A speedup only counts for a byte-identical campaign."""
    assert bitmap_campaign.coverage.labels() == reference_campaign.coverage, \
        "bitmap coverage labels diverge from the string-set baseline"
    assert sorted(bitmap_campaign.crash_log.bug_ids()) == sorted(reference_campaign.crash_log.bug_ids())
    assert bitmap_campaign.crash_log.observations == reference_campaign.crash_log.observations
    assert bitmap_campaign.corpus_size == reference_campaign.corpus_size
    assert bitmap_campaign.executed_calls == reference_campaign.executed_calls


def measure_budget(kernel, suites, budget: int) -> dict:
    """Best-of-ROUNDS aggregate times over the suite mix at one budget."""
    best_reference = best_bitmap = float("inf")
    for _ in range(ROUNDS):
        reference_seconds = bitmap_seconds = 0.0
        for suite in suites.values():
            started = time.perf_counter()
            reference = run_reference_campaign(kernel, suite, SEED, budget)
            reference_seconds += time.perf_counter() - started
            started = time.perf_counter()
            bitmap = run_campaign(kernel, suite, SEED, budget)
            bitmap_seconds += time.perf_counter() - started
            assert_equivalent(bitmap, reference)
        best_reference = min(best_reference, reference_seconds)
        best_bitmap = min(best_bitmap, bitmap_seconds)
    return {
        "stringset_s": round(best_reference, 4),
        "bitmap_s": round(best_bitmap, 4),
        "speedup": round(best_reference / best_bitmap, 2),
    }


#: Budget for the process-pool setup probe: small enough that the campaigns
#: themselves are negligible, so the probe's wall time is almost entirely
#: pool startup + payload pickling.
SETUP_PROBE_BUDGET = 1


def measure_jobs(kernel, suites, budget: int, jobs: int) -> dict:
    """Serial vs process-pool engine fan-out, with setup and steady state split.

    A process pool pays a fixed cost per run — interpreter spawn, imports,
    pickling the kernel/suite payload into each worker — before any campaign
    executes.  Folding that into one wall-clock number made the recorded
    fan-out row look like a hot-loop regression (process slower than serial)
    when the hot loop was fine and the budget was simply too small to
    amortize startup.  So the row now separates the two regimes:

    * ``process_setup_s`` — wall time of a probe run at ``SETUP_PROBE_BUDGET``
      (campaign work ≈ 0, so this is the fixed overhead);
    * ``process_steady_s`` — the full run minus the probe: the actual
      campaign execution time once workers are up;
    * ``crossover_budget`` — the per-campaign program budget above which the
      process pool beats serial: setup is amortized when
      ``jobs * budget * (serial_rate - steady_rate) > setup_s``.  ``None``
      when steady-state process throughput never beats serial (e.g. a
      single-core host, where the pool degrades to one worker and only adds
      overhead) — there is no budget at which fan-out pays off there.

    A future hot-loop regression now shows up in ``process_steady_s``
    (or the budget cells) specifically, not blurred into startup noise.
    """
    suite = suites["syzkaller"]
    started = time.perf_counter()
    serial = run_repeated_campaigns(kernel, suite, repetitions=jobs, budget_programs=budget)
    serial_seconds = time.perf_counter() - started
    started = time.perf_counter()
    run_repeated_campaigns(
        kernel, suite, repetitions=jobs, budget_programs=SETUP_PROBE_BUDGET,
        jobs=jobs, executor="process",
    )
    setup_seconds = time.perf_counter() - started
    started = time.perf_counter()
    sharded = run_repeated_campaigns(
        kernel, suite, repetitions=jobs, budget_programs=budget,
        jobs=jobs, executor="process",
    )
    total_seconds = time.perf_counter() - started
    steady_seconds = max(total_seconds - setup_seconds, 0.0)
    assert [c.coverage for c in sharded] == [c.coverage for c in serial], \
        "process-sharded campaigns diverge from serial"
    total_programs = jobs * budget
    serial_rate = serial_seconds / total_programs
    steady_rate = steady_seconds / total_programs
    if serial_rate > steady_rate:
        crossover = int(setup_seconds / (jobs * (serial_rate - steady_rate))) + 1
    else:
        crossover = None
    return {
        "repetitions": jobs,
        "serial_s": round(serial_seconds, 4),
        "process_total_s": round(total_seconds, 4),
        "process_setup_s": round(setup_seconds, 4),
        "process_steady_s": round(steady_seconds, 4),
        "crossover_budget": crossover,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Fuzz hot-loop benchmark: string-set vs bitmap")
    parser.add_argument("--budgets", default=",".join(str(b) for b in BUDGETS),
                        help="comma-separated program budgets (default: 500,2000)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="workers for the engine fan-out row (0 disables; default: 4)")
    parser.add_argument("--json", type=Path, default=None,
                        help="write the measured trajectory row to this JSON file")
    parser.add_argument("--check", type=Path, default=None,
                        help="fail if the budget-2000 speedup drops below the recorded "
                             "trajectory's check_floor in this JSON file")
    args = parser.parse_args(argv)
    budgets = [int(part) for part in args.budgets.split(",") if part.strip()]

    kernel, suites = build_suites()
    # Warm the per-kernel plan/space caches outside the measured region.
    run_campaign(kernel, suites["syzkaller"], 1, 50)
    run_reference_campaign(kernel, suites["syzkaller"], 1, 50)

    row: dict = {"suites": sorted(suites), "seed": SEED, "budgets": {}}
    for budget in budgets:
        cell = measure_budget(kernel, suites, budget)
        row["budgets"][str(budget)] = cell
        print(f"budget {budget:5d}: stringset {cell['stringset_s']:.3f}s  "
              f"bitmap {cell['bitmap_s']:.3f}s  speedup {cell['speedup']:.2f}x "
              f"({len(suites)} suites, byte-identical)")
    if args.jobs:
        fanout = measure_jobs(kernel, suites, max(budgets), args.jobs)
        row["fanout"] = fanout
        crossover = fanout["crossover_budget"]
        crossover_note = (
            f"crossover at budget ~{crossover}" if crossover is not None
            else "no crossover (steady-state not faster than serial on this host)"
        )
        print(f"engine fan-out ({fanout['repetitions']} campaigns, budget {max(budgets)}): "
              f"serial {fanout['serial_s']:.3f}s  process --jobs {args.jobs} "
              f"{fanout['process_total_s']:.3f}s "
              f"(setup {fanout['process_setup_s']:.3f}s + steady "
              f"{fanout['process_steady_s']:.3f}s; {crossover_note}; identical coverage)")

    exit_code = 0
    headline = row["budgets"].get("2000") or row["budgets"][str(max(budgets))]
    if args.check is not None:
        if "2000" not in row["budgets"]:
            # The recorded floor is derived from the budget-2000 cell;
            # comparing a different budget against it would gate on the
            # wrong workload.
            print("FAIL: --check requires budget 2000 to be measured "
                  "(pass --budgets including 2000)", file=sys.stderr)
            return 1
        recorded = json.loads(args.check.read_text())
        reference_row = recorded["rows"][-1]
        floor = reference_row.get("check_floor", 1.0)
        recorded_cell = reference_row.get("budgets", {}).get("2000")
        recorded_note = f" (recorded speedup {recorded_cell['speedup']:.2f}x)" if recorded_cell else ""
        measured = headline["speedup"]
        if measured < floor:
            print(f"FAIL: measured speedup {measured:.2f}x is below the recorded "
                  f"floor {floor:.2f}x{recorded_note}", file=sys.stderr)
            exit_code = 1
        else:
            print(f"check ok: {measured:.2f}x >= floor {floor:.2f}x")
    if args.json is not None:
        # The floor for future --check runs: the measured ratio with a noise
        # margin, never below break-even.
        row["check_floor"] = max(1.2, round(headline["speedup"] * 0.6, 2))
        payload = {"benchmark": "fuzzer-hotloop", "rows": [row]}
        if args.json.exists():
            try:
                existing = json.loads(args.json.read_text())
                payload["rows"] = existing.get("rows", []) + payload["rows"]
            except (ValueError, KeyError):
                pass
        args.json.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote trajectory row to {args.json}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
