"""Benchmark regenerating Figure 7 (missing-spec distribution).

Run with `pytest benchmarks/bench_figure7.py --benchmark-only -s` to print the
reproduced table alongside the timing.
"""

from repro.experiments import run_figure7


def test_figure7(benchmark, ctx):
    result = benchmark.pedantic(run_figure7, args=(ctx,), rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.rows
