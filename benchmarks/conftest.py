"""Shared benchmark fixtures: one evaluation context per session."""

import pytest

from repro.experiments import EvaluationContext, quick


@pytest.fixture(scope="session")
def ctx():
    """Full-scale kernel, quick budgets; shared across every benchmark module."""
    return EvaluationContext(quick())
