"""Benchmark regenerating Table 2 (new syscall/type descriptions).

Run with `pytest benchmarks/bench_table2.py --benchmark-only -s` to print the
reproduced table alongside the timing.
"""

from repro.experiments import run_table2


def test_table2(benchmark, ctx):
    result = benchmark.pedantic(run_table2, args=(ctx,), rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.rows
