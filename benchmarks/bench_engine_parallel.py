"""Benchmark: serial baseline vs engine-backed thread and process sharding.

The workload mirrors what the evaluation actually does — the full generation
run over the incomplete handlers, table5-style per-driver regeneration, and
repeated fuzz campaigns — executed under three schedulers:

* **serial**: no engine; every handler regenerated from scratch, campaigns
  back-to-back (the pre-engine behaviour);
* **thread (jobs=4)**: sessions fan out across threads, LLM/extractor
  lookups hit the single-flight memo cache (so the regeneration stage is
  pure cache traffic), campaigns run as one batch;
* **process (jobs=4)**: generation task payloads are pickled to worker
  processes (real cores, no shared caches — each worker pays the full
  oracle analysis for its handlers), campaigns fan out the same way.

Run with ``pytest benchmarks/bench_engine_parallel.py --benchmark-only -s``;
pytest-benchmark prints the rows in one comparison group.  The thread-vs-
process comparison is the scaling experiment: threads win on memoization
(shared caches, no pickling) while processes win on multi-core hosts where
the GIL, not the cache, is the bottleneck.  The last tests assert all paths
produce identical suites and campaign coverage, and that the engine path is
measurably faster than the serial baseline on this workload.
"""

import time

import pytest

from repro.core import KernelGPT
from repro.engine import ExecutionEngine, ProcessPoolExecutor
from repro.fuzzer import run_campaign_matrix
from repro.kernel import TABLE5_DRIVER_NAMES
from repro.llm import OracleBackend

#: Campaign settings: small enough for CI, large enough to dominate noise.
REPETITIONS = 3
BUDGET_PROGRAMS = 600
#: The quick-preset runner regenerates the table-5 drivers three times after
#: the full generation run (table5, ablation_iterative, ablation_llm-style
#: passes); the workload mirrors that redundancy.
REGEN_ROUNDS = 3


def _workload(ctx, engine):
    """Generation run + per-driver regeneration rounds + campaign matrix."""
    generator = KernelGPT(
        ctx.kernel, OracleBackend(), extractor=ctx.extractor, engine=engine
    )
    run = generator.generate_for_handlers(list(ctx.selection.all_handlers), engine=engine)
    regenerated = {}
    for _ in range(REGEN_ROUNDS):
        for name in TABLE5_DRIVER_NAMES:
            handler = ctx.kernel.record_for_name(name).handler_name
            regenerated[handler] = generator.generate_for_handler(handler)
    suites = {
        "syzkaller": ctx.syzkaller_corpus.flatten("syzkaller"),
        "kernelgpt": run.merged_suite(),
    }
    campaigns = run_campaign_matrix(
        ctx.kernel, suites,
        repetitions=REPETITIONS,
        budget_programs=BUDGET_PROGRAMS,
        base_seed=7,
        engine=engine,
    )
    return run, regenerated, campaigns


def _warm(ctx):
    """Build the shared substrates outside the measured region."""
    ctx.kernel, ctx.extractor, ctx.selection, ctx.syzkaller_corpus


@pytest.mark.benchmark(group="engine-parallel")
def test_engine_serial(benchmark, ctx):
    _warm(ctx)
    run, _, _ = benchmark.pedantic(_workload, args=(ctx, None), rounds=1, iterations=1)
    assert run.valid_results()


@pytest.mark.benchmark(group="engine-parallel")
def test_engine_parallel_jobs4(benchmark, ctx):
    _warm(ctx)
    engine = ExecutionEngine(jobs=4)
    run, _, _ = benchmark.pedantic(_workload, args=(ctx, engine), rounds=1, iterations=1)
    assert run.valid_results()
    stats = engine.cache_stats()
    print()
    print(f"llm cache: {stats['llm']['hits']} hits / {stats['llm']['misses']} misses "
          f"({stats['llm']['hit_rate']:.1%}); "
          f"extract cache: {stats['extract']['hits']} hits / {stats['extract']['misses']} misses; "
          f"session cache: {stats['session']['hits']} hits / {stats['session']['misses']} misses")


@pytest.mark.benchmark(group="engine-parallel")
def test_engine_process_jobs4(benchmark, ctx):
    """Process sharding: picklable payloads on real cores, no shared caches."""
    _warm(ctx)
    engine = ExecutionEngine(jobs=4, executor=ProcessPoolExecutor(4))
    run, _, _ = benchmark.pedantic(_workload, args=(ctx, engine), rounds=1, iterations=1)
    assert run.valid_results()


def test_thread_vs_process_scaling(ctx):
    """Thread vs process sharding on the same workload, identical outputs.

    On a single-core host threads win outright (shared memo caches, no
    pickling); on a multi-core host processes close the gap on the
    generation fan-out because each worker gets a real core.  The assertion
    is about *correctness under both schedulers* — the wall-times are
    printed for the scaling comparison, not asserted, because the winner is
    host-dependent by design.
    """
    _warm(ctx)

    thread_engine = ExecutionEngine(jobs=4)
    started = time.perf_counter()
    thread_run, _, thread_campaigns = _workload(ctx, thread_engine)
    thread_seconds = time.perf_counter() - started

    process_engine = ExecutionEngine(jobs=4, executor=ProcessPoolExecutor(4))
    started = time.perf_counter()
    process_run, _, process_campaigns = _workload(ctx, process_engine)
    process_seconds = time.perf_counter() - started

    assert {h: r.suite_text() for h, r in process_run.results.items()} == \
           {h: r.suite_text() for h, r in thread_run.results.items()}
    for label in thread_campaigns:
        assert [c.coverage for c in process_campaigns[label]] == \
               [c.coverage for c in thread_campaigns[label]]
    print()
    print(f"thread(jobs=4) {thread_seconds:.2f}s vs process(jobs=4) {process_seconds:.2f}s "
          f"on {__import__('os').cpu_count()} core(s)")


def test_batched_vs_per_query_rows(ctx):
    """Batched stage submission vs per-query submission, identical outputs.

    The two rows compare the batched protocol (each stage's prompts as one
    ``complete_batch``, the type stage as a wavefront) against the strictly
    per-query schedule on the full generation run.  With the in-process
    oracle the win is bounded (no network round-trips to amortize) — the
    rows exist to pin the overhead at ~zero and the outputs at
    byte-identical; against a real provider the batched path is the one
    that amortizes per-call cost.  CI uploads these rows as an artifact.
    """
    _warm(ctx)
    rows = {}
    for label, batched in (("per-query", False), ("batched", True)):
        engine = ExecutionEngine(jobs=1)
        generator = KernelGPT(
            ctx.kernel, OracleBackend(), extractor=ctx.extractor,
            engine=engine, batch_queries=batched,
        )
        started = time.perf_counter()
        run = generator.generate_for_handlers(list(ctx.selection.all_handlers), engine=engine)
        seconds = time.perf_counter() - started
        stats = engine.cache_stats()["llm"]
        rows[label] = (seconds, run, stats)
    per_query_suites = {h: r.suite_text() for h, r in rows["per-query"][1].results.items()}
    batched_suites = {h: r.suite_text() for h, r in rows["batched"][1].results.items()}
    assert batched_suites == per_query_suites
    print()
    for label, (seconds, run, stats) in rows.items():
        print(f"{label:9s} {seconds:.2f}s  handlers={len(run.results)}  "
              f"llm-cache {stats['hits']} hits / {stats['misses']} misses")
    ratio = rows["per-query"][0] / max(rows["batched"][0], 1e-9)
    print(f"batched vs per-query: {ratio:.2f}x (byte-identical suites)")


def test_repair_mode_rows(ctx):
    """Batched transactional repair vs the per-query loop, equal outcomes.

    The batched-repair row: the same table1 handler set generated under an
    error-prone analyst (every handler needs repair, none is unrepairable —
    the configuration that makes the repair phase the dominant LLM cost),
    once with the historical per-query loop and once transactionally.  The
    row reports total repair LLM round-trips and the queries saved per
    repaired handler; the assertion pins the acceptance floor — at
    ``repair_rounds=3`` the transactional protocol must cost at least 2x
    fewer round-trips — and the valid/repaired outcome of every handler
    must match the per-query oracle.  CI uploads these rows as an artifact.
    """
    from repro.llm import DegradedBackend

    _warm(ctx)
    handlers = list(ctx.selection.all_handlers)
    rows = {}
    for mode in ("per-query", "transactional"):
        backend = DegradedBackend.gpt4(
            bad_constant_rate=0.9, undefined_type_rate=0.5, unrepairable_rate=0.0
        )
        generator = KernelGPT(
            ctx.kernel, backend, extractor=ctx.extractor,
            repair_rounds=3, repair_mode=mode,
        )
        started = time.perf_counter()
        run = generator.generate_for_handlers(handlers)
        rows[mode] = (time.perf_counter() - started, run)
    per_query_run, transactional_run = rows["per-query"][1], rows["transactional"][1]
    assert {h: (r.valid, r.repaired) for h, r in transactional_run.results.items()} == \
           {h: (r.valid, r.repaired) for h, r in per_query_run.results.items()}

    print()
    for mode, (seconds, run) in rows.items():
        trips = sum(r.repair_llm_calls for r in run.results.values())
        prompts = sum(r.repair_queries for r in run.results.values())
        repaired = sum(1 for r in run.results.values() if r.repaired)
        print(f"repair[{mode:13s}] {seconds:.2f}s  {prompts} repair prompts in "
              f"{trips} LLM round-trips, {repaired} repaired handlers "
              f"({trips / max(repaired, 1):.2f} trips/repaired handler)")
    per_query_trips = sum(r.repair_llm_calls for r in per_query_run.results.values())
    transactional_trips = sum(r.repair_llm_calls for r in transactional_run.results.values())
    repaired = sum(1 for r in transactional_run.results.values() if r.repaired)
    saved = (per_query_trips - transactional_trips) / max(repaired, 1)
    ratio = per_query_trips / max(transactional_trips, 1)
    print(f"batched repair: {ratio:.2f}x fewer LLM round-trips "
          f"({saved:.2f} queries saved per repaired handler)")
    assert ratio >= 2.0, f"transactional repair saves only {ratio:.2f}x round-trips"


def test_pool_fanout_matches_sequential_backends(ctx):
    """One pool-routed engine batch == three sequential per-backend runs.

    The §5.2.3 shape: the same drivers generated under every capability
    profile, once through a routed ``BackendPool`` in a single engine
    fan-out, once the historical way (one generator per backend, run after
    run).  Outputs must match per (profile, driver) pair; the wall times
    are printed for the comparison row.
    """
    from repro.core.tasks import GenerationTask, run_generation_task
    from repro.engine import TaskSpec
    from repro.llm import BackendPool, DegradedBackend

    _warm(ctx)
    labels = ("gpt-4", "gpt-4o", "gpt-3.5")
    factories = {"gpt-4": DegradedBackend.gpt4, "gpt-4o": DegradedBackend.gpt4o,
                 "gpt-3.5": DegradedBackend.gpt35}
    handlers = [ctx.kernel.record_for_name(name).handler_name for name in TABLE5_DRIVER_NAMES]

    started = time.perf_counter()
    sequential = {}
    for label in labels:
        generator = KernelGPT(ctx.kernel, factories[label](), extractor=ctx.extractor)
        for handler in handlers:
            sequential[(label, handler)] = generator.generate_for_handler(handler).suite_text()
    sequential_seconds = time.perf_counter() - started

    started = time.perf_counter()
    engine = ExecutionEngine(jobs=4)
    pool = BackendPool({label: factories[label]() for label in labels})
    generators = {
        label: KernelGPT(ctx.kernel, pool, extractor=ctx.extractor, backend_route=label)
        for label in labels
    }
    specs = [
        TaskSpec(key=f"{label}:{handler}", fn=run_generation_task,
                 args=(generators[label], GenerationTask(handler), engine))
        for label in labels for handler in handlers
    ]
    outcomes = [result.value for result in engine.run_tasks("pool-fanout", specs)]
    pooled_seconds = time.perf_counter() - started
    pooled = {
        (label, handler): outcome.result.suite_text()
        for (label, handler), outcome in zip(
            [(label, handler) for label in labels for handler in handlers], outcomes
        )
    }
    assert pooled == sequential
    print()
    print(f"sequential 3-backend runs {sequential_seconds:.2f}s vs "
          f"pool-routed engine fan-out {pooled_seconds:.2f}s "
          f"({len(labels)} profiles x {len(handlers)} drivers)")


def test_parallel_is_deterministic_and_faster(ctx):
    """jobs=4 reproduces the serial results bit-for-bit, in less wall time."""
    _warm(ctx)

    started = time.perf_counter()
    serial_run, serial_regen, serial_campaigns = _workload(ctx, None)
    serial_seconds = time.perf_counter() - started

    engine = ExecutionEngine(jobs=4)
    started = time.perf_counter()
    parallel_run, parallel_regen, parallel_campaigns = _workload(ctx, engine)
    parallel_seconds = time.perf_counter() - started

    # Determinism: identical suites, regenerations and campaign coverage.
    assert {h: r.suite_text() for h, r in parallel_run.results.items()} == \
           {h: r.suite_text() for h, r in serial_run.results.items()}
    assert {h: r.suite_text() for h, r in parallel_regen.items()} == \
           {h: r.suite_text() for h, r in serial_regen.items()}
    for label in serial_campaigns:
        assert [c.coverage for c in parallel_campaigns[label]] == \
               [c.coverage for c in serial_campaigns[label]]

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    print()
    print(f"serial {serial_seconds:.2f}s vs engine(jobs=4) {parallel_seconds:.2f}s "
          f"-> {speedup:.2f}x")
    # The engine path must win: memoization removes the redundant oracle
    # analyses (regeneration, shared secondary handlers) even on one core,
    # and the fan-out adds cores when the host has them.  The 1.05 floor
    # keeps the assertion robust to timer noise while still catching a
    # regression that makes the engine path slower than the baseline.
    assert speedup > 1.05, f"engine path not faster: {speedup:.2f}x"
