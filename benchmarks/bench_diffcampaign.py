"""Benchmark: cold differential campaign vs warm-store re-run.

The workload is a two-cell differential campaign (``netlink`` vs
``fs-ioctl``) run twice through the real ``kernelgpt-repro diff`` CLI in
separate interpreter processes (no in-process cache warmth leaks between
runs):

* **cold**: an empty artifact store; every task executes;
* **rerun**: the same store; the config-invariant prefix, both cells and
  the terminal diffs all match their recorded input digests, so the
  scheduler serves everything as ``task_reused``.

Before timing is reported, the two runs' stdout and ``--output`` files
are asserted byte-identical (determinism rule 12), the rerun is asserted
to have reused the shared ``generate``/``validate`` prefix and every cell
task, and the cold run to have reused nothing.  The headline is
``reuse_speedup`` (cold wall / rerun wall).

CI usage (the diff-campaign smoke job)::

    python benchmarks/bench_diffcampaign.py --check benchmarks/BENCH_diffcampaign.json \
        --json BENCH_diffcampaign.json
"""

from __future__ import annotations

import argparse
import filecmp
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.orchestrator.events import read_events  # noqa: E402

CELLS = "fs-ioctl,netlink"
FUZZ_BUDGET = 120


def run_diff_cli(store: Path, events: Path, output: Path, preset: str) -> tuple[float, bytes]:
    """One diff CLI run in a fresh interpreter; returns (wall_s, stdout)."""
    env = os.environ.copy()
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable, "-m", "repro.experiments.runner", "diff",
        "--configs", CELLS,
        "--preset", preset,
        "--fuzz-budget", str(FUZZ_BUDGET),
        "--store", str(store),
        "--events", str(events),
        "--output", str(output),
    ]
    started = time.perf_counter()
    completed = subprocess.run(
        command, cwd=REPO, env=env, check=True,
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
    )
    return time.perf_counter() - started, completed.stdout


def assert_identical_outputs(cold_dir: Path, warm_dir: Path) -> int:
    cold_files = sorted(path.name for path in cold_dir.iterdir())
    warm_files = sorted(path.name for path in warm_dir.iterdir())
    assert cold_files == warm_files, (cold_files, warm_files)
    match, mismatch, errors = filecmp.cmpfiles(cold_dir, warm_dir, cold_files, shallow=False)
    assert not mismatch and not errors, (mismatch, errors)
    return len(match)


def measure(preset: str) -> dict:
    cells = CELLS.split(",")
    with tempfile.TemporaryDirectory(prefix="bench-diffcampaign-") as scratch_name:
        scratch = Path(scratch_name)
        store = scratch / "store"
        cold_wall, cold_stdout = run_diff_cli(
            store, scratch / "events-cold.jsonl", scratch / "out-cold", preset
        )
        rerun_wall, rerun_stdout = run_diff_cli(
            store, scratch / "events-rerun.jsonl", scratch / "out-rerun", preset
        )
        assert cold_stdout == rerun_stdout, "rerun stdout diverged from the cold run"
        files = assert_identical_outputs(scratch / "out-cold", scratch / "out-rerun")
        cold_events = read_events(scratch / "events-cold.jsonl")
        rerun_events = read_events(scratch / "events-rerun.jsonl")
        assert not [e for e in cold_events if e["type"] == "task_reused"], \
            "cold run unexpectedly reused tasks"
        reused = {e["task_id"] for e in rerun_events if e["type"] == "task_reused"}
        assert {"generate", "validate"} <= reused, reused
        for cell in cells:
            assert f"fuzz:cell:{cell}" in reused and f"report:cell:{cell}" in reused, reused
        tasks = sum(1 for e in cold_events if e["type"] == "task_scheduled")
    return {
        "preset": preset,
        "cells": len(cells),
        "tasks": tasks,
        "files": files,
        "reused": len(reused),
        "cold_wall_s": round(cold_wall, 4),
        "rerun_wall_s": round(rerun_wall, 4),
        "reuse_speedup": round(cold_wall / rerun_wall, 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Differential campaign benchmark: cold run vs warm-store re-run"
    )
    parser.add_argument("--preset", choices=["quick", "paper"], default="quick")
    parser.add_argument("--json", type=Path, default=None,
                        help="write the measured trajectory row to this JSON file")
    parser.add_argument("--check", type=Path, default=None,
                        help="fail if the reuse speedup drops below the recorded "
                             "trajectory's check_floor in this JSON file")
    args = parser.parse_args(argv)

    row = measure(args.preset)
    print(f"diffcampaign ({row['cells']} cells, {row['tasks']} tasks, preset {row['preset']}): "
          f"cold {row['cold_wall_s']:.2f}s  rerun {row['rerun_wall_s']:.2f}s "
          f"({row['reused']} tasks reused)  reuse speedup {row['reuse_speedup']:.2f}x "
          f"(byte-identical outputs)")

    exit_code = 0
    if args.check is not None:
        recorded = json.loads(args.check.read_text())
        floor = recorded["rows"][-1].get("check_floor", 1.0)
        measured = row["reuse_speedup"]
        if measured < floor:
            print(f"FAIL: measured reuse speedup {measured:.2f}x is below the recorded "
                  f"floor {floor:.2f}x", file=sys.stderr)
            exit_code = 1
        else:
            print(f"check ok: {measured:.2f}x >= floor {floor:.2f}x")
    if args.json is not None:
        row["check_floor"] = max(1.2, round(row["reuse_speedup"] * 0.6, 2))
        payload = {"benchmark": "diff-campaign", "rows": [row]}
        if args.json.exists():
            try:
                existing = json.loads(args.json.read_text())
                payload["rows"] = existing.get("rows", []) + payload["rows"]
            except (ValueError, KeyError):
                pass
        args.json.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote trajectory row to {args.json}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
