"""Benchmark regenerating Table 1 (missing-spec generation + repair).

Run with `pytest benchmarks/bench_table1.py --benchmark-only -s` to print the
reproduced table alongside the timing.
"""

from repro.experiments import run_table1


def test_table1(benchmark, ctx):
    result = benchmark.pedantic(run_table1, args=(ctx,), rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.rows


def test_correctness_audit(benchmark, ctx):
    from repro.experiments import run_correctness_audit

    audit = benchmark.pedantic(run_correctness_audit, args=(ctx,), rounds=1, iterations=1)
    print()
    print("Correctness audit (§5.1.3):", audit.render())
    assert audit.drivers_audited > 0
