"""Benchmark regenerating Table 6 (per-socket comparison).

Run with `pytest benchmarks/bench_table6.py --benchmark-only -s` to print the
reproduced table alongside the timing.
"""

from repro.experiments import run_table6


def test_table6(benchmark, ctx):
    result = benchmark.pedantic(run_table6, args=(ctx,), rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.rows
