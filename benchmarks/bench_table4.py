"""Benchmark regenerating Table 4 (bug detection by new specs).

Run with `pytest benchmarks/bench_table4.py --benchmark-only -s` to print the
reproduced table alongside the timing.
"""

from repro.experiments import run_table4


def test_table4(benchmark, ctx):
    result = benchmark.pedantic(run_table4, args=(ctx,), rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.rows
