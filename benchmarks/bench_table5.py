"""Benchmark regenerating Table 5 (per-driver comparison).

Run with `pytest benchmarks/bench_table5.py --benchmark-only -s` to print the
reproduced table alongside the timing.
"""

from repro.experiments import run_table5


def test_table5(benchmark, ctx):
    result = benchmark.pedantic(run_table5, args=(ctx,), rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.rows
