"""Benchmark: job-service throughput with and without batch coalescing.

The workload is N concurrent generation jobs (one tenant each) against one
shared backend.  Every job generates specs for two *shared* handlers — the
multi-tenant overlap the coalescer exists to exploit — plus one handler
unique to the job, so merged batches always mix duplicate and novel work.
The grid crosses jobs-in-flight × backend pool size × coalescing on/off:

* **off** runs the service in drain mode: every LLM submission is its own
  ``complete_batch`` round trip, the pre-coalescing schedule;
* **on** runs the window/size-triggered :class:`~repro.llm.BatchCoalescer`,
  which merges concurrent jobs' wavefronts into single round trips per pool
  member.

Every backend round trip is counted (and padded with a small simulated
network latency, ``--call-latency``), and every cell asserts the on/off
job outputs are byte-identical before any number is reported — coalescing
must change round-trip counts only, never bytes.  The headline is the
**backend round-trip reduction** (off calls / on calls) at 8 jobs in
flight against the single-member pool.

CI usage (the service-throughput smoke job)::

    python benchmarks/bench_service_throughput.py --check benchmarks/BENCH_service.json \
        --json BENCH_service.json

``--check`` exits non-zero when the measured headline reduction falls below
the recorded trajectory's ``check_floor``; ``--json`` appends the measured
row for the artifact upload.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines import build_syzkaller_corpus  # noqa: E402
from repro.core import select_target_handlers  # noqa: E402
from repro.experiments.config import quick  # noqa: E402
from repro.kernel import build_default_kernel  # noqa: E402
from repro.llm import BackendPool, LLMBackend, OracleBackend  # noqa: E402
from repro.service import Job, JobService  # noqa: E402

#: Handlers every job generates (the cross-tenant overlap)...
SHARED_HANDLERS = ("dm_ctl_fops", "kvm_fops")
#: ...plus one of these, unique per job (novel work per tenant).
UNIQUE_POOL = (
    "loop_control_fops", "nvram_fops", "ppp_fops", "snapshot_fops",
    "timer_fops", "vhost_vsock_fops", "rds_proto_ops", "packet_proto_ops",
)
DEFAULT_JOBS_GRID = (1, 4, 8)
DEFAULT_POOLS = (1, 2)


class CountingBackend(LLMBackend):
    """Counts ``complete_batch`` round trips, with simulated per-call latency.

    The oracle answers in microseconds, which would hide the thing the
    coalescer optimizes — per-round-trip overhead.  A small sleep per call
    stands in for the network/API latency a real backend pays, making wall
    time track round trips.
    """

    def __init__(self, inner: LLMBackend, call_latency: float = 0.0):
        super().__init__(model=inner.model)
        self.inner = inner
        self.call_latency = call_latency
        self.calls = 0

    def complete_batch(self, requests):
        self.calls += 1
        if self.call_latency:
            time.sleep(self.call_latency)
        return self.inner.complete_batch(requests)

    def complete(self, prompt):  # pragma: no cover - complete_batch overrides
        raise NotImplementedError


def build_backend(pool_size: int, call_latency: float):
    """One counting backend, or a round-robin pool of counting members.

    Pool members are identical oracles (completions are pure functions of
    the prompt), so member placement — which coalescing changes, because it
    reshapes the batches the scheduler sees — cannot change output bytes.
    """
    if pool_size <= 1:
        member = CountingBackend(OracleBackend(), call_latency)
        return member, (member,)
    members = {
        f"gpt-4-{index}": CountingBackend(OracleBackend(), call_latency)
        for index in range(pool_size)
    }
    pool = BackendPool(members, default=next(iter(members)), schedule="round-robin")
    return pool, tuple(members.values())


def run_cell(kernel, jobs_in_flight: int, pool_size: int, coalesce: bool,
             call_latency: float, window: float) -> dict:
    """One grid cell: N concurrent generation jobs through a fresh service."""
    backend, counters = build_backend(pool_size, call_latency)
    service = JobService(
        quick(),
        workers=jobs_in_flight,
        coalesce=coalesce,
        window=window,
        kernel=kernel,
        backend=backend,
    )
    jobs = [
        Job(
            kind="generation",
            tenant=f"tenant-{index}",
            handlers=SHARED_HANDLERS + (UNIQUE_POOL[index % len(UNIQUE_POOL)],),
        )
        for index in range(jobs_in_flight)
    ]
    started = time.perf_counter()
    handles = service.submit_all(jobs)
    results = [handle.wait(timeout=600) for handle in handles]
    wall = time.perf_counter() - started
    for result in results:
        if result.error is not None:
            raise result.error
    stats = service.stats()["coalescer"]
    service.close()
    return {
        "wall_s": round(wall, 4),
        "round_trips": sum(counter.calls for counter in counters),
        "queries": sum(result.queries for result in results),
        "saved_by_coalescing": stats["queries_saved_by_coalescing"],
        "merged_flushes": stats["merged_flushes"],
        "max_merged_batch": stats["max_merged_batch"],
        "texts": [result.text for result in results],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Job-service throughput: coalescing on vs off across jobs × pool size"
    )
    parser.add_argument("--jobs-grid", default=",".join(str(j) for j in DEFAULT_JOBS_GRID),
                        help="comma-separated jobs-in-flight counts (default: 1,4,8)")
    parser.add_argument("--pools", default=",".join(str(p) for p in DEFAULT_POOLS),
                        help="comma-separated backend pool sizes (default: 1,2)")
    parser.add_argument("--call-latency", type=float, default=0.002, metavar="S",
                        help="simulated per-round-trip backend latency (default: 0.002s)")
    parser.add_argument("--window", type=float, default=0.02, metavar="S",
                        help="coalescing admission window (default: 0.02s)")
    parser.add_argument("--json", type=Path, default=None,
                        help="append the measured trajectory row to this JSON file")
    parser.add_argument("--check", type=Path, default=None,
                        help="fail if the 8-job round-trip reduction drops below the "
                             "recorded trajectory's check_floor in this JSON file")
    args = parser.parse_args(argv)
    jobs_grid = [int(part) for part in args.jobs_grid.split(",") if part.strip()]
    pools = [int(part) for part in args.pools.split(",") if part.strip()]

    kernel = build_default_kernel("small")
    # Warm the shared artifacts (corpus, selection) outside the measured region.
    select_target_handlers(kernel, build_syzkaller_corpus(kernel))

    row: dict = {
        "workload": {
            "shared_handlers": list(SHARED_HANDLERS),
            "unique_pool": list(UNIQUE_POOL),
            "call_latency_s": args.call_latency,
            "window_s": args.window,
        },
        "grid": {},
    }
    headline = None
    for jobs_in_flight in jobs_grid:
        for pool_size in pools:
            off = run_cell(kernel, jobs_in_flight, pool_size, False,
                           args.call_latency, args.window)
            on = run_cell(kernel, jobs_in_flight, pool_size, True,
                          args.call_latency, args.window)
            assert on.pop("texts") == off.pop("texts"), (
                f"coalescing changed output bytes at jobs={jobs_in_flight} pool={pool_size}"
            )
            reduction = round(off["round_trips"] / max(1, on["round_trips"]), 2)
            cell = {"off": off, "on": on, "round_trip_reduction": reduction}
            row["grid"][f"jobs{jobs_in_flight}_pool{pool_size}"] = cell
            if jobs_in_flight == 8 and pool_size == 1:
                headline = reduction
            print(f"jobs={jobs_in_flight} pool={pool_size}: "
                  f"off {off['round_trips']:4d} trips {off['wall_s']:.3f}s | "
                  f"on {on['round_trips']:4d} trips {on['wall_s']:.3f}s | "
                  f"reduction {reduction:.2f}x  saved={on['saved_by_coalescing']} "
                  f"max_batch={on['max_merged_batch']} (byte-identical)")
    if headline is None:
        # The floor is defined at the 8-job single-backend cell; without it
        # the row is informational only.
        largest = row["grid"][f"jobs{max(jobs_grid)}_pool{min(pools)}"]
        headline = largest["round_trip_reduction"]
        print(f"note: 8-job pool-1 cell not measured; headline from "
              f"jobs={max(jobs_grid)} pool={min(pools)}")
    row["headline_reduction"] = headline
    print(f"headline round-trip reduction (8 jobs, pool 1): {headline:.2f}x")

    exit_code = 0
    if args.check is not None:
        recorded = json.loads(args.check.read_text())
        reference_row = recorded["rows"][-1]
        floor = reference_row.get("check_floor", 1.5)
        if headline < floor:
            print(f"FAIL: measured round-trip reduction {headline:.2f}x is below "
                  f"the recorded floor {floor:.2f}x", file=sys.stderr)
            exit_code = 1
        else:
            print(f"check ok: {headline:.2f}x >= floor {floor:.2f}x")
    if args.json is not None:
        # The floor for future --check runs: the measured reduction with a
        # noise margin, never below the 1.5x acceptance target.
        row["check_floor"] = max(1.5, round(headline * 0.6, 2))
        payload = {"benchmark": "service-throughput", "rows": [row]}
        if args.json.exists():
            try:
                existing = json.loads(args.json.read_text())
                payload["rows"] = existing.get("rows", []) + payload["rows"]
            except (ValueError, KeyError):
                pass
        args.json.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote trajectory row to {args.json}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
