"""Benchmark regenerating Ablation (LLM choice).

Run with `pytest benchmarks/bench_ablation_llm.py --benchmark-only -s` to print the
reproduced table alongside the timing.
"""

from repro.experiments import run_ablation_llm


def test_ablation_llm(benchmark, ctx):
    result = benchmark.pedantic(run_ablation_llm, args=(ctx,), rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.rows
