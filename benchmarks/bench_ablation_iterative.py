"""Benchmark regenerating Ablation (iterative vs all-in-one).

Run with `pytest benchmarks/bench_ablation_iterative.py --benchmark-only -s` to print the
reproduced table alongside the timing.
"""

from repro.experiments import run_ablation_iterative


def test_ablation_iterative(benchmark, ctx):
    result = benchmark.pedantic(run_ablation_iterative, args=(ctx,), rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.rows
