"""Setup shim.

The offline environment has no ``wheel`` package, so PEP 660 editable
installs (which need ``bdist_wheel``) cannot be built.  Keeping a setup.py
lets ``pip install -e . --no-build-isolation`` (and plain
``python setup.py develop``) fall back to the legacy editable install path.
"""

from setuptools import setup

setup()
