"""Package metadata and legacy-install shim.

The offline environment has no ``wheel`` package, so PEP 660 editable
installs (which need ``bdist_wheel``) cannot be built.  Keeping a setup.py
lets ``pip install -e . --no-build-isolation`` (and plain
``python setup.py develop``) fall back to the legacy editable install path.

The metadata lives here (rather than a pyproject table) for the same reason;
it declares the ``src/`` layout and the ``kernelgpt-repro`` console script
that :mod:`repro.experiments.runner` provides.
"""

from setuptools import find_packages, setup

setup(
    name="kernelgpt-repro",
    version="1.0.0",
    description=(
        "Pure-Python reproduction of KernelGPT (ASPLOS 2025): LLM-guided "
        "syzlang specification generation, coverage-guided fuzzing, and the "
        "paper's evaluation harness on a deterministic parallel engine."
    ),
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={
        "console_scripts": [
            "kernelgpt-repro = repro.experiments.runner:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Security",
        "Topic :: Software Development :: Testing",
    ],
)
