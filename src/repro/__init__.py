"""KernelGPT reproduction library.

A pure-Python, from-scratch reproduction of *KernelGPT: Enhanced Kernel
Fuzzing via Large Language Models* (ASPLOS 2025), including every substrate
the paper depends on: the syzlang specification language, a synthetic
Linux-like kernel codebase, a source extractor, LLM analysis backends, the
KernelGPT iterative specification generator, the SyzDescribe and Syzkaller
baselines, a coverage-guided syscall fuzzer, and the evaluation harness that
regenerates the paper's tables and figures.

Quickstart::

    from repro import build_default_kernel, KernelGPT, OracleBackend

    kernel = build_default_kernel()
    generator = KernelGPT(kernel=kernel, backend=OracleBackend(kernel))
    result = generator.generate_for_handler("dm_ctl_fops")
    print(result.suite_text())

See ``examples/`` for runnable end-to-end scenarios and ``DESIGN.md`` for the
system inventory.
"""

from __future__ import annotations

__version__ = "1.0.0"

from . import syzlang  # noqa: F401

__all__ = ["__version__", "syzlang"]


def _extend_api() -> None:
    """Populate the top-level namespace with the main entry points.

    Kept in a function so that partially-built source trees (during
    development) still allow ``import repro`` and the syzlang layer.
    """
    global_api = globals()
    try:
        from .engine import ExecutionEngine
        from .kernel import KernelCodebase, build_default_kernel
        from .extractor import KernelExtractor
        from .llm import DegradedBackend, OracleBackend, ReplayBackend
        from .core import GenerationResult, GenerationSession, KernelGPT
        from .baselines import SyzDescribe, build_syzkaller_corpus
        from .fuzzer import FuzzCampaign, Fuzzer, KernelExecutor
    except ImportError:  # pragma: no cover - only during incremental builds
        return
    global_api.update(
        ExecutionEngine=ExecutionEngine,
        build_default_kernel=build_default_kernel,
        KernelCodebase=KernelCodebase,
        KernelExtractor=KernelExtractor,
        OracleBackend=OracleBackend,
        DegradedBackend=DegradedBackend,
        ReplayBackend=ReplayBackend,
        KernelGPT=KernelGPT,
        GenerationResult=GenerationResult,
        GenerationSession=GenerationSession,
        SyzDescribe=SyzDescribe,
        build_syzkaller_corpus=build_syzkaller_corpus,
        FuzzCampaign=FuzzCampaign,
        Fuzzer=Fuzzer,
        KernelExecutor=KernelExecutor,
    )
    global_api["__all__"].extend(
        [
            "ExecutionEngine",
            "build_default_kernel",
            "KernelCodebase",
            "KernelExtractor",
            "OracleBackend",
            "DegradedBackend",
            "ReplayBackend",
            "KernelGPT",
            "GenerationResult",
            "GenerationSession",
            "SyzDescribe",
            "build_syzkaller_corpus",
            "FuzzCampaign",
            "Fuzzer",
            "KernelExecutor",
        ]
    )


_extend_api()
