"""The existing Syzkaller specification corpus (hand-written baseline).

The paper compares against the specifications already present in the
Syzkaller repository: expert-written, high quality, but covering only part of
the kernel's handlers.  In the reproduction those descriptions are derived
from the reference suites of the handlers the corpus covers, truncated to the
per-handler operation counts recorded in the kernel datasets (Table 5 /
Table 6 ``# Sys`` columns and the scan-population coverage assignment).
"""

from __future__ import annotations

from ..kernel import DriverTruth, KernelCodebase, SocketTruth
from ..syzlang import SpecCorpus, SpecSuite


def _driver_syscall_names(kernel: KernelCodebase, truth: DriverTruth, described: int | None) -> list[str]:
    reference = kernel.reference_suite(truth.name)
    names = [syscall.full_name for syscall in reference if syscall.name == "openat"]
    ops = truth.all_ops()
    limit = len(ops) if described is None else min(described, len(ops))
    for op in ops[:limit]:
        full_name = f"ioctl${op.macro}"
        if full_name in reference:
            names.append(full_name)
    return names


def _socket_syscall_names(kernel: KernelCodebase, truth: SocketTruth, described: int | None) -> list[str]:
    reference = kernel.reference_suite(truth.name)
    names = [syscall.full_name for syscall in reference if syscall.name == "socket"]
    limit = len(truth.ops) if described is None else min(described, len(truth.ops))
    ident = truth.name.replace("-", "_").replace("#", "n")
    for op in truth.ops[:limit]:
        if op.macro:
            full_name = f"{op.syscall}${op.macro}"
        else:
            full_name = f"{op.syscall}${ident}"
        if full_name in reference:
            names.append(full_name)
    return names


def build_syzkaller_corpus(kernel: KernelCodebase) -> SpecCorpus:
    """Build the existing-corpus baseline for the given kernel.

    Handlers with ``existing_described == 0`` have no descriptions (they do
    not appear in the corpus at all); handlers with a positive count are
    truncated to their first N operations; ``None`` means fully described.
    """
    corpus = SpecCorpus("syzkaller")
    for record in kernel.handler_records():
        described = record.existing_described
        if described == 0:
            continue
        reference = kernel.reference_suite(record.name)
        if record.kind == "driver":
            names = _driver_syscall_names(kernel, record.truth, described)  # type: ignore[arg-type]
        else:
            names = _socket_syscall_names(kernel, record.truth, described)  # type: ignore[arg-type]
        suite = reference.subset_for_syscalls(names)
        suite.name = f"syzkaller-{record.name}"
        corpus.add(record.handler_name, suite)
    return corpus


def syzkaller_described_interfaces(kernel: KernelCodebase) -> dict[str, list[str]]:
    """Interface keys described per handler (used for the missing-spec scan)."""
    from ..core.filtering import described_interfaces

    return described_interfaces(build_syzkaller_corpus(kernel))


__all__ = ["build_syzkaller_corpus", "syzkaller_described_interfaces"]
