"""Baseline specification generators: existing Syzkaller corpus and SyzDescribe."""

from .syzdescribe import SyzDescribe, SyzDescribeResult
from .syzkaller import build_syzkaller_corpus, syzkaller_described_interfaces

__all__ = [
    "SyzDescribe",
    "SyzDescribeResult",
    "build_syzkaller_corpus",
    "syzkaller_described_interfaces",
]
