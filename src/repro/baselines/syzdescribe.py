"""SyzDescribe-style static specification generation (the baseline of §5).

SyzDescribe (Hao et al., S&P 2023) infers syscall descriptions for kernel
drivers with hand-written static-analysis rules.  The reproduction models the
behaviour the paper documents, strengths and weaknesses alike:

* handler discovery through module-init / registration patterns — but only
  the *conventional* ones: ``miscdevice.name`` (never ``.nodename``), the
  ``alloc_chrdev_region`` region name (not the ``device_create`` template),
  no procfs devices;
* switch-based command extraction that uses the case label *as written* —
  wrong when the handler rewrites the command with ``_IOC_NR`` — and that
  cannot resolve table-driven dispatch at all;
* structural type recovery with opaque ``field_N`` naming, no semantic
  relationships (no ``len[...]``, no output annotations), and occasional
  duplicate descriptions of the same command with different types;
* no socket support.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..engine import derive_seed
from ..extractor import FunctionDecl, KernelExtractor, StructDecl
from ..kernel import KernelCodebase
from ..syzlang import (
    ArrayType,
    ConstType,
    ConstantTable,
    Field,
    IntType,
    NamedTypeRef,
    Param,
    PtrType,
    ResourceDef,
    ResourceRef,
    SpecCorpus,
    SpecSuite,
    SpecValidator,
    StringType,
    StructDef,
    Syscall,
)

_MISC_NAME_RE = re.compile(r"\.name\s*=\s*\"(?P<name>[^\"]+)\"")
_CHRDEV_RE = re.compile(r"alloc_chrdev_region\([^;]*\"(?P<name>[^\"]+)\"")
_CASE_RE = re.compile(r"case\s+(?P<macro>\w+)\s*:\s*\n\s*return\s+(?P<fn>\w+)\(", re.MULTILINE)
_DELEGATE_RE = re.compile(r"^\s*return\s+(?P<fn>\w+)\(file,\s*command,\s*u\);\s*$", re.MULTILINE)
_COPY_FROM_RE = re.compile(r"copy_from_user\(&\w+,\s*\w+,\s*sizeof\(struct\s+(?P<name>\w+)\)\)")

_WIDTHS = {
    "__u8": "int8", "__s8": "int8", "char": "int8",
    "__u16": "int16", "__s16": "int16",
    "__u32": "int32", "__s32": "int32", "int": "int32", "unsigned int": "int32",
    "__u64": "int64", "__s64": "int64", "unsigned long": "int64",
}


@dataclass
class SyzDescribeResult:
    """Outcome of analysing one handler."""

    handler_name: str
    suite: SpecSuite | None
    valid: bool
    reason: str = ""

    @property
    def syscall_count(self) -> int:
        return len(self.suite) if self.suite is not None else 0

    @property
    def type_count(self) -> int:
        return self.suite.stats()["types"] if self.suite is not None else 0


class SyzDescribe:
    """The rule-based static analysis baseline."""

    def __init__(self, kernel: KernelCodebase, *, extractor: KernelExtractor | None = None):
        self.kernel = kernel
        self.extractor = extractor or KernelExtractor(kernel)
        self._constants = self.extractor.constants()
        self._validator = SpecValidator(self._constants, warn_unused=False)

    # ------------------------------------------------------------------ API
    def analyze_handler(self, handler_name: str) -> SyzDescribeResult:
        """Generate a specification for one driver handler, if the rules apply."""
        info = self.extractor.handler(handler_name)
        if info.kind != "driver":
            return SyzDescribeResult(handler_name, None, False, "sockets are not supported")

        device_path = self._device_path(info.usage_snippets)
        if device_path is None:
            return SyzDescribeResult(handler_name, None, False, "registration pattern not modelled")
        if not info.ioctl_fn or not self.extractor.has_definition(info.ioctl_fn):
            return SyzDescribeResult(handler_name, None, False, "no ioctl handler found")

        dispatch = self.extractor.function(info.ioctl_fn)
        cases = self._find_cases(dispatch, depth=0)
        if not cases:
            return SyzDescribeResult(handler_name, None, False, "could not resolve command dispatch")

        # The tag must be a pure function of the handler name: the builtin
        # hash() is salted by PYTHONHASHSEED, so it differs across worker
        # processes and reruns, which made suites schedule-dependent.
        tag = derive_seed(0, "syzdescribe", handler_name) % 90000 + 10000
        suite = self._assemble(info.handler_name, tag, device_path, cases)
        report = self._validator.validate(suite)
        return SyzDescribeResult(handler_name, suite, report.is_valid)

    def analyze_all(self, handler_names: list[str]) -> dict[str, SyzDescribeResult]:
        return {name: self.analyze_handler(name) for name in handler_names}

    def build_corpus(self, handler_names: list[str]) -> SpecCorpus:
        """Corpus of every valid specification among the given handlers."""
        corpus = SpecCorpus("syzdescribe")
        for name, result in self.analyze_all(handler_names).items():
            if result.valid and result.suite is not None:
                corpus.add(name, result.suite)
        return corpus

    # ---------------------------------------------------------------- rules
    def _device_path(self, usage_snippets: tuple[str, ...]) -> str | None:
        """Rule-based device-name inference (conventional patterns only)."""
        for snippet in usage_snippets:
            if "miscdevice" in snippet:
                match = _MISC_NAME_RE.search(snippet)
                if match:
                    return f"/dev/{match.group('name')}"
            chrdev = _CHRDEV_RE.search(snippet)
            if chrdev:
                return f"/dev/{chrdev.group('name')}"
        return None

    def _find_cases(self, dispatch: FunctionDecl, *, depth: int) -> list[tuple[str, str | None]]:
        cases = [(match.group("macro"), match.group("fn")) for match in _CASE_RE.finditer(dispatch.body)]
        if cases:
            return cases
        if depth >= 1:
            return []
        delegate = _DELEGATE_RE.search(dispatch.body)
        if delegate and self.extractor.has_definition(delegate.group("fn")):
            try:
                target = self.extractor.function(delegate.group("fn"))
            except Exception:
                return []
            return self._find_cases(target, depth=depth + 1)
        return []

    def _arg_struct(self, handler_fn: str | None) -> str | None:
        if not handler_fn or not self.extractor.has_definition(handler_fn):
            return None
        try:
            body = self.extractor.function(handler_fn).body
        except Exception:
            return None
        match = _COPY_FROM_RE.search(body)
        return match.group("name") if match else None

    def _struct_def(self, struct_name: str, tag: int) -> StructDef | None:
        """Structural (field-by-field, relationship-free) struct recovery."""
        try:
            decl: StructDecl = self.extractor.struct(struct_name)
        except Exception:
            return None
        fields: list[Field] = []
        for index, member in enumerate(decl.fields):
            width = _WIDTHS.get(member.c_type, "int32")
            name = f"field_{index}"
            if member.is_flexible_array:
                fields.append(Field(name, ArrayType(IntType(width))))
            elif member.fixed_length:
                fields.append(Field(name, ArrayType(IntType("int8" if member.c_type == "char" else width), member.fixed_length)))
            elif member.c_type.startswith("struct "):
                nested = member.c_type.removeprefix("struct ").strip()
                nested_def = self._struct_def(nested, tag)
                if nested_def is not None:
                    fields.append(Field(name, ArrayType(IntType("int8"), 8)))
                else:
                    fields.append(Field(name, IntType("int64")))
            else:
                fields.append(Field(name, IntType(width)))
        return StructDef(struct_name, tuple(fields))

    # ------------------------------------------------------------- assembly
    def _assemble(
        self,
        handler_name: str,
        tag: int,
        device_path: str,
        cases: list[tuple[str, str | None]],
    ) -> SpecSuite:
        suite = SpecSuite(f"syzdescribe-{handler_name}")
        fd_resource = f"fd_{tag}"
        suite.add_resource(ResourceDef(fd_resource, "fd"))
        suite.add_syscall(
            Syscall(
                name="openat",
                variant=str(tag),
                params=(
                    Param("fd", ConstType("AT_FDCWD", "int64")),
                    Param("file", PtrType("in", StringType((device_path,)))),
                    Param("flags", ConstType("O_RDWR", "int32")),
                ),
                returns=ResourceRef(fd_resource),
                comment=f"generated by SyzDescribe for {handler_name}",
            )
        )
        for index, (macro, handler_fn) in enumerate(cases):
            struct_name = self._arg_struct(handler_fn)
            variants: list[tuple[str, object]] = []
            if struct_name is not None:
                struct_def = self._struct_def(struct_name, tag)
                if struct_def is not None and struct_name not in suite.structs:
                    suite.add_struct(struct_def)
                if struct_def is not None:
                    variants.append((f"{tag}_{index}", PtrType("in", ArrayType(IntType("int8")))))
                    variants.append((f"{tag}_{index}_t", PtrType("in", NamedTypeRef(struct_name))))
                else:
                    variants.append((f"{tag}_{index}", PtrType("in", ArrayType(IntType("int8")))))
            else:
                variants.append((f"{tag}_{index}", PtrType("in", ArrayType(IntType("int8")))))
            for variant, arg_expr in variants:
                suite.add_syscall(
                    Syscall(
                        name="ioctl",
                        variant=variant,
                        params=(
                            Param("fd", ResourceRef(fd_resource)),
                            Param("cmd", ConstType(macro, "int32")),
                            Param("arg", arg_expr),
                        ),
                    ),
                    replace_existing=True,
                )
        return suite


__all__ = ["SyzDescribe", "SyzDescribeResult"]
