"""Crash reports and deduplication."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CrashReport:
    """A single crash observation (before deduplication)."""

    bug_id: str
    title: str
    crash_type: str
    subsystem: str


@dataclass
class CrashLog:
    """Deduplicating accumulator of crash observations for a campaign."""

    observations: dict[str, int] = field(default_factory=dict)
    reports: dict[str, CrashReport] = field(default_factory=dict)

    def record(self, report: CrashReport) -> None:
        self.observations[report.bug_id] = self.observations.get(report.bug_id, 0) + 1
        self.reports.setdefault(report.bug_id, report)

    def unique_crashes(self) -> int:
        return len(self.reports)

    def bug_ids(self) -> tuple[str, ...]:
        return tuple(sorted(self.reports))

    def merge(self, other: "CrashLog") -> None:
        """Fold another campaign's observations into this log."""
        for bug_id, count in other.observations.items():
            self.observations[bug_id] = self.observations.get(bug_id, 0) + count
        for bug_id, report in other.reports.items():
            self.reports.setdefault(bug_id, report)

    def titles(self) -> tuple[str, ...]:
        return tuple(self.reports[bug_id].title for bug_id in sorted(self.reports))


__all__ = ["CrashReport", "CrashLog"]
