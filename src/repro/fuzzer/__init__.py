"""The Syzkaller-like fuzzing substrate: programs, generation, execution, campaigns."""

from .crash import CrashLog, CrashReport
from .executor import ExecutionResult, KernelExecutor
from .fuzzer import (
    FuzzCampaign,
    Fuzzer,
    average_coverage,
    average_crashes,
    merge_campaigns,
    run_campaign,
    run_campaign_matrix,
    run_repeated_campaigns,
    union_coverage,
)
from .generation import INTERESTING_VALUES, ProgramGenerator
from .program import BytesValue, Call, Program, ResourceValue, StructValue
from .vm import VMInstance, VMPool

__all__ = [
    "Program",
    "Call",
    "StructValue",
    "BytesValue",
    "ResourceValue",
    "ProgramGenerator",
    "INTERESTING_VALUES",
    "KernelExecutor",
    "ExecutionResult",
    "CrashReport",
    "CrashLog",
    "Fuzzer",
    "FuzzCampaign",
    "run_campaign",
    "run_repeated_campaigns",
    "run_campaign_matrix",
    "merge_campaigns",
    "average_coverage",
    "average_crashes",
    "union_coverage",
    "VMInstance",
    "VMPool",
]
