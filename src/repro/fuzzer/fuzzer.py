"""The coverage-guided fuzzing loop and campaign driver.

The loop mirrors Syzkaller's manager at program granularity: generate or
mutate a program, execute it in a (simulated) VM, and keep programs that
discover new coverage in the corpus as future mutation seeds.  A
:class:`FuzzCampaign` aggregates the results of one run (coverage block set,
deduplicated crashes, programs executed) and supports the comparisons the
paper's tables make (total coverage, unique coverage versus a baseline,
average crashes across repetitions).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..kernel import KernelCodebase
from ..syzlang import ConstantTable, SpecSuite
from .crash import CrashLog
from .executor import KernelExecutor
from .generation import ProgramGenerator
from .program import Program
from .vm import VMPool


@dataclass
class FuzzCampaign:
    """The outcome of one fuzzing campaign."""

    suite_name: str
    seed: int
    coverage: set[str] = field(default_factory=set)
    crash_log: CrashLog = field(default_factory=CrashLog)
    executed_programs: int = 0
    executed_calls: int = 0
    corpus_size: int = 0

    @property
    def coverage_count(self) -> int:
        return len(self.coverage)

    @property
    def unique_crashes(self) -> int:
        return self.crash_log.unique_crashes()

    def unique_coverage_vs(self, other: "FuzzCampaign | set[str]") -> int:
        baseline = other.coverage if isinstance(other, FuzzCampaign) else other
        return len(self.coverage - baseline)

    def found_bug(self, bug_id: str) -> bool:
        return bug_id in self.crash_log.observations


class Fuzzer:
    """One fuzzing session over a specification suite."""

    def __init__(
        self,
        kernel: KernelCodebase,
        suite: SpecSuite,
        *,
        seed: int = 0,
        constants: ConstantTable | None = None,
        executor: KernelExecutor | None = None,
        vm_pool: VMPool | None = None,
        mutation_bias: float = 0.6,
    ):
        self.kernel = kernel
        self.suite = suite
        self.seed = seed
        self.rng = random.Random(seed)
        self.constants = constants or kernel.constants
        self.executor = executor or KernelExecutor(kernel)
        self.vm_pool = vm_pool or VMPool()
        self.generator = ProgramGenerator(suite, self.constants, seed=seed)
        self.mutation_bias = mutation_bias
        self._corpus: list[Program] = []

    def run(self, budget_programs: int = 2000) -> FuzzCampaign:
        """Run the campaign for a fixed number of executed programs."""
        campaign = FuzzCampaign(suite_name=self.suite.name, seed=self.seed)
        if not self.generator.has_programs:
            return campaign
        for _ in range(budget_programs):
            program = self._next_program()
            vm = self.vm_pool.acquire()
            result = self.executor.execute(program)
            self.vm_pool.release(vm, crashed=bool(result.crashes))
            campaign.executed_programs += 1
            campaign.executed_calls += result.executed_calls
            new_blocks = result.coverage - campaign.coverage
            campaign.coverage.update(result.coverage)
            for crash in result.crashes:
                campaign.crash_log.record(crash)
            if new_blocks:
                self._corpus.append(program)
        campaign.corpus_size = len(self._corpus)
        return campaign

    def _next_program(self) -> Program:
        if self._corpus and self.rng.random() < self.mutation_bias:
            return self.generator.mutate(self.rng.choice(self._corpus))
        return self.generator.generate()


def run_repeated_campaigns(
    kernel: KernelCodebase,
    suite: SpecSuite,
    *,
    repetitions: int = 3,
    budget_programs: int = 2000,
    base_seed: int = 0,
) -> list[FuzzCampaign]:
    """Run the same campaign with different seeds (the paper uses 3 repetitions)."""
    campaigns = []
    for repetition in range(repetitions):
        fuzzer = Fuzzer(kernel, suite, seed=base_seed + repetition * 1009)
        campaigns.append(fuzzer.run(budget_programs))
    return campaigns


def average_coverage(campaigns: list[FuzzCampaign]) -> float:
    if not campaigns:
        return 0.0
    return sum(campaign.coverage_count for campaign in campaigns) / len(campaigns)


def average_crashes(campaigns: list[FuzzCampaign]) -> float:
    if not campaigns:
        return 0.0
    return sum(campaign.unique_crashes for campaign in campaigns) / len(campaigns)


def union_coverage(campaigns: list[FuzzCampaign]) -> set[str]:
    blocks: set[str] = set()
    for campaign in campaigns:
        blocks |= campaign.coverage
    return blocks


__all__ = [
    "Fuzzer",
    "FuzzCampaign",
    "run_repeated_campaigns",
    "average_coverage",
    "average_crashes",
    "union_coverage",
]
