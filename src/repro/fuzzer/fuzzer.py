"""The coverage-guided fuzzing loop and campaign driver.

The loop mirrors Syzkaller's manager at program granularity: generate or
mutate a program, execute it in a (simulated) VM, and keep programs that
discover new coverage in the corpus as future mutation seeds.  A
:class:`FuzzCampaign` aggregates the results of one run — coverage as a
:class:`~repro.kernel.coverage.CoverageBitmap` over the kernel's interned
block space, deduplicated crashes, programs executed — and supports the
comparisons the paper's tables make (total coverage, unique coverage versus
a baseline, average crashes across repetitions).  The hot loop works purely
on integer indices; label strings only materialise on demand through
``campaign.coverage.labels()``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..kernel import KernelCodebase
from ..kernel.coverage import CoverageBitmap, CoverageSpace
from ..syzlang import ConstantTable, SpecSuite
from .crash import CrashLog
from .executor import ExecutionResult, KernelExecutor
from .generation import ProgramGenerator
from .program import Program
from .vm import VMPool


@dataclass
class FuzzCampaign:
    """The outcome of one fuzzing campaign.

    ``coverage`` is a :class:`CoverageBitmap`: one big integer plus the
    space digest, so a campaign pickles back from a worker process in a few
    kilobytes instead of shipping thousands of label strings.
    """

    suite_name: str
    seed: int
    coverage: CoverageBitmap = field(default_factory=CoverageBitmap)
    crash_log: CrashLog = field(default_factory=CrashLog)
    executed_programs: int = 0
    executed_calls: int = 0
    corpus_size: int = 0

    @property
    def coverage_count(self) -> int:
        return len(self.coverage)

    @property
    def unique_crashes(self) -> int:
        return self.crash_log.unique_crashes()

    def unique_coverage_vs(self, other: "FuzzCampaign | CoverageBitmap | set[str]") -> int:
        baseline = other.coverage if isinstance(other, FuzzCampaign) else other
        if isinstance(baseline, CoverageBitmap):
            return self.coverage.difference_count(baseline)
        # Plain label-string baselines (legacy callers, tests) compare via
        # the lazily-materialised label set.
        return len(self.coverage.labels() - set(baseline))

    def found_bug(self, bug_id: str) -> bool:
        return bug_id in self.crash_log.observations


class Fuzzer:
    """One fuzzing session over a specification suite."""

    def __init__(
        self,
        kernel: KernelCodebase,
        suite: SpecSuite,
        *,
        seed: int = 0,
        constants: ConstantTable | None = None,
        executor: KernelExecutor | None = None,
        vm_pool: VMPool | None = None,
        mutation_bias: float = 0.6,
    ):
        self.kernel = kernel
        self.suite = suite
        self.seed = seed
        self.rng = random.Random(seed)
        self.constants = constants or kernel.constants
        self.executor = executor or KernelExecutor(kernel)
        self.vm_pool = vm_pool or VMPool()
        self.generator = ProgramGenerator(suite, self.constants, seed=seed)
        self.mutation_bias = mutation_bias
        self._corpus: list[Program] = []

    def run(self, budget_programs: int = 2000) -> FuzzCampaign:
        """Run the campaign for a fixed number of executed programs."""
        space = self.executor.space
        campaign = FuzzCampaign(suite_name=self.suite.name, seed=self.seed)
        if not self.generator.has_programs:
            campaign.coverage = CoverageBitmap(space)
            return campaign
        # Every program executes directly into one campaign-wide accumulator
        # (an int set plus the rare overflow labels): new-coverage detection
        # is a before/after size comparison, so the hot loop allocates no
        # per-program sets and never walks coverage twice.
        scratch = ExecutionResult(space=space)
        covered = scratch.coverage
        extra_labels = scratch.extras
        crashes = scratch.crashes
        crash_log = campaign.crash_log
        executor = self.executor
        vm_pool = self.vm_pool
        executed_calls = 0
        for _ in range(budget_programs):
            program = self._next_program()
            vm = vm_pool.acquire()
            known_blocks = len(covered) + len(extra_labels)
            crashes.clear()
            executed_calls += executor.execute_into(program, scratch)
            vm_pool.release(vm, crashed=bool(crashes))
            if len(covered) + len(extra_labels) != known_blocks:
                self._corpus.append(program)
            for crash in crashes:
                crash_log.record(crash)
        campaign.executed_programs = budget_programs
        campaign.executed_calls = executed_calls
        campaign.corpus_size = len(self._corpus)
        campaign.coverage = CoverageBitmap.from_indices(space, covered, extra_labels)
        return campaign

    def _next_program(self) -> Program:
        if self._corpus and self.rng.random() < self.mutation_bias:
            return self.generator.mutate(self.rng.choice(self._corpus))
        return self.generator.generate()


def run_campaign(
    kernel: KernelCodebase,
    suite: SpecSuite,
    seed: int,
    budget_programs: int,
    mutation_bias: float = 0.6,
) -> FuzzCampaign:
    """Run one seeded campaign with a private :class:`Fuzzer`/:class:`VMPool`.

    A module-level pure function of its arguments, so it can run as an engine
    task on any executor — including a process pool, since every argument and
    the returned :class:`FuzzCampaign` are picklable (the campaign's coverage
    bitmap travels as one integer plus the space digest).
    """
    fuzzer = Fuzzer(kernel, suite, seed=seed, mutation_bias=mutation_bias)
    return fuzzer.run(budget_programs)


def run_repeated_campaigns(
    kernel: KernelCodebase,
    suite: SpecSuite,
    *,
    repetitions: int = 3,
    budget_programs: int = 2000,
    base_seed: int = 0,
    jobs: int = 1,
    engine: "ExecutionEngine | None" = None,
    executor: str | None = None,
) -> list[FuzzCampaign]:
    """Run the same campaign with different seeds (the paper uses 3 repetitions).

    With ``jobs > 1`` (or an explicit ``engine``) the repetitions fan out
    across workers, each with its own :class:`Fuzzer` and :class:`VMPool`;
    ``executor`` picks the pool flavour (``serial``/``thread``/``process``)
    when a fresh engine is created.  Campaign tasks are pure module-level
    functions of picklable arguments, so the process pool needs no extra
    plumbing.  Seeds depend only on the repetition index and results are
    returned in repetition order, so the campaign list is identical for any
    ``jobs`` and executor kind.
    """
    from ..engine import TaskSpec, resolve_engine

    # Register the kernel's coverage space in this process before any
    # fan-out: worker campaigns pickle their bitmaps by space digest, and
    # the parent must hold the space for the results to re-bind on join.
    CoverageSpace.for_kernel(kernel)

    seeds = [base_seed + repetition * 1009 for repetition in range(repetitions)]
    engine = resolve_engine(engine, jobs, kind=executor)
    if engine is None:
        return [run_campaign(kernel, suite, seed, budget_programs) for seed in seeds]

    tasks = [
        TaskSpec(
            key=f"{suite.name}@{seed}",
            fn=run_campaign,
            args=(kernel, suite, seed, budget_programs),
            seed=seed,
        )
        for seed in seeds
    ]
    return [result.value for result in engine.run_tasks("fuzz-campaigns", tasks)]


def run_campaign_matrix(
    kernel: KernelCodebase,
    suites: "dict[str, SpecSuite]",
    *,
    repetitions: int = 3,
    budget_programs: int = 2000,
    base_seed: int = 0,
    jobs: int = 1,
    engine: "ExecutionEngine | None" = None,
    executor: str | None = None,
) -> "dict[str, list[FuzzCampaign]]":
    """Run repeated campaigns for several suites as one flat task batch.

    Fanning out the full ``suites x repetitions`` matrix keeps every worker
    busy even when one suite has few repetitions.  Results come back grouped
    by suite label, each group in repetition order — identical to calling
    :func:`run_repeated_campaigns` per suite serially, for any executor kind.
    """
    from ..engine import TaskSpec, resolve_engine

    CoverageSpace.for_kernel(kernel)  # parent-side digest registration (see above)

    pairs = [
        (label, base_seed + repetition * 1009)
        for label in suites
        for repetition in range(repetitions)
    ]
    grouped: dict[str, list[FuzzCampaign]] = {label: [] for label in suites}
    engine = resolve_engine(engine, jobs, kind=executor)
    if engine is None:
        for label, seed in pairs:
            grouped[label].append(run_campaign(kernel, suites[label], seed, budget_programs))
        return grouped

    tasks = [
        TaskSpec(
            key=f"{label}@{seed}",
            fn=run_campaign,
            args=(kernel, suites[label], seed, budget_programs),
            seed=seed,
        )
        for label, seed in pairs
    ]
    results = engine.run_tasks("fuzz-campaigns", tasks)
    for (label, _), result in zip(pairs, results):
        grouped[label].append(result.value)
    return grouped


def merge_campaigns(campaigns: list[FuzzCampaign], *, suite_name: str | None = None) -> FuzzCampaign:
    """Fold a list of campaigns into one aggregate :class:`FuzzCampaign`.

    Coverage becomes the bitmap union, crash logs merge with summed
    observation counts, and program/call counters sum — the aggregate view
    the paper's union-coverage comparisons use.
    """
    merged = FuzzCampaign(
        suite_name=suite_name or (campaigns[0].suite_name if campaigns else "merged"),
        seed=campaigns[0].seed if campaigns else 0,
    )
    for campaign in campaigns:
        merged.coverage = merged.coverage | campaign.coverage
        merged.crash_log.merge(campaign.crash_log)
        merged.executed_programs += campaign.executed_programs
        merged.executed_calls += campaign.executed_calls
        merged.corpus_size += campaign.corpus_size
    return merged


def average_coverage(campaigns: list[FuzzCampaign]) -> float:
    if not campaigns:
        return 0.0
    return sum(campaign.coverage_count for campaign in campaigns) / len(campaigns)


def average_crashes(campaigns: list[FuzzCampaign]) -> float:
    if not campaigns:
        return 0.0
    return sum(campaign.unique_crashes for campaign in campaigns) / len(campaigns)


def union_coverage(campaigns: list[FuzzCampaign]) -> CoverageBitmap:
    """The union of every campaign's coverage as one :class:`CoverageBitmap`."""
    blocks = CoverageBitmap()
    for campaign in campaigns:
        blocks = blocks | campaign.coverage
    return blocks


__all__ = [
    "Fuzzer",
    "FuzzCampaign",
    "run_campaign",
    "run_repeated_campaigns",
    "run_campaign_matrix",
    "merge_campaigns",
    "average_coverage",
    "average_crashes",
    "union_coverage",
]
