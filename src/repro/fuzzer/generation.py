"""Spec-driven program generation and mutation.

The generator builds syscall programs from a specification suite the same way
Syzkaller does: pick a resource-producing call (``openat``/``socket``), then a
handful of calls that consume the produced resource, and concretise every
argument according to its syzlang type.  The quality of the specification
directly determines the quality of the programs — wrong device paths never
open, wrong command values never dispatch, untyped buffers never satisfy
field-level guards — which is exactly the mechanism behind the paper's
coverage and bug-finding results.
"""

from __future__ import annotations

import random

from ..syzlang import (
    ArrayType,
    BufferType,
    ConstType,
    ConstantTable,
    FlagsType,
    IntType,
    LenType,
    NamedTypeRef,
    PtrType,
    ResourceRef,
    SpecSuite,
    StringType,
    Syscall,
    TypeExpr,
)
from .program import BytesValue, Call, Program, ResourceValue, StructValue

#: Values mutation favours: boundary and "interestingly large" numbers that
#: exercise allocation-size and index guards (and the injected bug triggers).
INTERESTING_VALUES = (
    0, 1, 2, 7, 64, 255, 4096, 0xFFFF, 0x10000, 0x100000,
    0x10000000, 0x20000000, 0x40000000, 0x7FFFFFFF, 0x7FFFFF00, 0xFFFFFFFF,
)


class ProgramGenerator:
    """Generates and mutates programs from one specification suite."""

    def __init__(self, suite: SpecSuite, constants: ConstantTable, *, seed: int = 0):
        self.suite = suite
        self.constants = constants
        self.rng = random.Random(seed)
        self._producers: list[Syscall] = []
        self._consumers: dict[str, list[Syscall]] = {}
        self._index()

    def _index(self) -> None:
        for syscall in self.suite:
            resource = syscall.produced_resource()
            if resource is not None and syscall.name in ("openat", "socket", "open"):
                self._producers.append(syscall)
        for syscall in self.suite:
            for resource in syscall.consumed_resources():
                self._consumers.setdefault(resource, []).append(syscall)

    @property
    def has_programs(self) -> bool:
        return bool(self._producers)

    # ------------------------------------------------------------- generate
    def generate(self, *, max_calls: int = 10) -> Program:
        """Generate a fresh program around one randomly chosen producer."""
        program = Program()
        if not self._producers:
            return program
        producer = self.rng.choice(self._producers)
        produced: dict[str, int] = {}
        self._append_call(program, producer, produced)
        resource = producer.produced_resource()
        if resource is not None:
            produced[resource] = 0

        budget = self.rng.randint(2, max_calls)
        for _ in range(budget):
            available = [res for res in produced if res in self._consumers]
            if not available:
                break
            resource = self.rng.choice(available)
            syscall = self.rng.choice(self._consumers[resource])
            index = self._append_call(program, syscall, produced)
            new_resource = syscall.produced_resource()
            if new_resource is not None:
                produced[new_resource] = index
        return program

    def _append_call(self, program: Program, syscall: Syscall, produced: dict[str, int]) -> int:
        args = {}
        for param in syscall.params:
            args[param.name] = self._value_for(param.type, produced)
        program.calls.append(Call(syscall=syscall.name, spec_name=syscall.full_name, args=args))
        return len(program.calls) - 1

    def _value_for(self, expr: TypeExpr, produced: dict[str, int]):
        if isinstance(expr, ConstType):
            try:
                return self.constants.resolve(expr.value)
            except Exception:
                return 0
        if isinstance(expr, IntType):
            if expr.min_value is not None and expr.max_value is not None:
                return self.rng.randint(expr.min_value, expr.max_value)
            return self.rng.choice(INTERESTING_VALUES)
        if isinstance(expr, FlagsType):
            return self.rng.choice((0, 1, 2, 4))
        if isinstance(expr, LenType):
            return self.rng.randint(1, 8)
        if isinstance(expr, StringType):
            return expr.values[0] if expr.values else "/dev/null"
        if isinstance(expr, (ResourceRef, NamedTypeRef)):
            name = expr.name
            if name in produced:
                return ResourceValue(produced[name])
            if name in self.suite.resources:
                # Unsatisfied dependency: no producer ran earlier in this program.
                return None
            return self._struct_value(name)
        if isinstance(expr, PtrType):
            return self._value_for(expr.elem, produced)
        if isinstance(expr, (ArrayType, BufferType)):
            return BytesValue(self.rng.randint(0, 64))
        return 0

    def _struct_value(self, struct_name: str) -> StructValue | BytesValue:
        definition = self.suite.get_type_def(struct_name)
        if definition is None:
            return BytesValue(self.rng.randint(0, 64))
        fields: dict[str, int] = {}
        for member in definition.fields:
            expr = member.type
            if isinstance(expr, LenType):
                fields[member.name] = self.rng.randint(1, 8)
                # Mark that this length was generated consistently with its
                # target array, so the executor can honour len-match guards.
                fields[f"__lenok_{member.name}"] = 1
            elif isinstance(expr, IntType):
                if expr.min_value is not None and expr.max_value is not None:
                    fields[member.name] = self.rng.randint(expr.min_value, expr.max_value)
                else:
                    fields[member.name] = self.rng.choice(INTERESTING_VALUES)
            elif isinstance(expr, FlagsType):
                fields[member.name] = self.rng.choice((0, 1, 2))
            elif isinstance(expr, ConstType):
                try:
                    fields[member.name] = self.constants.resolve(expr.value)
                except Exception:
                    fields[member.name] = 0
            else:
                fields[member.name] = self.rng.choice((0, 1, 8))
        return StructValue(
            struct_name=struct_name,
            fields=fields,
            byte_size=definition.byte_size(self.suite.size_resolver()),
        )

    # --------------------------------------------------------------- mutate
    def mutate(self, program: Program) -> Program:
        """Return a mutated copy of ``program``."""
        mutated = program.clone()
        if not mutated.calls:
            return mutated
        choice = self.rng.random()
        if choice < 0.7:
            self._mutate_argument(mutated)
        elif choice < 0.85 and len(mutated.calls) > 1:
            # Duplicate a consumer call (repetition often matters for races/leaks).
            index = self.rng.randrange(1, len(mutated.calls))
            mutated.calls.append(mutated.calls[index])
        else:
            extension = self.generate(max_calls=3)
            if extension.calls and extension.calls[0].spec_name == mutated.calls[0].spec_name:
                mutated.calls.extend(extension.calls[1:])
        return mutated

    def _mutate_argument(self, program: Program) -> None:
        call = self.rng.choice(program.calls)
        struct_args = [value for value in call.args.values() if isinstance(value, StructValue)]
        if struct_args:
            target = self.rng.choice(struct_args)
            names = [name for name in target.fields if not name.startswith("__")]
            if names:
                field_name = self.rng.choice(names)
                target.fields[field_name] = self.rng.choice(INTERESTING_VALUES)
                return
        byte_args = [value for value in call.args.values() if isinstance(value, BytesValue)]
        if byte_args:
            self.rng.choice(byte_args).length = self.rng.choice((0, 8, 64, 4096))


__all__ = ["ProgramGenerator", "INTERESTING_VALUES"]
