"""Spec-driven program generation and mutation.

The generator builds syscall programs from a specification suite the same way
Syzkaller does: pick a resource-producing call (``openat``/``socket``), then a
handful of calls that consume the produced resource, and concretise every
argument according to its syzlang type.  The quality of the specification
directly determines the quality of the programs — wrong device paths never
open, wrong command values never dispatch, untyped buffers never satisfy
field-level guards — which is exactly the mechanism behind the paper's
coverage and bug-finding results.

Argument concretisation is **precompiled**: at ``_index`` time every syscall
parameter's type expression collapses into a value plan (a small closure),
resolving constant values, string defaults, struct definitions and byte
sizes once per suite instead of walking the isinstance ladder per generated
call.  Plans draw from the generator's rng with exactly the calls (method,
arguments, order) the interpreted ladder made, so the generated program
stream is bit-identical to the pre-plan implementation.
"""

from __future__ import annotations

import random

from ..syzlang import (
    ArrayType,
    BufferType,
    ConstType,
    ConstantTable,
    FlagsType,
    IntType,
    LenType,
    NamedTypeRef,
    PtrType,
    ResourceRef,
    SpecSuite,
    StringType,
    Syscall,
    TypeExpr,
)
from .program import BytesValue, Call, Program, ResourceValue, StructValue

#: Values mutation favours: boundary and "interestingly large" numbers that
#: exercise allocation-size and index guards (and the injected bug triggers).
INTERESTING_VALUES = (
    0, 1, 2, 7, 64, 255, 4096, 0xFFFF, 0x10000, 0x100000,
    0x10000000, 0x20000000, 0x40000000, 0x7FFFFFFF, 0x7FFFFF00, 0xFFFFFFFF,
)

#: rng.choice pools shared by the compiled plans (allocated once, not per call).
_FLAG_CHOICES = (0, 1, 2, 4)
_STRUCT_FLAG_CHOICES = (0, 1, 2)
_FALLBACK_FIELD_CHOICES = (0, 1, 8)


class ProgramGenerator:
    """Generates and mutates programs from one specification suite."""

    def __init__(self, suite: SpecSuite, constants: ConstantTable, *, seed: int = 0):
        self.suite = suite
        self.constants = constants
        self.rng = random.Random(seed)
        self._producers: list[Syscall] = []
        self._consumers: dict[str, list[Syscall]] = {}
        self._struct_plans: dict = {}
        self._call_plans: dict = {}
        self._index()

    def _index(self) -> None:
        for syscall in self.suite:
            resource = syscall.produced_resource()
            if resource is not None and syscall.name in ("openat", "socket", "open"):
                self._producers.append(syscall)
        for syscall in self.suite:
            for resource in syscall.consumed_resources():
                self._consumers.setdefault(resource, []).append(syscall)
        # Precompile per-syscall value plans.  Suites are immutable during a
        # campaign, so resources / type defs / constants resolve once here.
        resources = self.suite.resources
        self._size_resolver = self.suite.size_resolver()
        for syscall in self.suite:
            self._call_plans[syscall.full_name] = tuple(
                (param.name, self._compile(param.type, resources)) for param in syscall.params
            )

    @property
    def has_programs(self) -> bool:
        return bool(self._producers)

    # ---------------------------------------------------------- value plans
    def _compile(self, expr: TypeExpr, resources):
        """Collapse one type expression into a ``plan(produced)`` closure.

        Plans capture the generator's rng *bound methods* (the generator is
        never pickled, and a suite is indexed exactly once per fuzzer), so a
        concretised value costs one closure call — no isinstance ladder, no
        constant-table lookup, no rng attribute traversal.
        """
        randint = self.rng.randint
        choice = self.rng.choice
        if isinstance(expr, ConstType):
            try:
                value = self.constants.resolve(expr.value)
            except Exception:
                value = 0
            return lambda produced, _value=value: _value
        if isinstance(expr, IntType):
            low, high = expr.min_value, expr.max_value
            if low is not None and high is not None:
                return lambda produced, _low=low, _high=high: randint(_low, _high)
            return lambda produced: choice(INTERESTING_VALUES)
        if isinstance(expr, FlagsType):
            return lambda produced: choice(_FLAG_CHOICES)
        if isinstance(expr, LenType):
            return lambda produced: randint(1, 8)
        if isinstance(expr, StringType):
            text = expr.values[0] if expr.values else "/dev/null"
            return lambda produced, _text=text: _text
        if isinstance(expr, (ResourceRef, NamedTypeRef)):
            name = expr.name
            if name in resources:
                def resource_plan(produced, _name=name):
                    if _name in produced:
                        return ResourceValue(produced[_name])
                    # Unsatisfied dependency: no producer ran earlier.
                    return None
                return resource_plan
            struct_plan = self._struct_plan(name)

            def named_plan(produced, _name=name, _struct=struct_plan):
                if _name in produced:
                    return ResourceValue(produced[_name])
                return _struct()
            return named_plan
        if isinstance(expr, PtrType):
            return self._compile(expr.elem, resources)
        if isinstance(expr, (ArrayType, BufferType)):
            return lambda produced: BytesValue(randint(0, 64))
        return lambda produced: 0

    def _struct_plan(self, struct_name: str):
        """A ``plan() -> StructValue | BytesValue`` for a named payload type."""
        plan = self._struct_plans.get(struct_name)
        if plan is not None:
            return plan
        definition = self.suite.get_type_def(struct_name)
        if definition is None:
            randint = self.rng.randint

            def plan():
                return BytesValue(randint(0, 64))
        else:
            byte_size = definition.byte_size(self._size_resolver)
            field_plans = tuple(self._compile_field(member) for member in definition.fields)

            def plan(_name=struct_name, _fills=field_plans, _size=byte_size):
                fields: dict[str, int] = {}
                for fill in _fills:
                    fill(fields)
                return StructValue(struct_name=_name, fields=fields, byte_size=_size)
        self._struct_plans[struct_name] = plan
        return plan

    def _compile_field(self, member):
        """A ``fill(fields)`` writer for one struct/union member."""
        expr = member.type
        name = member.name
        randint = self.rng.randint
        choice = self.rng.choice
        if isinstance(expr, LenType):
            # Mark that this length was generated consistently with its
            # target array, so the executor can honour len-match guards.
            lenok = f"__lenok_{name}"

            def fill(fields, _name=name, _lenok=lenok):
                fields[_name] = randint(1, 8)
                fields[_lenok] = 1
            return fill
        if isinstance(expr, IntType):
            low, high = expr.min_value, expr.max_value
            if low is not None and high is not None:
                def fill(fields, _name=name, _low=low, _high=high):
                    fields[_name] = randint(_low, _high)
                return fill

            def fill(fields, _name=name):
                fields[_name] = choice(INTERESTING_VALUES)
            return fill
        if isinstance(expr, FlagsType):
            def fill(fields, _name=name):
                fields[_name] = choice(_STRUCT_FLAG_CHOICES)
            return fill
        if isinstance(expr, ConstType):
            try:
                value = self.constants.resolve(expr.value)
            except Exception:
                value = 0

            def fill(fields, _name=name, _value=value):
                fields[_name] = _value
            return fill

        def fill(fields, _name=name):
            fields[_name] = choice(_FALLBACK_FIELD_CHOICES)
        return fill

    # ------------------------------------------------------------- generate
    def generate(self, *, max_calls: int = 10) -> Program:
        """Generate a fresh program around one randomly chosen producer."""
        program = Program()
        if not self._producers:
            return program
        choice = self.rng.choice
        consumers = self._consumers
        producer = choice(self._producers)
        produced: dict[str, int] = {}
        self._append_call(program, producer, produced)
        resource = producer.produced_resource()
        if resource is not None:
            produced[resource] = 0

        budget = self.rng.randint(2, max_calls)
        for _ in range(budget):
            available = [res for res in produced if res in consumers]
            if not available:
                break
            resource = choice(available)
            syscall = choice(consumers[resource])
            index = self._append_call(program, syscall, produced)
            new_resource = syscall.produced_resource()
            if new_resource is not None:
                produced[new_resource] = index
        return program

    def _append_call(self, program: Program, syscall: Syscall, produced: dict[str, int]) -> int:
        args = {}
        for name, plan in self._call_plans[syscall.full_name]:
            args[name] = plan(produced)
        program.calls.append(Call(syscall=syscall.name, spec_name=syscall.full_name, args=args))
        return len(program.calls) - 1

    # --------------------------------------------------------------- mutate
    def mutate(self, program: Program) -> Program:
        """Return a mutated copy of ``program``."""
        mutated = program.clone()
        if not mutated.calls:
            return mutated
        choice = self.rng.random()
        if choice < 0.7:
            self._mutate_argument(mutated)
        elif choice < 0.85 and len(mutated.calls) > 1:
            # Duplicate a consumer call (repetition often matters for races/leaks).
            index = self.rng.randrange(1, len(mutated.calls))
            mutated.calls.append(mutated.calls[index])
        else:
            extension = self.generate(max_calls=3)
            if extension.calls and extension.calls[0].spec_name == mutated.calls[0].spec_name:
                mutated.calls.extend(extension.calls[1:])
        return mutated

    def _mutate_argument(self, program: Program) -> None:
        call = self.rng.choice(program.calls)
        struct_args = [value for value in call.args.values() if isinstance(value, StructValue)]
        if struct_args:
            target = self.rng.choice(struct_args)
            names = [name for name in target.fields if not name.startswith("__")]
            if names:
                field_name = self.rng.choice(names)
                target.fields[field_name] = self.rng.choice(INTERESTING_VALUES)
                return
        byte_args = [value for value in call.args.values() if isinstance(value, BytesValue)]
        if byte_args:
            self.rng.choice(byte_args).length = self.rng.choice((0, 8, 64, 4096))


__all__ = ["ProgramGenerator", "INTERESTING_VALUES"]
