"""Syscall program representation used by the fuzzing substrate.

A program is an ordered list of syscalls with concrete argument values, the
unit Syzkaller generates, mutates and executes.  Argument values carry just
enough structure for the simulated kernel executor to evaluate the semantic
guards of the ground truth: typed struct payloads keep their *field names*
(so a specification that recovered the real field layout can hit field-level
guards and bug triggers) while untyped payloads only carry a byte size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


@dataclass(slots=True)
class StructValue:
    """A typed payload: the struct name the spec used plus concrete field values."""

    struct_name: str
    fields: dict[str, int] = field(default_factory=dict)
    byte_size: int = 0

    def get(self, field_name: str, default: int = 0) -> int:
        return self.fields.get(field_name, default)


@dataclass(slots=True)
class BytesValue:
    """An untyped payload: only its length is known."""

    length: int = 0


@dataclass(slots=True)
class ResourceValue:
    """A reference to the result of an earlier call in the same program."""

    producer_index: int


Value = int | str | StructValue | BytesValue | ResourceValue | None


@dataclass(slots=True)
class Call:
    """One concrete syscall invocation."""

    syscall: str                     # generic name: openat, ioctl, setsockopt, ...
    spec_name: str                   # the spec's full name (ioctl$DM_DEV_CREATE)
    args: dict[str, Value] = field(default_factory=dict)

    def arg(self, name: str, default: Value = None) -> Value:
        return self.args.get(name, default)


@dataclass(slots=True)
class Program:
    """An ordered sequence of calls."""

    calls: list[Call] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.calls)

    def __iter__(self):
        return iter(self.calls)

    def clone(self) -> "Program":
        # Mutation-hot path: only the mutable payload values (structs and
        # byte buffers) need fresh copies; ints/strings/None and the
        # effectively-immutable ResourceValue references are shared.
        cloned_calls = []
        append = cloned_calls.append
        for call in self.calls:
            args: dict[str, Value] = {}
            for name, value in call.args.items():
                cls = value.__class__
                if cls is StructValue:
                    value = StructValue(value.struct_name, dict(value.fields), value.byte_size)
                elif cls is BytesValue:
                    value = BytesValue(value.length)
                args[name] = value
            append(Call(call.syscall, call.spec_name, args))
        return Program(cloned_calls)

    def spec_names(self) -> tuple[str, ...]:
        return tuple(call.spec_name for call in self.calls)


__all__ = ["StructValue", "BytesValue", "ResourceValue", "Call", "Program", "Value"]
