"""A minimal simulated QEMU VM pool.

The paper fuzzes with 4 QEMU instances of 2 vCPUs each; crashes reboot the
affected VM.  The simulated pool tracks those mechanics (acquisitions,
crash-induced reboots) so campaign statistics can report them, without
affecting execution semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class VMInstance:
    """One simulated virtual machine."""

    vm_id: int
    cpus: int = 2
    executions: int = 0
    reboots: int = 0


@dataclass
class VMPool:
    """Round-robin pool of simulated VMs."""

    size: int = 4
    cpus_per_vm: int = 2
    instances: list[VMInstance] = field(default_factory=list)
    _next: int = 0

    def __post_init__(self) -> None:
        if not self.instances:
            self.instances = [VMInstance(vm_id=i, cpus=self.cpus_per_vm) for i in range(self.size)]

    def acquire(self) -> VMInstance:
        vm = self.instances[self._next % len(self.instances)]
        self._next += 1
        vm.executions += 1
        return vm

    def release(self, vm: VMInstance, *, crashed: bool = False) -> None:
        if crashed:
            vm.reboots += 1

    def total_executions(self) -> int:
        return sum(vm.executions for vm in self.instances)

    def total_reboots(self) -> int:
        return sum(vm.reboots for vm in self.instances)


__all__ = ["VMInstance", "VMPool"]
