"""The retained string-set reference implementation of the fuzz loop.

Before the coverage-bitmap rewrite, the executor reported coverage as a set
of label strings and the campaign loop unioned those sets.  This module
preserves that implementation **verbatim** as the equivalence oracle:

* ``tests/test_coverage_bitmap.py`` proves that every campaign's
  :meth:`~repro.kernel.coverage.CoverageBitmap.labels` equals the reference
  string set (and that crashes, corpus growth and call counts match) for all
  suites in the determinism matrix;
* ``benchmarks/bench_fuzzer_hotloop.py`` uses it as the measured baseline
  the interned hot loop must beat.

It is deliberately *not* exported from ``repro.fuzzer``'s public namespace —
nothing in the evaluation path should ever run it — and any semantic change
to the bitmap executor must be mirrored here or the equivalence tests fail.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..kernel import (
    BugTrigger,
    DispatchStyle,
    Guard,
    GuardKind,
    IoctlOp,
    KernelCodebase,
    SecondaryHandlerTruth,
    ioc_nr,
)
from ..syzlang import (
    ArrayType,
    BufferType,
    ConstType,
    ConstantTable,
    FlagsType,
    IntType,
    LenType,
    NamedTypeRef,
    PtrType,
    ResourceRef,
    SpecSuite,
    StringType,
    Syscall,
    TypeExpr,
)
from .crash import CrashLog, CrashReport
from .generation import INTERESTING_VALUES
from .program import BytesValue, Call, Program, ResourceValue, StructValue


class LadderProgramGenerator:
    """The pre-plan generator: per-value isinstance ladder, no compilation.

    Byte-for-byte the implementation that shipped before value plans.  Its
    rng call sequence is the contract the compiled plans must preserve, so
    the reference campaign generating through this class while the bitmap
    campaign generates through the compiled plans proves the two program
    streams identical, not merely both self-consistent.
    """

    def __init__(self, suite: SpecSuite, constants: ConstantTable, *, seed: int = 0):
        self.suite = suite
        self.constants = constants
        self.rng = random.Random(seed)
        self._producers: list[Syscall] = []
        self._consumers: dict[str, list[Syscall]] = {}
        self._index()

    def _index(self) -> None:
        for syscall in self.suite:
            resource = syscall.produced_resource()
            if resource is not None and syscall.name in ("openat", "socket", "open"):
                self._producers.append(syscall)
        for syscall in self.suite:
            for resource in syscall.consumed_resources():
                self._consumers.setdefault(resource, []).append(syscall)

    @property
    def has_programs(self) -> bool:
        return bool(self._producers)

    # ------------------------------------------------------------- generate
    def generate(self, *, max_calls: int = 10) -> Program:
        program = Program()
        if not self._producers:
            return program
        producer = self.rng.choice(self._producers)
        produced: dict[str, int] = {}
        self._append_call(program, producer, produced)
        resource = producer.produced_resource()
        if resource is not None:
            produced[resource] = 0

        budget = self.rng.randint(2, max_calls)
        for _ in range(budget):
            available = [res for res in produced if res in self._consumers]
            if not available:
                break
            resource = self.rng.choice(available)
            syscall = self.rng.choice(self._consumers[resource])
            index = self._append_call(program, syscall, produced)
            new_resource = syscall.produced_resource()
            if new_resource is not None:
                produced[new_resource] = index
        return program

    def _append_call(self, program: Program, syscall: Syscall, produced: dict[str, int]) -> int:
        args = {}
        for param in syscall.params:
            args[param.name] = self._value_for(param.type, produced)
        program.calls.append(Call(syscall=syscall.name, spec_name=syscall.full_name, args=args))
        return len(program.calls) - 1

    def _value_for(self, expr: TypeExpr, produced: dict[str, int]):
        if isinstance(expr, ConstType):
            try:
                return self.constants.resolve(expr.value)
            except Exception:
                return 0
        if isinstance(expr, IntType):
            if expr.min_value is not None and expr.max_value is not None:
                return self.rng.randint(expr.min_value, expr.max_value)
            return self.rng.choice(INTERESTING_VALUES)
        if isinstance(expr, FlagsType):
            return self.rng.choice((0, 1, 2, 4))
        if isinstance(expr, LenType):
            return self.rng.randint(1, 8)
        if isinstance(expr, StringType):
            return expr.values[0] if expr.values else "/dev/null"
        if isinstance(expr, (ResourceRef, NamedTypeRef)):
            name = expr.name
            if name in produced:
                return ResourceValue(produced[name])
            if name in self.suite.resources:
                return None
            return self._struct_value(name)
        if isinstance(expr, PtrType):
            return self._value_for(expr.elem, produced)
        if isinstance(expr, (ArrayType, BufferType)):
            return BytesValue(self.rng.randint(0, 64))
        return 0

    def _struct_value(self, struct_name: str) -> StructValue | BytesValue:
        definition = self.suite.get_type_def(struct_name)
        if definition is None:
            return BytesValue(self.rng.randint(0, 64))
        fields: dict[str, int] = {}
        for member in definition.fields:
            expr = member.type
            if isinstance(expr, LenType):
                fields[member.name] = self.rng.randint(1, 8)
                fields[f"__lenok_{member.name}"] = 1
            elif isinstance(expr, IntType):
                if expr.min_value is not None and expr.max_value is not None:
                    fields[member.name] = self.rng.randint(expr.min_value, expr.max_value)
                else:
                    fields[member.name] = self.rng.choice(INTERESTING_VALUES)
            elif isinstance(expr, FlagsType):
                fields[member.name] = self.rng.choice((0, 1, 2))
            elif isinstance(expr, ConstType):
                try:
                    fields[member.name] = self.constants.resolve(expr.value)
                except Exception:
                    fields[member.name] = 0
            else:
                fields[member.name] = self.rng.choice((0, 1, 8))
        return StructValue(
            struct_name=struct_name,
            fields=fields,
            byte_size=definition.byte_size(self.suite.size_resolver()),
        )

    # --------------------------------------------------------------- mutate
    def mutate(self, program: Program) -> Program:
        mutated = program.clone()
        if not mutated.calls:
            return mutated
        choice = self.rng.random()
        if choice < 0.7:
            self._mutate_argument(mutated)
        elif choice < 0.85 and len(mutated.calls) > 1:
            index = self.rng.randrange(1, len(mutated.calls))
            mutated.calls.append(mutated.calls[index])
        else:
            extension = self.generate(max_calls=3)
            if extension.calls and extension.calls[0].spec_name == mutated.calls[0].spec_name:
                mutated.calls.extend(extension.calls[1:])
        return mutated

    def _mutate_argument(self, program: Program) -> None:
        call = self.rng.choice(program.calls)
        struct_args = [value for value in call.args.values() if isinstance(value, StructValue)]
        if struct_args:
            target = self.rng.choice(struct_args)
            names = [name for name in target.fields if not name.startswith("__")]
            if names:
                field_name = self.rng.choice(names)
                target.fields[field_name] = self.rng.choice(INTERESTING_VALUES)
                return
        byte_args = [value for value in call.args.values() if isinstance(value, BytesValue)]
        if byte_args:
            self.rng.choice(byte_args).length = self.rng.choice((0, 8, 64, 4096))


@dataclass
class ReferenceResult:
    """Coverage (label strings) and crashes of one reference execution."""

    coverage: set[str] = field(default_factory=set)
    crashes: list[CrashReport] = field(default_factory=list)
    executed_calls: int = 0


class _FdBinding:
    """What a program-level file descriptor refers to."""

    __slots__ = ("kind", "driver", "secondary", "socket")

    def __init__(self, kind, driver=None, secondary=None, socket=None):
        self.kind = kind                       # "driver" | "secondary" | "socket"
        self.driver = driver
        self.secondary = secondary
        self.socket = socket


class StringSetExecutor:
    """The pre-bitmap executor: f-string labels, linear ``_match_ioctl`` scans."""

    def __init__(self, kernel: KernelCodebase):
        self.kernel = kernel

    # ------------------------------------------------------------------ API
    def execute(self, program: Program) -> ReferenceResult:
        result = ReferenceResult()
        bindings: dict[int, _FdBinding] = {}
        produced_resources: set[str] = set()

        for index, call in enumerate(program):
            result.executed_calls += 1
            if call.syscall in ("openat", "open"):
                self._exec_open(call, index, bindings, result)
            elif call.syscall == "socket":
                self._exec_socket(call, index, bindings, result)
            elif call.syscall == "ioctl":
                self._exec_ioctl(call, index, bindings, produced_resources, result)
            else:
                self._exec_sockcall(call, bindings, result)
        return result

    # ------------------------------------------------------------- syscalls
    def _exec_open(self, call, index, bindings, result) -> None:
        path = call.arg("file")
        if not isinstance(path, str):
            return
        driver = self.kernel.resolve_device(path)
        if driver is None:
            return
        for block in range(driver.open_blocks):
            result.coverage.add(f"{driver.name}:open:{block}")
        bindings[index] = _FdBinding(kind="driver", driver=driver)

    def _exec_socket(self, call, index, bindings, result) -> None:
        family = call.arg("domain")
        sock_type = call.arg("type")
        protocol = call.arg("proto")
        if not all(isinstance(value, int) for value in (family, sock_type, protocol)):
            return
        socket = self.kernel.resolve_socket(family, sock_type, protocol)
        if socket is None:
            return
        for block in range(socket.create_blocks):
            result.coverage.add(f"{socket.name}:create:{block}")
        bindings[index] = _FdBinding(kind="socket", socket=socket)

    def _exec_ioctl(self, call, index, bindings, produced_resources, result) -> None:
        binding = self._resolve_fd(call.arg("fd"), bindings)
        if binding is None or binding.kind == "socket":
            return
        cmd = call.arg("cmd")
        if not isinstance(cmd, int):
            return
        if binding.kind == "driver":
            driver = binding.driver
            owner = driver.name
            ops = driver.ops
            rewrite = driver.dispatch in (DispatchStyle.IOC_NR_REWRITE, DispatchStyle.TABLE_LOOKUP)
            entry_blocks = driver.ioctl_entry_blocks
        else:
            secondary = binding.secondary
            owner = secondary.name
            ops = secondary.ops
            rewrite = False
            entry_blocks = secondary.ioctl_entry_blocks
        for block in range(entry_blocks):
            result.coverage.add(f"{owner}:ioctl-entry:{block}")

        op = self._match_ioctl(ops, cmd, rewrite)
        if op is None:
            result.coverage.add(f"{owner}:ioctl-entry:default")
            return
        self._cover_op(owner, op.macro, op.base_blocks, op.guards, op.bug, call.arg("arg"),
                       op.arg_struct, produced_resources, result, requires=op.requires)
        if op.produces:
            produced_resources.add(op.produces)
            secondary = self._secondary_for(binding, op.produces)
            if secondary is not None:
                bindings[index] = _FdBinding(kind="secondary", driver=binding.driver, secondary=secondary)

    def _exec_sockcall(self, call, bindings, result) -> None:
        binding = self._resolve_fd(call.arg("fd"), bindings)
        if binding is None or binding.kind != "socket":
            return
        socket = binding.socket
        result.coverage.add(f"{socket.name}:{call.syscall}:entry")

        if call.syscall in ("setsockopt", "getsockopt"):
            optname = call.arg("optname")
            if not isinstance(optname, int):
                return
            op = next(
                (candidate for candidate in socket.ops
                 if candidate.syscall == call.syscall and candidate.value == optname),
                None,
            )
            payload = call.arg("optval")
        else:
            op = next((candidate for candidate in socket.ops if candidate.syscall == call.syscall), None)
            payload = call.arg("buf") or call.arg("addr")
        if op is None:
            return
        self._cover_op(socket.name, op.interface_name, op.base_blocks, op.guards, op.bug,
                       payload, op.arg_struct, set(), result)

    # -------------------------------------------------------------- helpers
    @staticmethod
    def _resolve_fd(value, bindings):
        if isinstance(value, ResourceValue):
            return bindings.get(value.producer_index)
        return None

    @staticmethod
    def _match_ioctl(ops: tuple[IoctlOp, ...], cmd: int, rewrite: bool) -> IoctlOp | None:
        for op in ops:
            if rewrite:
                if ((cmd >> 8) & 0xFF) != ((op.value >> 8) & 0xFF):
                    continue
                if op.nr_value is not None and ioc_nr(cmd) == op.nr_value:
                    return op
            elif cmd == op.value:
                return op
        return None

    def _secondary_for(self, binding, resource: str) -> SecondaryHandlerTruth | None:
        driver = binding.driver
        if driver is None:
            return None
        for secondary in driver.secondary_handlers:
            if secondary.resource == resource:
                return secondary
        return None

    def _cover_op(self, owner, op_label, base_blocks, guards, bug, payload, arg_struct,
                  produced_resources, result, *, requires=None) -> None:
        if requires and requires not in produced_resources:
            result.coverage.add(f"{owner}:{op_label}:requires-missing")
            return
        for block in range(base_blocks):
            result.coverage.add(f"{owner}:{op_label}:base:{block}")

        typed = isinstance(payload, StructValue)
        payload_size = 0
        if isinstance(payload, StructValue):
            payload_size = payload.byte_size or 4096
        elif isinstance(payload, BytesValue):
            payload_size = payload.length

        truth_size = self._truth_struct_size(owner, arg_struct)
        if arg_struct is not None and payload_size >= truth_size:
            result.coverage.add(f"{owner}:{op_label}:copy-in")

        for guard_index, guard in enumerate(guards):
            if self._guard_passes(guard, payload, typed, produced_resources):
                for bonus in range(guard.bonus_blocks):
                    result.coverage.add(f"{owner}:{op_label}:guard{guard_index}:{bonus}")

        if bug is not None and self._bug_fires(bug, payload, typed, produced_resources):
            catalog = self.kernel.bug_catalog
            if bug.bug_id in catalog:
                known = catalog.get(bug.bug_id)
                result.crashes.append(
                    CrashReport(bug_id=known.bug_id, title=known.title,
                                crash_type=known.crash_type, subsystem=known.subsystem)
                )
            else:
                result.crashes.append(
                    CrashReport(bug_id=bug.bug_id, title=bug.bug_id, crash_type="unknown", subsystem=owner)
                )

    def _truth_struct_size(self, owner: str, arg_struct: str | None) -> int:
        if arg_struct is None:
            return 0
        truth = self.kernel.drivers.get(owner) or self.kernel.sockets.get(owner)
        if truth is None:
            for driver in self.kernel.drivers.values():
                for secondary in driver.secondary_handlers:
                    if secondary.name == owner:
                        truth = driver
                        break
        if truth is None:
            return 8
        struct = truth.struct_by_name(arg_struct)
        return struct.byte_size() if struct is not None else 8

    @staticmethod
    def _guard_passes(guard: Guard, payload, typed: bool, produced_resources: set[str]) -> bool:
        if guard.kind is GuardKind.NEEDS_RESOURCE:
            return guard.resource in produced_resources
        if guard.kind is GuardKind.MIN_SIZE:
            if isinstance(payload, StructValue):
                return payload.byte_size >= guard.value
            if isinstance(payload, BytesValue):
                return payload.length >= guard.value
            return False
        if not typed or not isinstance(payload, StructValue):
            return False
        value = payload.get(guard.field)
        if guard.kind is GuardKind.FIELD_RANGE:
            return guard.low <= value <= guard.high
        if guard.kind is GuardKind.FIELD_EQUALS:
            return value == guard.value
        if guard.kind is GuardKind.FLAGS_SUBSET:
            return (value & ~guard.value) == 0
        if guard.kind is GuardKind.LEN_MATCHES:
            return payload.get(f"__lenok_{guard.field}", 0) == 1
        return False

    @staticmethod
    def _bug_fires(bug: BugTrigger, payload, typed: bool, produced_resources: set[str]) -> bool:
        if bug.requires_resource and bug.requires_resource not in produced_resources:
            return False
        if bug.requires_typed and not typed:
            return False
        if not isinstance(payload, StructValue):
            return False
        value = payload.get(bug.field)
        if bug.equals is not None:
            return value == bug.equals
        if bug.min_value is not None and value < bug.min_value:
            return False
        if bug.max_value is not None and value > bug.max_value:
            return False
        return True


@dataclass
class ReferenceCampaign:
    """The outcome of one reference campaign (string-set coverage)."""

    suite_name: str
    seed: int
    coverage: set[str] = field(default_factory=set)
    crash_log: CrashLog = field(default_factory=CrashLog)
    executed_programs: int = 0
    executed_calls: int = 0
    corpus_size: int = 0


def run_reference_campaign(
    kernel: KernelCodebase,
    suite: SpecSuite,
    seed: int,
    budget_programs: int,
    mutation_bias: float = 0.6,
) -> ReferenceCampaign:
    """One seeded campaign through the legacy string-set loop.

    Mirrors :meth:`repro.fuzzer.fuzzer.Fuzzer.run` decision for decision —
    same two rng streams (loop rng and generator rng, both seeded with
    ``seed``), same mutate-vs-generate choice, same keep-if-new-coverage
    corpus rule — but generates through the pre-plan
    :class:`LadderProgramGenerator` and executes through the string-set
    executor, so its coverage set is exactly what the bitmap campaign's
    ``labels()`` must reproduce *and* any rng drift in the compiled value
    plans shows up as a coverage mismatch.
    """
    executor = StringSetExecutor(kernel)
    generator = LadderProgramGenerator(suite, kernel.constants, seed=seed)
    rng = random.Random(seed)
    campaign = ReferenceCampaign(suite_name=suite.name, seed=seed)
    if not generator.has_programs:
        return campaign
    corpus: list[Program] = []
    for _ in range(budget_programs):
        if corpus and rng.random() < mutation_bias:
            program = generator.mutate(rng.choice(corpus))
        else:
            program = generator.generate()
        result = executor.execute(program)
        campaign.executed_programs += 1
        campaign.executed_calls += result.executed_calls
        new_blocks = result.coverage - campaign.coverage
        campaign.coverage.update(result.coverage)
        for crash in result.crashes:
            campaign.crash_log.record(crash)
        if new_blocks:
            corpus.append(program)
    campaign.corpus_size = len(corpus)
    return campaign


__all__ = [
    "LadderProgramGenerator",
    "ReferenceCampaign",
    "ReferenceResult",
    "StringSetExecutor",
    "run_reference_campaign",
]
