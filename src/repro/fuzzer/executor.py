"""The simulated kernel executor.

Programs are interpreted against the synthetic kernel's ground truth: opening
the right device node yields a file descriptor bound to that driver, a
dispatchable command value reaches its per-command handler, semantically valid
arguments pass the handler's guards and cover its deeper basic blocks, and the
injected bug predicates fire only when the triggering field values are
reachable — i.e. when the specification that generated the program knew the
command value and the argument layout.

Coverage is reported as **interned block indices** into the kernel's
:class:`~repro.kernel.coverage.CoverageSpace`.  The executor is compiled once
per kernel into dispatch plans: dict-based ``cmd → op`` tables replace the
linear ``_match_ioctl`` scans, per-op precomputed index tuples replace the
f-string label formatting, and each guard / bug predicate collapses into a
specialised closure, so executing a call adds small integers to a set instead
of building and hashing label strings.  Campaigns fold the index sets into
:class:`~repro.kernel.coverage.CoverageBitmap` values whose ``labels()``
recover exactly the strings the legacy implementation produced — pinned by
``tests/test_coverage_bitmap.py`` against ``repro.fuzzer.reference``, which
preserves the original string-set implementation verbatim.  Any semantic
change here must be mirrored there.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

from ..kernel import (
    BugTrigger,
    DispatchStyle,
    DriverTruth,
    Guard,
    GuardKind,
    IoctlOp,
    KernelCodebase,
    SockOp,
    SocketTruth,
)
from ..kernel.coverage import CoverageSpace
from .crash import CrashReport
from .program import BytesValue, Program, ResourceValue, StructValue


@dataclass
class ExecutionResult:
    """Coverage and crashes produced by one program execution.

    ``coverage`` holds interned block indices; ``extras`` the rare labels
    outside the space (a sockcall entry for a syscall no ground-truth op
    names).  :meth:`labels` recovers the legacy string set for reporting.
    """

    coverage: set[int] = field(default_factory=set)
    extras: set[str] = field(default_factory=set)
    crashes: list[CrashReport] = field(default_factory=list)
    executed_calls: int = 0
    space: CoverageSpace | None = field(default=None, repr=False, compare=False)

    def labels(self) -> set[str]:
        """The covered block labels as strings (tests/reports, not the hot loop)."""
        if self.coverage and self.space is None:
            raise RuntimeError("ExecutionResult has no coverage space bound")
        covered = {self.space.label_of(index) for index in self.coverage} if self.coverage else set()
        covered.update(self.extras)
        return covered


def _compile_guard(guard: Guard):
    """Specialise one guard into a ``check(payload, typed, produced)`` closure.

    ``typed`` is ``isinstance(payload, StructValue)``, computed once per op by
    the caller; field guards read ``payload.fields`` directly with the same
    0-default ``StructValue.get`` used.  Semantics match the interpreted
    ``_guard_passes`` ladder preserved in ``repro.fuzzer.reference``.
    """
    kind = guard.kind
    if kind is GuardKind.NEEDS_RESOURCE:
        resource = guard.resource

        def check(payload, typed, produced, _resource=resource):
            return _resource in produced
        return check
    if kind is GuardKind.MIN_SIZE:
        minimum = guard.value

        def check(payload, typed, produced, _minimum=minimum):
            if typed:
                return payload.byte_size >= _minimum
            if isinstance(payload, BytesValue):
                return payload.length >= _minimum
            return False
        return check
    field_name = guard.field
    if kind is GuardKind.FIELD_RANGE:
        low, high = guard.low, guard.high

        def check(payload, typed, produced, _field=field_name, _low=low, _high=high):
            return typed and _low <= payload.fields.get(_field, 0) <= _high
        return check
    if kind is GuardKind.FIELD_EQUALS:
        value = guard.value

        def check(payload, typed, produced, _field=field_name, _value=value):
            return typed and payload.fields.get(_field, 0) == _value
        return check
    if kind is GuardKind.FLAGS_SUBSET:
        value = guard.value

        def check(payload, typed, produced, _field=field_name, _value=value):
            return typed and (payload.fields.get(_field, 0) & ~_value) == 0
        return check
    if kind is GuardKind.LEN_MATCHES:
        lenok = f"__lenok_{field_name}"

        def check(payload, typed, produced, _lenok=lenok):
            return typed and payload.fields.get(_lenok, 0) == 1
        return check

    def check(payload, typed, produced):
        return False
    return check


def _compile_bug(bug: BugTrigger):
    """Specialise one bug trigger into a ``fires(payload, typed, produced)``.

    The legacy ladder's ``requires_typed``/``isinstance`` pair collapses to
    one ``typed`` check: an untyped payload can never satisfy the field
    predicates regardless of ``requires_typed`` (the isinstance check ran
    unconditionally), so the compiled predicate is exactly equivalent.
    """
    requires_resource = bug.requires_resource or None
    field_name = bug.field
    equals = bug.equals
    min_value = bug.min_value
    max_value = bug.max_value

    def fires(payload, typed, produced):
        if requires_resource is not None and requires_resource not in produced:
            return False
        if not typed:
            return False
        value = payload.fields.get(field_name, 0)
        if equals is not None:
            return value == equals
        if min_value is not None and value < min_value:
            return False
        if max_value is not None and value > max_value:
            return False
        return True
    return fires


class _OpPlan:
    """Precompiled execution plan for one ioctl/sockcall operation."""

    __slots__ = (
        "requires",
        "requires_missing_index",
        "base_indices",
        "copyin_index",
        "copyin_min_size",
        "guards",
        "bug_fires",
        "crash_report",
        "produces",
    )

    def __init__(
        self,
        space: CoverageSpace,
        kernel: KernelCodebase,
        owner: str,
        op_label: str,
        op: "IoctlOp | SockOp",
        truth: "DriverTruth | SocketTruth",
        *,
        requires: str | None = None,
        produces: str | None = None,
    ):
        self.requires = requires or None
        self.requires_missing_index = space.get(f"{owner}:{op_label}:requires-missing")
        self.base_indices = space.indices_of(
            f"{owner}:{op_label}:base:{block}" for block in range(op.base_blocks)
        )
        if op.arg_struct is not None:
            self.copyin_index = space.index_of(f"{owner}:{op_label}:copy-in")
            struct = truth.struct_by_name(op.arg_struct)
            self.copyin_min_size = struct.byte_size() if struct is not None else 8
        else:
            self.copyin_index = None
            self.copyin_min_size = 0
        self.guards = tuple(
            (
                _compile_guard(guard),
                space.indices_of(
                    f"{owner}:{op_label}:guard{guard_index}:{bonus}"
                    for bonus in range(guard.bonus_blocks)
                ),
            )
            for guard_index, guard in enumerate(op.guards)
        )
        self.produces = produces
        if op.bug is not None:
            self.bug_fires = _compile_bug(op.bug)
            # The crash report for a trigger is a pure function of the bug
            # catalog; resolve it once so firing a bug appends a prebuilt
            # frozen report instead of re-querying the catalog per crash.
            catalog = kernel.bug_catalog
            if op.bug.bug_id in catalog:
                known = catalog.get(op.bug.bug_id)
                self.crash_report = CrashReport(
                    bug_id=known.bug_id, title=known.title,
                    crash_type=known.crash_type, subsystem=known.subsystem,
                )
            else:
                self.crash_report = CrashReport(
                    bug_id=op.bug.bug_id, title=op.bug.bug_id,
                    crash_type="unknown", subsystem=owner,
                )
        else:
            self.bug_fires = None
            self.crash_report = None


class _IoctlSurface:
    """One compiled ioctl dispatch surface (a driver's fops or a secondary)."""

    __slots__ = ("open_indices", "entry_indices", "default_index", "rewrite", "table", "secondaries")

    def __init__(
        self,
        space: CoverageSpace,
        kernel: KernelCodebase,
        owner: str,
        entry_blocks: int,
        ops: tuple[IoctlOp, ...],
        rewrite: bool,
        truth: DriverTruth,
        open_indices: tuple[int, ...] = (),
    ):
        self.open_indices = open_indices
        self.entry_indices = space.indices_of(
            f"{owner}:ioctl-entry:{block}" for block in range(entry_blocks)
        )
        self.default_index = space.index_of(f"{owner}:ioctl-entry:default")
        self.rewrite = rewrite
        # Dict dispatch replacing the linear first-match scan: first op wins
        # on key collision (setdefault), exactly like the scan did.  With the
        # _IOC_NR rewrite the dispatcher checks the magic byte then switches
        # on the NR field, so the key is (magic, nr) and ops without an
        # nr_value are unreachable — the scan skipped them too.
        self.table: dict = {}
        for op in ops:
            plan = _OpPlan(
                space, kernel, owner, op.macro, op, truth,
                requires=op.requires, produces=op.produces,
            )
            if rewrite:
                if op.nr_value is not None:
                    self.table.setdefault(((op.value >> 8) & 0xFF, op.nr_value), plan)
            else:
                self.table.setdefault(op.value, plan)
        self.secondaries: dict[str, "_IoctlSurface"] = {}


class _SocketPlan:
    """One compiled socket surface: create blocks, entries, op tables."""

    __slots__ = ("name", "create_indices", "entry_index_by_syscall", "sockopt_tables", "sockcall_table")

    def __init__(self, space: CoverageSpace, kernel: KernelCodebase, socket: SocketTruth):
        self.name = socket.name
        self.create_indices = space.indices_of(
            f"{socket.name}:create:{block}" for block in range(socket.create_blocks)
        )
        self.entry_index_by_syscall: dict[str, int] = {}
        # Per-syscall optname tables (two small dict hits beat a tuple
        # allocation per setsockopt/getsockopt in the hot loop).
        self.sockopt_tables: dict[str, dict[int, _OpPlan]] = {"setsockopt": {}, "getsockopt": {}}
        self.sockcall_table: dict[str, _OpPlan] = {}
        for op in socket.ops:
            entry = space.get(f"{socket.name}:{op.syscall}:entry")
            if entry is not None:
                self.entry_index_by_syscall.setdefault(op.syscall, entry)
            plan = _OpPlan(space, kernel, socket.name, op.interface_name, op, socket)
            if op.syscall in ("setsockopt", "getsockopt"):
                self.sockopt_tables[op.syscall].setdefault(op.value, plan)
            else:
                self.sockcall_table.setdefault(op.syscall, plan)


class _KernelPlan:
    """All per-kernel precompiled dispatch state, built once and shared.

    The device/socket resolution memos are shared across executors of the
    same kernel; concurrent writes are benign (idempotent values under the
    GIL), and the kernel registries they cache are immutable.
    """

    __slots__ = ("space", "driver_surfaces", "socket_plans", "device_cache", "family_cache", "__weakref__")

    def __init__(self, kernel: KernelCodebase, space: CoverageSpace):
        self.space = space
        self.driver_surfaces: dict[str, _IoctlSurface] = {}
        self.socket_plans: dict[str, _SocketPlan] = {}
        self.device_cache: dict[str, _IoctlSurface | None] = {}
        self.family_cache: dict[tuple[int, int, int], _SocketPlan | None] = {}
        for driver in kernel.drivers.values():
            rewrite = driver.dispatch in (DispatchStyle.IOC_NR_REWRITE, DispatchStyle.TABLE_LOOKUP)
            surface = _IoctlSurface(
                space, kernel, driver.name, driver.ioctl_entry_blocks, driver.ops,
                rewrite, driver,
                open_indices=space.indices_of(
                    f"{driver.name}:open:{block}" for block in range(driver.open_blocks)
                ),
            )
            secondaries: dict[str, _IoctlSurface] = {}
            for secondary in driver.secondary_handlers:
                secondary_surface = _IoctlSurface(
                    space, kernel, secondary.name, secondary.ioctl_entry_blocks,
                    secondary.ops, False, driver,
                )
                # First secondary registered for a resource wins, like the
                # legacy linear _secondary_for scan.
                secondaries.setdefault(secondary.resource, secondary_surface)
            surface.secondaries = secondaries
            for secondary_surface in secondaries.values():
                secondary_surface.secondaries = secondaries
            self.driver_surfaces[driver.name] = surface
        for socket in kernel.sockets.values():
            self.socket_plans[socket.name] = _SocketPlan(space, kernel, socket)


_PLANS_BY_KERNEL: "weakref.WeakKeyDictionary[KernelCodebase, _KernelPlan]" = weakref.WeakKeyDictionary()

#: Cache-miss sentinel (``None`` is a valid cached resolution result).
_MISS = object()


def _plan_for_kernel(kernel: KernelCodebase) -> _KernelPlan:
    plan = _PLANS_BY_KERNEL.get(kernel)
    if plan is None:
        plan = _KernelPlan(kernel, CoverageSpace.for_kernel(kernel))
        _PLANS_BY_KERNEL[kernel] = plan
    return plan


#: Sockcall ops evaluate guards/bugs against an empty resource environment
#: (the legacy code passed a fresh ``set()`` per call; membership-only use
#: means one shared immutable empty set is equivalent).
_NO_RESOURCES: frozenset[str] = frozenset()


class KernelExecutor:
    """Interprets syscall programs against the synthetic kernel."""

    def __init__(self, kernel: KernelCodebase):
        self.kernel = kernel
        plan = _plan_for_kernel(kernel)
        self.space = plan.space
        self._plan = plan

    # ------------------------------------------------------------------ API
    def execute(self, program: Program) -> ExecutionResult:
        result = ExecutionResult(space=self.space)
        result.executed_calls = self.execute_into(program, result)
        return result

    def execute_into(self, program: Program, result: ExecutionResult) -> int:
        """Execute ``program``, accumulating into ``result``; returns calls run.

        The campaign hot loop passes a result whose coverage/extras sets span
        the whole campaign, so per-program set allocation and the
        subset-check-then-union double pass disappear (new-coverage detection
        is a before/after length comparison at the call site).  The dispatch
        is deliberately one flat loop over precompiled plans — this is the
        single hottest function of the table 3–6 experiments.
        """
        cov = result.coverage
        space = self.space
        cover_op = self._cover_op
        # fd index → (is_socket, surface/socket plan)
        bindings: dict[int, tuple[bool, object]] = {}
        produced_resources: set[str] = set()
        executed = 0

        for index, call in enumerate(program.calls):
            executed += 1
            syscall = call.syscall
            args = call.args
            if syscall == "ioctl":
                fd = args.get("fd")
                binding = bindings.get(fd.producer_index) if isinstance(fd, ResourceValue) else None
                if binding is None or binding[0]:
                    continue
                cmd = args.get("cmd")
                if not isinstance(cmd, int):
                    continue
                surface: _IoctlSurface = binding[1]
                cov.update(surface.entry_indices)
                if surface.rewrite:
                    # The dispatcher checks the _IOC_TYPE "magic" byte, then
                    # switches on _IOC_NR: the (magic, nr) key encodes both.
                    op_plan = surface.table.get(((cmd >> 8) & 0xFF, cmd & 0xFF))
                else:
                    op_plan = surface.table.get(cmd)
                if op_plan is None:
                    cov.add(surface.default_index)
                    continue
                cover_op(op_plan, args.get("arg"), produced_resources, result)
                produces = op_plan.produces
                if produces:
                    produced_resources.add(produces)
                    secondary = surface.secondaries.get(produces)
                    if secondary is not None:
                        bindings[index] = (False, secondary)
            elif syscall == "openat" or syscall == "open":
                path = args.get("file")
                if isinstance(path, str):
                    surface = self._device_surface(path)
                    if surface is not None:
                        cov.update(surface.open_indices)
                        bindings[index] = (False, surface)
            elif syscall == "socket":
                family = args.get("domain")
                sock_type = args.get("type")
                protocol = args.get("proto")
                if isinstance(family, int) and isinstance(sock_type, int) and isinstance(protocol, int):
                    plan = self._socket_plan(family, sock_type, protocol)
                    if plan is not None:
                        cov.update(plan.create_indices)
                        bindings[index] = (True, plan)
            else:
                fd = args.get("fd")
                binding = bindings.get(fd.producer_index) if isinstance(fd, ResourceValue) else None
                if binding is None or not binding[0]:
                    continue
                plan: _SocketPlan = binding[1]
                entry = plan.entry_index_by_syscall.get(syscall)
                if entry is not None:
                    cov.add(entry)
                else:
                    label = f"{plan.name}:{syscall}:entry"
                    entry = space.get(label)
                    if entry is not None:
                        plan.entry_index_by_syscall[syscall] = entry
                        cov.add(entry)
                    else:
                        # A syscall outside the interned space (a wrong spec
                        # can name anything): the overflow label set keeps the
                        # bitmap exactly equivalent to the legacy string set.
                        result.extras.add(label)
                if syscall == "setsockopt" or syscall == "getsockopt":
                    optname = args.get("optname")
                    if not isinstance(optname, int):
                        continue
                    op_plan = plan.sockopt_tables[syscall].get(optname)
                    payload = args.get("optval")
                else:
                    op_plan = plan.sockcall_table.get(syscall)
                    payload = args.get("buf") or args.get("addr")
                if op_plan is not None:
                    cover_op(op_plan, payload, _NO_RESOURCES, result)
        return executed

    # -------------------------------------------------------------- helpers
    def _device_surface(self, path: str) -> _IoctlSurface | None:
        """Memoised device-path → driver surface resolution.

        Device paths come from specifications, so a campaign sees a handful
        of distinct strings; memoising skips the registry prefix scan that
        numbered nodes (``/dev/loop#``) would otherwise pay per open.
        """
        plan = self._plan
        surface = plan.device_cache.get(path, _MISS)
        if surface is _MISS:
            driver = self.kernel.resolve_device(path)
            surface = None if driver is None else plan.driver_surfaces[driver.name]
            plan.device_cache[path] = surface
        return surface

    def _socket_plan(self, family: int, sock_type: int, protocol: int) -> _SocketPlan | None:
        """Memoised (family, type, proto) → socket plan resolution."""
        plan = self._plan
        key = (family, sock_type, protocol)
        socket_plan = plan.family_cache.get(key, _MISS)
        if socket_plan is _MISS:
            socket = self.kernel.resolve_socket(family, sock_type, protocol)
            socket_plan = None if socket is None else plan.socket_plans[socket.name]
            plan.family_cache[key] = socket_plan
        return socket_plan

    @staticmethod
    def _cover_op(plan: _OpPlan, payload, produced_resources, result: ExecutionResult) -> None:
        requires = plan.requires
        if requires is not None and requires not in produced_resources:
            result.coverage.add(plan.requires_missing_index)
            return
        cov = result.coverage
        cov.update(plan.base_indices)

        typed = isinstance(payload, StructValue)
        if typed:
            payload_size = payload.byte_size or 4096
        elif isinstance(payload, BytesValue):
            payload_size = payload.length
        else:
            payload_size = 0

        copyin_index = plan.copyin_index
        if copyin_index is not None and payload_size >= plan.copyin_min_size:
            cov.add(copyin_index)

        for check, bonus_indices in plan.guards:
            if check(payload, typed, produced_resources):
                cov.update(bonus_indices)

        fires = plan.bug_fires
        if fires is not None and fires(payload, typed, produced_resources):
            result.crashes.append(plan.crash_report)


__all__ = ["KernelExecutor", "ExecutionResult"]
