"""The simulated kernel executor.

Programs are interpreted against the synthetic kernel's ground truth: opening
the right device node yields a file descriptor bound to that driver, a
dispatchable command value reaches its per-command handler, semantically valid
arguments pass the handler's guards and cover its deeper basic blocks, and the
injected bug predicates fire only when the triggering field values are
reachable — i.e. when the specification that generated the program knew the
command value and the argument layout.

Coverage is reported as a set of basic-block identifiers (strings), so suites
can be compared by set union/difference exactly like the paper's unique-block
counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..kernel import (
    ArgKind,
    BugTrigger,
    DispatchStyle,
    DriverTruth,
    Guard,
    GuardKind,
    IoctlOp,
    KernelCodebase,
    SecondaryHandlerTruth,
    SockOp,
    SocketTruth,
    ioc_nr,
)
from .crash import CrashReport
from .program import BytesValue, Program, ResourceValue, StructValue


@dataclass
class ExecutionResult:
    """Coverage and crashes produced by one program execution."""

    coverage: set[str] = field(default_factory=set)
    crashes: list[CrashReport] = field(default_factory=list)
    executed_calls: int = 0


@dataclass
class _FdBinding:
    """What a program-level file descriptor refers to."""

    kind: str                                  # "driver" | "secondary" | "socket"
    driver: DriverTruth | None = None
    secondary: SecondaryHandlerTruth | None = None
    socket: SocketTruth | None = None


class KernelExecutor:
    """Interprets syscall programs against the synthetic kernel."""

    def __init__(self, kernel: KernelCodebase):
        self.kernel = kernel

    # ------------------------------------------------------------------ API
    def execute(self, program: Program) -> ExecutionResult:
        result = ExecutionResult()
        bindings: dict[int, _FdBinding] = {}
        produced_resources: set[str] = set()

        for index, call in enumerate(program):
            result.executed_calls += 1
            if call.syscall in ("openat", "open"):
                self._exec_open(call, index, bindings, result)
            elif call.syscall == "socket":
                self._exec_socket(call, index, bindings, result)
            elif call.syscall == "ioctl":
                self._exec_ioctl(call, index, bindings, produced_resources, result)
            else:
                self._exec_sockcall(call, bindings, result)
        return result

    # ------------------------------------------------------------- syscalls
    def _exec_open(self, call, index: int, bindings, result: ExecutionResult) -> None:
        path = call.arg("file")
        if not isinstance(path, str):
            return
        driver = self.kernel.resolve_device(path)
        if driver is None:
            return
        for block in range(driver.open_blocks):
            result.coverage.add(f"{driver.name}:open:{block}")
        bindings[index] = _FdBinding(kind="driver", driver=driver)

    def _exec_socket(self, call, index: int, bindings, result: ExecutionResult) -> None:
        family = call.arg("domain")
        sock_type = call.arg("type")
        protocol = call.arg("proto")
        if not all(isinstance(value, int) for value in (family, sock_type, protocol)):
            return
        socket = self.kernel.resolve_socket(family, sock_type, protocol)
        if socket is None:
            return
        for block in range(socket.create_blocks):
            result.coverage.add(f"{socket.name}:create:{block}")
        bindings[index] = _FdBinding(kind="socket", socket=socket)

    def _exec_ioctl(self, call, index: int, bindings, produced_resources: set[str], result: ExecutionResult) -> None:
        binding = self._resolve_fd(call.arg("fd"), bindings)
        if binding is None or binding.kind == "socket":
            return
        cmd = call.arg("cmd")
        if not isinstance(cmd, int):
            return
        if binding.kind == "driver":
            driver = binding.driver
            assert driver is not None
            owner = driver.name
            ops = driver.ops
            rewrite = driver.dispatch in (DispatchStyle.IOC_NR_REWRITE, DispatchStyle.TABLE_LOOKUP)
            entry_blocks = driver.ioctl_entry_blocks
        else:
            secondary = binding.secondary
            assert secondary is not None
            owner = secondary.name
            ops = secondary.ops
            rewrite = False
            entry_blocks = secondary.ioctl_entry_blocks
        for block in range(entry_blocks):
            result.coverage.add(f"{owner}:ioctl-entry:{block}")

        op = self._match_ioctl(ops, cmd, rewrite)
        if op is None:
            result.coverage.add(f"{owner}:ioctl-entry:default")
            return
        self._cover_op(owner, op.macro, op.base_blocks, op.guards, op.bug, call.arg("arg"),
                       op.arg_struct, produced_resources, result, requires=op.requires)
        if op.produces:
            produced_resources.add(op.produces)
            secondary = self._secondary_for(binding, op.produces)
            if secondary is not None:
                bindings[index] = _FdBinding(kind="secondary", driver=binding.driver, secondary=secondary)

    def _exec_sockcall(self, call, bindings, result: ExecutionResult) -> None:
        binding = self._resolve_fd(call.arg("fd"), bindings)
        if binding is None or binding.kind != "socket":
            return
        socket = binding.socket
        assert socket is not None
        result.coverage.add(f"{socket.name}:{call.syscall}:entry")

        if call.syscall in ("setsockopt", "getsockopt"):
            optname = call.arg("optname")
            if not isinstance(optname, int):
                return
            op = next(
                (candidate for candidate in socket.ops
                 if candidate.syscall == call.syscall and candidate.value == optname),
                None,
            )
            payload = call.arg("optval")
        else:
            op = next((candidate for candidate in socket.ops if candidate.syscall == call.syscall), None)
            payload = call.arg("buf") or call.arg("addr")
        if op is None:
            return
        self._cover_op(socket.name, op.interface_name, op.base_blocks, op.guards, op.bug,
                       payload, op.arg_struct, set(), result)

    # -------------------------------------------------------------- helpers
    @staticmethod
    def _resolve_fd(value, bindings) -> _FdBinding | None:
        if isinstance(value, ResourceValue):
            return bindings.get(value.producer_index)
        return None

    @staticmethod
    def _match_ioctl(ops: tuple[IoctlOp, ...], cmd: int, rewrite: bool) -> IoctlOp | None:
        for op in ops:
            if rewrite:
                # The dispatcher first checks the _IOC_TYPE "magic" byte, then
                # switches on _IOC_NR: a raw command number fails the magic check.
                if ((cmd >> 8) & 0xFF) != ((op.value >> 8) & 0xFF):
                    continue
                if op.nr_value is not None and ioc_nr(cmd) == op.nr_value:
                    return op
            elif cmd == op.value:
                return op
        return None

    def _secondary_for(self, binding: _FdBinding, resource: str) -> SecondaryHandlerTruth | None:
        driver = binding.driver
        if driver is None:
            return None
        for secondary in driver.secondary_handlers:
            if secondary.resource == resource:
                return secondary
        return None

    def _cover_op(
        self,
        owner: str,
        op_label: str,
        base_blocks: int,
        guards: tuple[Guard, ...],
        bug: BugTrigger | None,
        payload,
        arg_struct: str | None,
        produced_resources: set[str],
        result: ExecutionResult,
        *,
        requires: str | None = None,
    ) -> None:
        if requires and requires not in produced_resources:
            result.coverage.add(f"{owner}:{op_label}:requires-missing")
            return
        for block in range(base_blocks):
            result.coverage.add(f"{owner}:{op_label}:base:{block}")

        typed = isinstance(payload, StructValue)
        payload_size = 0
        if isinstance(payload, StructValue):
            payload_size = payload.byte_size or 4096
        elif isinstance(payload, BytesValue):
            payload_size = payload.length

        truth_size = self._truth_struct_size(owner, arg_struct)
        if arg_struct is not None and payload_size >= truth_size:
            result.coverage.add(f"{owner}:{op_label}:copy-in")

        for guard_index, guard in enumerate(guards):
            if self._guard_passes(guard, payload, typed, produced_resources):
                for bonus in range(guard.bonus_blocks):
                    result.coverage.add(f"{owner}:{op_label}:guard{guard_index}:{bonus}")

        if bug is not None and self._bug_fires(bug, payload, typed, produced_resources):
            catalog = self.kernel.bug_catalog
            if bug.bug_id in catalog:
                known = catalog.get(bug.bug_id)
                result.crashes.append(
                    CrashReport(bug_id=known.bug_id, title=known.title,
                                crash_type=known.crash_type, subsystem=known.subsystem)
                )
            else:
                result.crashes.append(
                    CrashReport(bug_id=bug.bug_id, title=bug.bug_id, crash_type="unknown", subsystem=owner)
                )

    def _truth_struct_size(self, owner: str, arg_struct: str | None) -> int:
        if arg_struct is None:
            return 0
        truth = self.kernel.drivers.get(owner) or self.kernel.sockets.get(owner)
        if truth is None:
            # Secondary handlers: search the owning driver's structs.
            for driver in self.kernel.drivers.values():
                for secondary in driver.secondary_handlers:
                    if secondary.name == owner:
                        truth = driver
                        break
        if truth is None:
            return 8
        struct = truth.struct_by_name(arg_struct)
        return struct.byte_size() if struct is not None else 8

    @staticmethod
    def _guard_passes(guard: Guard, payload, typed: bool, produced_resources: set[str]) -> bool:
        if guard.kind is GuardKind.NEEDS_RESOURCE:
            return guard.resource in produced_resources
        if guard.kind is GuardKind.MIN_SIZE:
            if isinstance(payload, StructValue):
                return payload.byte_size >= guard.value
            if isinstance(payload, BytesValue):
                return payload.length >= guard.value
            return False
        if not typed or not isinstance(payload, StructValue):
            return False
        value = payload.get(guard.field)
        if guard.kind is GuardKind.FIELD_RANGE:
            return guard.low <= value <= guard.high
        if guard.kind is GuardKind.FIELD_EQUALS:
            return value == guard.value
        if guard.kind is GuardKind.FLAGS_SUBSET:
            return (value & ~guard.value) == 0
        if guard.kind is GuardKind.LEN_MATCHES:
            return payload.get(f"__lenok_{guard.field}", 0) == 1
        return False

    @staticmethod
    def _bug_fires(bug: BugTrigger, payload, typed: bool, produced_resources: set[str]) -> bool:
        if bug.requires_resource and bug.requires_resource not in produced_resources:
            return False
        if bug.requires_typed and not typed:
            return False
        if not isinstance(payload, StructValue):
            return False
        value = payload.get(bug.field)
        if bug.equals is not None:
            return value == bug.equals
        if bug.min_value is not None and value < bug.min_value:
            return False
        if bug.max_value is not None and value > bug.max_value:
            return False
        return True


__all__ = ["KernelExecutor", "ExecutionResult"]
