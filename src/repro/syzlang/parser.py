"""Parser for syzlang specification text.

The parser accepts the subset of syzlang emitted by this library's
serializer, by the KernelGPT pipeline, and by the hand-written example specs
(Figure 3 of the paper).  It is line-oriented, mirroring the real syzlang
grammar:

* ``resource NAME[kind]`` lines declare resources
* ``NAME = CONST1, CONST2`` lines declare flag sets
* ``NAME { ... }`` blocks declare structs, ``NAME [ ... ]`` blocks unions
* ``name$variant(param type, ...) ret`` lines declare syscalls
* ``#`` starts a comment; comments directly above a syscall become its
  provenance comment

The corresponding inverse operation lives in :mod:`repro.syzlang.serializer`;
round-tripping a suite through ``serialize`` then ``parse_suite`` yields an
equivalent suite (property-tested in the test suite).
"""

from __future__ import annotations

import re

from ..errors import SyzlangParseError
from .ast import FlagsDef, Param, ResourceDef, SpecSuite, StructDef, Syscall, UnionDef
from .types import (
    ArrayType,
    BufferType,
    ConstType,
    Field,
    FilenameType,
    FlagsType,
    IntType,
    LenType,
    NamedTypeRef,
    PtrType,
    ResourceRef,
    StringType,
    TypeExpr,
    VoidType,
    type_from_simple_name,
    INT_WIDTHS,
)

_RESOURCE_RE = re.compile(r"^resource\s+(?P<name>\w+)\s*\[\s*(?P<kind>\w+)\s*\](?:\s*:\s*(?P<values>.+))?$")
_FLAGS_RE = re.compile(r"^(?P<name>\w+)\s*=\s*(?P<values>[\w\s,]+)$")
_STRUCT_OPEN_RE = re.compile(r"^(?P<name>\w+)\s*(?P<brace>[{\[])\s*$")
_STRUCT_CLOSE_RE = re.compile(r"^[}\]]\s*(\[packed\])?\s*$")
_SYSCALL_RE = re.compile(
    r"^(?P<name>\w+)(?:\$(?P<variant>\w+))?\s*\((?P<params>.*)\)\s*(?P<ret>\w+)?\s*$"
)
_FIELD_ATTR_RE = re.compile(r"^(?P<body>.*?)\s*\((?P<attrs>[\w\s,]+)\)\s*$")


def parse_type(text: str) -> TypeExpr:
    """Parse a single syzlang type expression such as ``ptr[inout, dm_ioctl]``."""
    text = text.strip()
    if not text:
        raise SyzlangParseError("empty type expression")
    if "[" not in text:
        return _parse_bare_type(text)
    head, _, rest = text.partition("[")
    head = head.strip()
    if not rest.endswith("]"):
        raise SyzlangParseError("unbalanced brackets in type expression", snippet=text)
    inner = rest[:-1]
    args = _split_args(inner)
    return _parse_bracketed_type(head, args, text)


def _parse_bare_type(text: str) -> TypeExpr:
    if re.fullmatch(r"\w+", text) is None:
        raise SyzlangParseError("malformed type expression", snippet=text)
    return type_from_simple_name(text)


def _parse_bracketed_type(head: str, args: list[str], original: str) -> TypeExpr:
    if head in INT_WIDTHS:
        return _parse_ranged_int(head, args, original)
    if head == "const":
        return _parse_const(args, original)
    if head == "flags":
        return _parse_flags(args, original)
    if head == "string":
        values = tuple(_strip_quotes(arg) for arg in args)
        return StringType(values)
    if head == "ptr":
        if len(args) != 2:
            raise SyzlangParseError("ptr[] takes a direction and a type", snippet=original)
        return PtrType(args[0].strip(), parse_type(args[1]))
    if head == "array":
        return _parse_array(args, original)
    if head == "len":
        if len(args) not in (1, 2):
            raise SyzlangParseError("len[] takes a target and optional width", snippet=original)
        width = args[1].strip() if len(args) == 2 else "int32"
        return LenType(args[0].strip(), width)
    if head == "buffer":
        if len(args) != 1:
            raise SyzlangParseError("buffer[] takes a direction", snippet=original)
        return BufferType(args[0].strip())
    raise SyzlangParseError(f"unknown type constructor {head!r}", snippet=original)


def _parse_ranged_int(width: str, args: list[str], original: str) -> IntType:
    if len(args) != 1 or ":" not in args[0]:
        raise SyzlangParseError("integer range must look like int32[lo:hi]", snippet=original)
    low_text, _, high_text = args[0].partition(":")
    try:
        return IntType(width, int(low_text, 0), int(high_text, 0))
    except ValueError as exc:
        raise SyzlangParseError(f"bad integer range: {exc}", snippet=original) from None


def _parse_const(args: list[str], original: str) -> ConstType:
    if len(args) not in (1, 2):
        raise SyzlangParseError("const[] takes a value and optional width", snippet=original)
    raw = args[0].strip()
    width = args[1].strip() if len(args) == 2 else "int32"
    value: int | str
    try:
        value = int(raw, 0)
    except ValueError:
        value = raw
    return ConstType(value, width)


def _parse_flags(args: list[str], original: str) -> FlagsType:
    if len(args) not in (1, 2):
        raise SyzlangParseError("flags[] takes a name and optional width", snippet=original)
    width = args[1].strip() if len(args) == 2 else "int32"
    return FlagsType(args[0].strip(), width)


def _parse_array(args: list[str], original: str) -> ArrayType:
    if len(args) not in (1, 2):
        raise SyzlangParseError("array[] takes a type and optional length", snippet=original)
    elem = parse_type(args[0])
    length = None
    if len(args) == 2:
        try:
            length = int(args[1].strip(), 0)
        except ValueError:
            raise SyzlangParseError("array length must be an integer", snippet=original) from None
    return ArrayType(elem, length)


def _split_args(text: str) -> list[str]:
    """Split comma-separated arguments, respecting nested brackets and quotes."""
    args: list[str] = []
    depth = 0
    in_string = False
    current: list[str] = []
    for char in text:
        if char == '"':
            in_string = not in_string
            current.append(char)
        elif in_string:
            current.append(char)
        elif char == "[":
            depth += 1
            current.append(char)
        elif char == "]":
            depth -= 1
            current.append(char)
        elif char == "," and depth == 0:
            args.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        args.append(tail)
    return args


def _strip_quotes(text: str) -> str:
    text = text.strip()
    if len(text) >= 2 and text[0] == '"' and text[-1] == '"':
        return text[1:-1]
    return text


def parse_field(text: str, *, line: int | None = None) -> Field:
    """Parse one struct/union member line (``count len[devices, int32] (out)``)."""
    text = text.strip()
    attrs: tuple[str, ...] = ()
    attr_match = _FIELD_ATTR_RE.match(text)
    if attr_match:
        text = attr_match.group("body").strip()
        attrs = tuple(part.strip() for part in attr_match.group("attrs").split(",") if part.strip())
    parts = text.split(None, 1)
    if len(parts) != 2:
        raise SyzlangParseError("struct field needs a name and a type", line=line, snippet=text)
    name, type_text = parts
    return Field(name=name, type=parse_type(type_text), attrs=attrs)


def parse_syscall(text: str, *, line: int | None = None, comment: str = "") -> Syscall:
    """Parse a single syscall description line."""
    match = _SYSCALL_RE.match(text.strip())
    if match is None:
        raise SyzlangParseError("malformed syscall description", line=line, snippet=text)
    params_text = match.group("params").strip()
    params: list[Param] = []
    if params_text:
        for chunk in _split_args(params_text):
            parts = chunk.split(None, 1)
            if len(parts) != 2:
                raise SyzlangParseError(
                    "syscall parameter needs a name and a type", line=line, snippet=chunk
                )
            params.append(Param(name=parts[0], type=parse_type(parts[1])))
    ret_name = match.group("ret")
    returns = ResourceRef(ret_name) if ret_name else None
    return Syscall(
        name=match.group("name"),
        variant=match.group("variant") or "",
        params=tuple(params),
        returns=returns,
        comment=comment,
    )


def parse_suite(text: str, name: str = "parsed") -> SpecSuite:
    """Parse a full syzlang document into a :class:`SpecSuite`."""
    suite = SpecSuite(name)
    lines = text.splitlines()
    index = 0
    pending_comment = ""
    while index < len(lines):
        raw = lines[index]
        line_no = index + 1
        stripped = raw.strip()
        index += 1
        if not stripped:
            pending_comment = ""
            continue
        if stripped.startswith("#"):
            pending_comment = stripped.lstrip("#").strip()
            continue
        resource_match = _RESOURCE_RE.match(stripped)
        if resource_match:
            values = ()
            if resource_match.group("values"):
                values = tuple(
                    int(v.strip(), 0) for v in resource_match.group("values").split(",") if v.strip()
                )
            suite.add_resource(
                ResourceDef(resource_match.group("name"), resource_match.group("kind"), values),
                replace_existing=True,
            )
            pending_comment = ""
            continue
        struct_match = _STRUCT_OPEN_RE.match(stripped)
        if struct_match:
            index = _parse_block(suite, lines, index, struct_match, line_no)
            pending_comment = ""
            continue
        if "(" in stripped and _SYSCALL_RE.match(stripped):
            suite.add_syscall(
                parse_syscall(stripped, line=line_no, comment=pending_comment),
                replace_existing=True,
            )
            pending_comment = ""
            continue
        flags_match = _FLAGS_RE.match(stripped)
        if flags_match:
            values = tuple(v.strip() for v in flags_match.group("values").split(",") if v.strip())
            suite.add_flags(FlagsDef(flags_match.group("name"), values), replace_existing=True)
            pending_comment = ""
            continue
        raise SyzlangParseError("unrecognised syzlang construct", line=line_no, snippet=stripped)
    _resolve_resource_refs(suite)
    return suite


def _resolve_resource_refs(suite: SpecSuite, resource_names: "set[str] | None" = None) -> None:
    """Disambiguate bare identifiers once the resource table is known.

    At ``parse_type`` time a bare name like ``fd_dm`` is lexically
    indistinguishable from a struct/union reference, so it parses as a
    :class:`NamedTypeRef`.  After the whole document is read, any such
    reference naming a declared resource is rewritten to a
    :class:`ResourceRef` — resources may be declared after their first use,
    so this must be a post-pass.  This is what makes
    ``parse_suite(serialize_suite(s))`` reproduce ``s`` exactly.

    ``resource_names`` widens the table for *fragments*: a repaired syscall
    parsed on its own has no resource declarations, so the caller supplies
    the destination suite's table (see :func:`resolve_resource_refs`).
    """
    if resource_names is None:
        resource_names = set(suite.resources)
    if not resource_names:
        return

    def resolve(expr: TypeExpr) -> TypeExpr:
        if isinstance(expr, NamedTypeRef) and expr.name in resource_names:
            return ResourceRef(expr.name)
        if isinstance(expr, PtrType):
            return PtrType(expr.direction, resolve(expr.elem))
        if isinstance(expr, ArrayType):
            return ArrayType(resolve(expr.elem), expr.length)
        return expr

    def resolve_fields(fields: tuple[Field, ...]) -> tuple[Field, ...]:
        return tuple(Field(f.name, resolve(f.type), f.attrs) for f in fields)

    for full_name, syscall in list(suite.syscalls.items()):
        params = tuple(Param(p.name, resolve(p.type)) for p in syscall.params)
        if params != syscall.params:
            suite.add_syscall(
                Syscall(syscall.name, syscall.variant, params, syscall.returns, syscall.comment),
                replace_existing=True,
            )
    for name, struct in list(suite.structs.items()):
        fields = resolve_fields(struct.fields)
        if fields != struct.fields:
            suite.add_struct(StructDef(name, fields, struct.packed), replace_existing=True)
    for name, union in list(suite.unions.items()):
        fields = resolve_fields(union.fields)
        if fields != union.fields:
            suite.add_union(UnionDef(name, fields), replace_existing=True)


def _parse_block(
    suite: SpecSuite,
    lines: list[str],
    index: int,
    struct_match: re.Match,
    open_line: int,
) -> int:
    """Parse the body of a struct/union block; return the next line index."""
    name = struct_match.group("name")
    is_union = struct_match.group("brace") == "["
    fields: list[Field] = []
    packed = False
    while index < len(lines):
        stripped = lines[index].strip()
        line_no = index + 1
        index += 1
        if not stripped or stripped.startswith("#"):
            continue
        close_match = _STRUCT_CLOSE_RE.match(stripped)
        if close_match:
            packed = bool(close_match.group(1))
            if is_union:
                suite.add_union(UnionDef(name, tuple(fields)), replace_existing=True)
            else:
                suite.add_struct(StructDef(name, tuple(fields), packed=packed), replace_existing=True)
            return index
        fields.append(parse_field(stripped, line=line_no))
    raise SyzlangParseError(f"unterminated definition block for {name!r}", line=open_line)


def resolve_resource_refs(suite: SpecSuite, resource_names: "set[str]") -> None:
    """Rewrite bare references in ``suite`` that name a known resource.

    Public entry point for suite *fragments* (e.g. a repaired syscall
    description) that are parsed without the destination suite's resource
    declarations: pass the destination's resource table so the fragment's
    AST matches what a whole-document parse would have produced.
    """
    _resolve_resource_refs(suite, resource_names)


__all__ = ["parse_type", "parse_field", "parse_syscall", "parse_suite", "resolve_resource_refs"]
