"""Top-level syzlang constructs: definitions, syscalls, and spec suites.

A *specification suite* (:class:`SpecSuite`) is the unit everything else in
the library works with: KernelGPT and the baselines produce suites, the
validator checks suites, and the fuzzer generates programs from suites.  A
suite aggregates:

* resource definitions          ``resource fd_dm[fd]``
* flag-set definitions          ``dm_flags = DM_READONLY, DM_SUSPEND``
* struct/union definitions      ``dm_ioctl { ... }``
* syscall descriptions          ``ioctl$DM_DEV_CREATE(fd fd_dm, cmd const[...], arg ptr[...])``

Syscall descriptions use Syzkaller's ``name$variant`` convention, so that a
single generic syscall (``ioctl``) can have many per-command descriptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Mapping

from ..errors import SyzlangError
from .types import (
    Field,
    NamedTypeRef,
    PtrType,
    ResourceRef,
    TypeExpr,
    TypeSizeResolver,
    walk_type,
)

#: Base resource kinds that do not require a definition in the suite.  Plain
#: integer widths are allowed because resources are frequently derived from
#: kernel-assigned integer identifiers (e.g. ``resource msm_submitqueue_id[int32]``).
BUILTIN_RESOURCE_KINDS = (
    "fd",
    "sock",
    "pid",
    "uid",
    "gid",
    "timerid",
    "int8",
    "int16",
    "int32",
    "int64",
    "intptr",
)

#: Generic syscalls the reproduction's kernel substrate understands.
KNOWN_SYSCALL_NAMES = (
    "openat",
    "open",
    "close",
    "read",
    "write",
    "mmap",
    "poll",
    "ioctl",
    "socket",
    "bind",
    "connect",
    "accept",
    "listen",
    "sendto",
    "recvfrom",
    "sendmsg",
    "recvmsg",
    "setsockopt",
    "getsockopt",
)


@dataclass(frozen=True)
class ResourceDef:
    """Declaration of a resource type (``resource fd_dm[fd]``).

    Resources model inter-syscall dependencies: a syscall that *returns* a
    resource (e.g. ``openat$dm``) must run before syscalls that *consume* it.
    """

    name: str
    kind: str = "fd"
    values: tuple[int, ...] = ()

    def render(self) -> str:
        suffix = f": {', '.join(str(v) for v in self.values)}" if self.values else ""
        return f"resource {self.name}[{self.kind}]{suffix}"


@dataclass(frozen=True)
class FlagsDef:
    """A named set of flag constants (``dm_flags = DM_READONLY, DM_SUSPEND``)."""

    name: str
    values: tuple[str, ...]

    def render(self) -> str:
        return f"{self.name} = {', '.join(self.values)}"


@dataclass(frozen=True)
class StructDef:
    """A struct layout definition with named, typed fields."""

    name: str
    fields: tuple[Field, ...]
    packed: bool = False

    def render(self) -> str:
        lines = [f"{self.name} {{"]
        lines.extend(f"\t{member.render()}" for member in self.fields)
        lines.append("} [packed]" if self.packed else "}")
        return "\n".join(lines)

    def field_names(self) -> tuple[str, ...]:
        return tuple(member.name for member in self.fields)

    def byte_size(self, resolver: TypeSizeResolver | None = None) -> int:
        return sum(member.type.byte_size(resolver) for member in self.fields)


@dataclass(frozen=True)
class UnionDef:
    """A union definition; its size is the size of its largest variant."""

    name: str
    fields: tuple[Field, ...]

    def render(self) -> str:
        lines = [f"{self.name} ["]
        lines.extend(f"\t{member.render()}" for member in self.fields)
        lines.append("]")
        return "\n".join(lines)

    def field_names(self) -> tuple[str, ...]:
        return tuple(member.name for member in self.fields)

    def byte_size(self, resolver: TypeSizeResolver | None = None) -> int:
        if not self.fields:
            return 0
        return max(member.type.byte_size(resolver) for member in self.fields)


@dataclass(frozen=True)
class Param:
    """A named syscall parameter."""

    name: str
    type: TypeExpr

    def render(self) -> str:
        return f"{self.name} {self.type.render()}"


@dataclass(frozen=True)
class Syscall:
    """A single syscall description (``ioctl$DM_DEV_CREATE(...) fd_dm``).

    Attributes
    ----------
    name:
        The generic syscall name, e.g. ``ioctl`` or ``openat``.
    variant:
        The Syzkaller variant suffix after ``$``; empty for unsuffixed calls.
    params:
        Ordered parameters.
    returns:
        Resource produced by the call, if any (drives dependency ordering).
    comment:
        Free-form provenance note (generator name, source handler).
    """

    name: str
    variant: str = ""
    params: tuple[Param, ...] = ()
    returns: ResourceRef | None = None
    comment: str = ""

    @property
    def full_name(self) -> str:
        """Return the canonical ``name$variant`` form used throughout Syzkaller."""
        return f"{self.name}${self.variant}" if self.variant else self.name

    def render(self) -> str:
        params = ", ".join(param.render() for param in self.params)
        ret = f" {self.returns.render()}" if self.returns is not None else ""
        text = f"{self.full_name}({params}){ret}"
        if self.comment:
            text = f"# {self.comment}\n{text}"
        return text

    def referenced_names(self) -> Iterator[str]:
        for param in self.params:
            yield from param.type.referenced_names()
        if self.returns is not None:
            yield self.returns.name

    def referenced_constants(self) -> Iterator[str]:
        for param in self.params:
            yield from param.type.referenced_constants()

    def consumed_resources(self) -> tuple[str, ...]:
        """Return resource names this syscall takes as inputs."""
        names: list[str] = []
        for param in self.params:
            for expr in walk_type(param.type):
                if isinstance(expr, ResourceRef):
                    names.append(expr.name)
        return tuple(names)

    def produced_resource(self) -> str | None:
        """Return the resource name this syscall creates, if any."""
        return self.returns.name if self.returns is not None else None


class SpecSuite:
    """A mutable collection of syzlang definitions and syscall descriptions.

    The suite enforces uniqueness of definition names and syscall full names;
    it deliberately does *not* validate references eagerly, because generation
    pipelines assemble suites incrementally and the validator reports dangling
    references with dedicated diagnostics afterwards.
    """

    def __init__(self, name: str = "suite"):
        self.name = name
        self._resources: dict[str, ResourceDef] = {}
        self._flags: dict[str, FlagsDef] = {}
        self._structs: dict[str, StructDef] = {}
        self._unions: dict[str, UnionDef] = {}
        self._syscalls: dict[str, Syscall] = {}

    # ------------------------------------------------------------------ add
    def add_resource(self, resource: ResourceDef, *, replace_existing: bool = False) -> None:
        self._add(self._resources, resource.name, resource, "resource", replace_existing)

    def add_flags(self, flags: FlagsDef, *, replace_existing: bool = False) -> None:
        self._add(self._flags, flags.name, flags, "flags", replace_existing)

    def add_struct(self, struct: StructDef, *, replace_existing: bool = False) -> None:
        if struct.name in self._unions and not replace_existing:
            raise SyzlangError(f"definition {struct.name!r} already exists as a union")
        self._add(self._structs, struct.name, struct, "struct", replace_existing)

    def add_union(self, union: UnionDef, *, replace_existing: bool = False) -> None:
        if union.name in self._structs and not replace_existing:
            raise SyzlangError(f"definition {union.name!r} already exists as a struct")
        self._add(self._unions, union.name, union, "union", replace_existing)

    def add_syscall(self, syscall: Syscall, *, replace_existing: bool = False) -> None:
        self._add(self._syscalls, syscall.full_name, syscall, "syscall", replace_existing)

    @staticmethod
    def _add(table: dict, key: str, value, kind: str, replace_existing: bool) -> None:
        if key in table and not replace_existing:
            raise SyzlangError(f"duplicate {kind} definition: {key!r}")
        table[key] = value

    # --------------------------------------------------------------- lookup
    @property
    def resources(self) -> Mapping[str, ResourceDef]:
        return dict(self._resources)

    @property
    def flags(self) -> Mapping[str, FlagsDef]:
        return dict(self._flags)

    @property
    def structs(self) -> Mapping[str, StructDef]:
        return dict(self._structs)

    @property
    def unions(self) -> Mapping[str, UnionDef]:
        return dict(self._unions)

    @property
    def syscalls(self) -> Mapping[str, Syscall]:
        return dict(self._syscalls)

    def syscall_names(self) -> tuple[str, ...]:
        return tuple(self._syscalls)

    def remove_syscall(self, full_name: str) -> bool:
        """Remove a syscall description; returns True if it existed."""
        return self._syscalls.pop(full_name, None) is not None

    def remove_definition(self, name: str) -> bool:
        """Remove a struct/union/resource/flags definition by name."""
        removed = False
        for table in (self._structs, self._unions, self._resources, self._flags):
            if name in table:
                del table[name]
                removed = True
        return removed

    def get_syscall(self, full_name: str) -> Syscall:
        try:
            return self._syscalls[full_name]
        except KeyError:
            raise SyzlangError(f"unknown syscall {full_name!r} in suite {self.name!r}") from None

    def get_type_def(self, name: str) -> StructDef | UnionDef | None:
        """Return the struct or union definition named ``name``, if present."""
        return self._structs.get(name) or self._unions.get(name)

    def has_definition(self, name: str) -> bool:
        """Return True if ``name`` is any kind of definition in this suite."""
        return (
            name in self._resources
            or name in self._flags
            or name in self._structs
            or name in self._unions
        )

    def __len__(self) -> int:
        return len(self._syscalls)

    def __contains__(self, full_name: str) -> bool:
        return full_name in self._syscalls

    def __iter__(self) -> Iterator[Syscall]:
        return iter(self._syscalls.values())

    # ----------------------------------------------------------- operations
    def copy(self, name: str | None = None) -> "SpecSuite":
        """Return a shallow copy of the suite (definitions are immutable)."""
        duplicate = SpecSuite(name or self.name)
        duplicate._resources = dict(self._resources)
        duplicate._flags = dict(self._flags)
        duplicate._structs = dict(self._structs)
        duplicate._unions = dict(self._unions)
        duplicate._syscalls = dict(self._syscalls)
        return duplicate

    def merge(self, other: "SpecSuite", *, prefer: str = "self") -> "SpecSuite":
        """Return a new suite combining ``self`` and ``other``.

        ``prefer`` selects which side wins on name clashes; the paper's
        evaluation always merges generated specs *into* the existing Syzkaller
        corpus, keeping the hand-written version on conflict (``prefer="self"``).
        """
        if prefer not in ("self", "other"):
            raise ValueError("prefer must be 'self' or 'other'")
        merged = self.copy(f"{self.name}+{other.name}")
        replace_existing = prefer == "other"
        for resource in other._resources.values():
            if replace_existing or resource.name not in merged._resources:
                merged._resources[resource.name] = resource
        for flags in other._flags.values():
            if replace_existing or flags.name not in merged._flags:
                merged._flags[flags.name] = flags
        for struct in other._structs.values():
            if replace_existing or struct.name not in merged._structs:
                merged._structs[struct.name] = struct
        for union in other._unions.values():
            if replace_existing or union.name not in merged._unions:
                merged._unions[union.name] = union
        for syscall in other._syscalls.values():
            if replace_existing or syscall.full_name not in merged._syscalls:
                merged._syscalls[syscall.full_name] = syscall
        return merged

    def subset_for_syscalls(self, full_names: Iterable[str]) -> "SpecSuite":
        """Return a suite containing only ``full_names`` and their definitions.

        Used when fuzzing a single driver: only the syscalls described for
        that driver are enabled, plus every definition they transitively need.
        """
        wanted = [self.get_syscall(name) for name in full_names]
        subset = SpecSuite(f"{self.name}-subset")
        for syscall in wanted:
            subset.add_syscall(syscall, replace_existing=True)
        needed: set[str] = set()
        frontier: list[str] = []
        for syscall in wanted:
            frontier.extend(syscall.referenced_names())
        while frontier:
            name = frontier.pop()
            if name in needed:
                continue
            needed.add(name)
            type_def = self.get_type_def(name)
            if type_def is not None:
                for member in type_def.fields:
                    frontier.extend(member.referenced_names())
        for name in needed:
            if name in self._resources:
                subset._resources[name] = self._resources[name]
            if name in self._flags:
                subset._flags[name] = self._flags[name]
            if name in self._structs:
                subset._structs[name] = self._structs[name]
            if name in self._unions:
                subset._unions[name] = self._unions[name]
        return subset

    def producers_of(self, resource_name: str) -> tuple[Syscall, ...]:
        """Return syscalls whose return value is the given resource."""
        return tuple(
            syscall for syscall in self._syscalls.values() if syscall.produced_resource() == resource_name
        )

    def produced_resources(self) -> set[str]:
        """Return every resource some syscall in the suite can create.

        A resource counts as produced when it is a syscall return value *or*
        when it appears inside an output-capable (``out``/``inout``) pointer
        argument — e.g. the ``id`` field of ``drm_msm_submitqueue`` written by
        ``ioctl$MSM_SUBMITQUEUE_NEW`` in the paper's Figure 3.
        """
        produced: set[str] = set()
        for syscall in self._syscalls.values():
            if syscall.returns is not None:
                produced.add(syscall.returns.name)
            for param in syscall.params:
                for expr in walk_type(param.type):
                    if isinstance(expr, PtrType) and expr.direction in ("out", "inout"):
                        produced.update(self._resources_inside(expr.elem, set()))
        return produced

    def _resources_inside(self, expr: TypeExpr, visited: set[str]) -> set[str]:
        """Collect resource names reachable from ``expr`` through type definitions."""
        found: set[str] = set()
        for node in walk_type(expr):
            if isinstance(node, ResourceRef):
                found.add(node.name)
            elif isinstance(node, NamedTypeRef):
                if node.name in self._resources:
                    found.add(node.name)
                    continue
                if node.name in visited:
                    continue
                visited.add(node.name)
                type_def = self.get_type_def(node.name)
                if type_def is not None:
                    for member in type_def.fields:
                        found.update(self._resources_inside(member.type, visited))
        return found

    def size_resolver(self) -> TypeSizeResolver:
        """Return a resolver for struct/union byte sizes defined in this suite."""
        return _SuiteSizeResolver(self)

    def stats(self) -> dict[str, int]:
        """Return simple counts used throughout the evaluation tables."""
        return {
            "syscalls": len(self._syscalls),
            "resources": len(self._resources),
            "structs": len(self._structs),
            "unions": len(self._unions),
            "flags": len(self._flags),
            "types": len(self._structs) + len(self._unions),
        }


class _SuiteSizeResolver(TypeSizeResolver):
    """Resolves named type sizes against a suite, guarding against recursion."""

    def __init__(self, suite: SpecSuite):
        self._suite = suite
        self._active: set[str] = set()

    def size_of(self, name: str) -> int:
        if name in self._active:
            return 8
        type_def = self._suite.get_type_def(name)
        if type_def is None:
            return 8
        self._active.add(name)
        try:
            return type_def.byte_size(self)
        finally:
            self._active.discard(name)


__all__ = [
    "BUILTIN_RESOURCE_KINDS",
    "KNOWN_SYSCALL_NAMES",
    "ResourceDef",
    "FlagsDef",
    "StructDef",
    "UnionDef",
    "Param",
    "Syscall",
    "SpecSuite",
]
