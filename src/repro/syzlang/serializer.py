"""Serialization of spec suites back to syzlang text.

The serializer produces stable, human-readable output in the order Syzkaller
conventionally uses: resources, then flag sets, then syscalls (grouped by the
resource they operate on), then type definitions.  Readability of generated
specifications is an explicit goal of the paper (§2.3 L-2), so the serializer
keeps names, groups related syscalls together, and emits provenance comments.
"""

from __future__ import annotations

from .ast import SpecSuite, Syscall


def serialize_suite(suite: SpecSuite, *, header: bool = True) -> str:
    """Render ``suite`` as a syzlang document.

    Parameters
    ----------
    suite:
        The suite to render.
    header:
        When True, include a comment header with the suite name and counts.
    """
    sections: list[str] = []
    if header:
        stats = suite.stats()
        sections.append(
            "\n".join(
                [
                    f"# Specification suite: {suite.name}",
                    f"# syscalls={stats['syscalls']} types={stats['types']} resources={stats['resources']}",
                ]
            )
        )
    if suite.resources:
        sections.append("\n".join(res.render() for res in _sorted(suite.resources)))
    if suite.flags:
        sections.append("\n".join(flag.render() for flag in _sorted(suite.flags)))
    if suite.syscalls:
        sections.append("\n".join(_render_syscalls(suite)))
    type_defs = list(_sorted(suite.structs)) + list(_sorted(suite.unions))
    if type_defs:
        sections.append("\n\n".join(definition.render() for definition in type_defs))
    return "\n\n".join(sections) + "\n"


def serialize_syscall(syscall: Syscall) -> str:
    """Render a single syscall description (including its comment, if any)."""
    return syscall.render()


def _render_syscalls(suite: SpecSuite) -> list[str]:
    """Render syscalls grouped by the resource they consume, openat-style first."""

    def sort_key(syscall: Syscall) -> tuple:
        consumed = syscall.consumed_resources()
        group = consumed[0] if consumed else (syscall.produced_resource() or "")
        # Producers (openat/socket) come before consumers within each group.
        producer_rank = 0 if syscall.produced_resource() else 1
        return (group, producer_rank, syscall.full_name)

    return [syscall.render() for syscall in sorted(suite, key=sort_key)]


def _sorted(mapping):
    return (mapping[name] for name in sorted(mapping))


__all__ = ["serialize_suite", "serialize_syscall"]
