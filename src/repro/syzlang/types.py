"""Type expressions of the syzlang specification language.

Syzlang (the Syzkaller description language) describes the byte layout and
semantics of syscall arguments.  This module models the subset of the type
language that KernelGPT and the baselines emit:

* scalar integers with optional value ranges (``int32``, ``int64[0:3]``)
* compile-time constants (``const[DM_VERSION, int32]``)
* flag sets (``flags[msm_submitqueue_flags, int32]``)
* strings, optionally restricted to fixed values (``string["/dev/msm"]``)
* pointers with a direction (``ptr[inout, dm_ioctl]``)
* arrays with optional fixed length (``array[int8]``, ``array[int32, 3]``)
* length-of relationships (``len[devices, int32]``)
* references to resources (``fd_dm``) and to named structs/unions
* filename and buffer conveniences used by generated descriptions

Every type expression knows how to render itself back to syzlang text
(:meth:`TypeExpr.render`), how to report the names it references
(:meth:`TypeExpr.referenced_names`), and how large its in-memory encoding is
for the fuzzer's program builder (:meth:`TypeExpr.byte_size`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterator, Sequence

#: Widths (in bytes) of the integer base types syzlang understands.
INT_WIDTHS = {
    "int8": 1,
    "int16": 2,
    "int32": 4,
    "int64": 8,
    "intptr": 8,
}

#: Pointer directions accepted by ``ptr[...]``.
PTR_DIRECTIONS = ("in", "out", "inout")

#: Size used for pointer-valued arguments in the simulated ABI.
POINTER_SIZE = 8

#: Default number of elements assumed for variable-length arrays when a
#: concrete size is needed (program generation, byte-size estimates).
DEFAULT_ARRAY_ELEMS = 4


class TypeExpr:
    """Base class for every syzlang type expression.

    Subclasses are frozen dataclasses; type expressions are immutable value
    objects and can be shared freely between specs.
    """

    def render(self) -> str:
        """Return the syzlang textual form of this type expression."""
        raise NotImplementedError

    def referenced_names(self) -> Iterator[str]:
        """Yield names of structs, unions, resources and flag sets used here.

        The validator uses this to check that every reference resolves; the
        serializer uses it to order definitions.
        """
        return iter(())

    def referenced_constants(self) -> Iterator[str]:
        """Yield macro/constant identifiers that must be resolvable."""
        return iter(())

    def byte_size(self, resolver: "TypeSizeResolver | None" = None) -> int:
        """Return the encoded size in bytes of a value of this type.

        ``resolver`` supplies sizes for named struct/union references; when it
        is omitted, named references fall back to a pointer-sized estimate.
        """
        raise NotImplementedError

    def is_output(self) -> bool:
        """Return True if this expression only carries data out of the kernel."""
        return False

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


class TypeSizeResolver:
    """Protocol-ish helper that resolves named type sizes for byte_size()."""

    def size_of(self, name: str) -> int:
        raise NotImplementedError


def _check_width(type_width: str) -> str:
    if type_width not in INT_WIDTHS:
        raise ValueError(f"unknown integer width {type_width!r}; expected one of {sorted(INT_WIDTHS)}")
    return type_width


@dataclass(frozen=True)
class IntType(TypeExpr):
    """A plain integer, optionally restricted to an inclusive range.

    ``IntType("int32")`` renders as ``int32``;
    ``IntType("int32", 0, 3)`` renders as ``int32[0:3]``.
    """

    width: str = "int32"
    min_value: int | None = None
    max_value: int | None = None

    def __post_init__(self) -> None:
        _check_width(self.width)
        if (self.min_value is None) != (self.max_value is None):
            raise ValueError("IntType range requires both min_value and max_value")
        if self.min_value is not None and self.max_value is not None and self.min_value > self.max_value:
            raise ValueError(f"IntType range is inverted: [{self.min_value}:{self.max_value}]")

    def render(self) -> str:
        if self.min_value is None:
            return self.width
        return f"{self.width}[{self.min_value}:{self.max_value}]"

    def byte_size(self, resolver: TypeSizeResolver | None = None) -> int:
        return INT_WIDTHS[self.width]


@dataclass(frozen=True)
class ConstType(TypeExpr):
    """A constant value, usually a macro name (``const[DM_VERSION, int32]``).

    ``value`` may be an integer literal or a macro identifier; macro
    identifiers must be resolvable by the constant table during validation.
    """

    value: int | str
    width: str = "int32"

    def __post_init__(self) -> None:
        _check_width(self.width)

    def render(self) -> str:
        return f"const[{self.value}, {self.width}]"

    def referenced_constants(self) -> Iterator[str]:
        if isinstance(self.value, str):
            yield self.value

    def byte_size(self, resolver: TypeSizeResolver | None = None) -> int:
        return INT_WIDTHS[self.width]


@dataclass(frozen=True)
class FlagsType(TypeExpr):
    """A reference to a named flag set (``flags[dm_flags, int32]``)."""

    flags_name: str
    width: str = "int32"

    def __post_init__(self) -> None:
        _check_width(self.width)

    def render(self) -> str:
        return f"flags[{self.flags_name}, {self.width}]"

    def referenced_names(self) -> Iterator[str]:
        yield self.flags_name

    def byte_size(self, resolver: TypeSizeResolver | None = None) -> int:
        return INT_WIDTHS[self.width]


@dataclass(frozen=True)
class StringType(TypeExpr):
    """A NUL-terminated string, optionally fixed to specific values.

    ``StringType(("/dev/msm",))`` renders as ``string["/dev/msm"]`` and is the
    canonical way device file names appear in ``openat`` descriptions.
    """

    values: tuple[str, ...] = ()

    def render(self) -> str:
        if not self.values:
            return "string"
        if len(self.values) == 1:
            return f'string["{self.values[0]}"]'
        joined = ", ".join(f'"{value}"' for value in self.values)
        return f"string[{joined}]"

    def byte_size(self, resolver: TypeSizeResolver | None = None) -> int:
        if not self.values:
            return 16
        return max(len(value) for value in self.values) + 1


@dataclass(frozen=True)
class FilenameType(TypeExpr):
    """A generic filename argument (``filename``), used by openat fallbacks."""

    def render(self) -> str:
        return "filename"

    def byte_size(self, resolver: TypeSizeResolver | None = None) -> int:
        return 32


@dataclass(frozen=True)
class PtrType(TypeExpr):
    """A userspace pointer to another type (``ptr[inout, dm_ioctl]``)."""

    direction: str
    elem: TypeExpr

    def __post_init__(self) -> None:
        if self.direction not in PTR_DIRECTIONS:
            raise ValueError(f"invalid pointer direction {self.direction!r}; expected one of {PTR_DIRECTIONS}")

    def render(self) -> str:
        return f"ptr[{self.direction}, {self.elem.render()}]"

    def referenced_names(self) -> Iterator[str]:
        return self.elem.referenced_names()

    def referenced_constants(self) -> Iterator[str]:
        return self.elem.referenced_constants()

    def byte_size(self, resolver: TypeSizeResolver | None = None) -> int:
        return POINTER_SIZE

    def pointee_size(self, resolver: TypeSizeResolver | None = None) -> int:
        """Return the size of the pointed-to object."""
        return self.elem.byte_size(resolver)

    def is_output(self) -> bool:
        return self.direction == "out"


@dataclass(frozen=True)
class ArrayType(TypeExpr):
    """A contiguous array of elements, optionally of fixed length."""

    elem: TypeExpr
    length: int | None = None

    def __post_init__(self) -> None:
        if self.length is not None and self.length < 0:
            raise ValueError("array length must be non-negative")

    def render(self) -> str:
        if self.length is None:
            return f"array[{self.elem.render()}]"
        return f"array[{self.elem.render()}, {self.length}]"

    def referenced_names(self) -> Iterator[str]:
        return self.elem.referenced_names()

    def referenced_constants(self) -> Iterator[str]:
        return self.elem.referenced_constants()

    def byte_size(self, resolver: TypeSizeResolver | None = None) -> int:
        count = self.length if self.length is not None else DEFAULT_ARRAY_ELEMS
        return count * self.elem.byte_size(resolver)


@dataclass(frozen=True)
class LenType(TypeExpr):
    """A field whose value is the length of a sibling field (``len[devices, int32]``).

    This is the construct that distinguishes semantically-aware generators
    (KernelGPT) from purely structural ones (Figure 5 in the paper).
    """

    target: str
    width: str = "int32"

    def __post_init__(self) -> None:
        _check_width(self.width)

    def render(self) -> str:
        return f"len[{self.target}, {self.width}]"

    def byte_size(self, resolver: TypeSizeResolver | None = None) -> int:
        return INT_WIDTHS[self.width]


@dataclass(frozen=True)
class ResourceRef(TypeExpr):
    """A use of a named resource (``fd_dm``) as an argument or return value."""

    name: str

    def render(self) -> str:
        return self.name

    def referenced_names(self) -> Iterator[str]:
        yield self.name

    def byte_size(self, resolver: TypeSizeResolver | None = None) -> int:
        return 4


@dataclass(frozen=True)
class NamedTypeRef(TypeExpr):
    """A reference to a named struct or union defined elsewhere in the suite."""

    name: str

    def render(self) -> str:
        return self.name

    def referenced_names(self) -> Iterator[str]:
        yield self.name

    def byte_size(self, resolver: TypeSizeResolver | None = None) -> int:
        if resolver is None:
            return POINTER_SIZE
        return resolver.size_of(self.name)


@dataclass(frozen=True)
class VoidType(TypeExpr):
    """An explicitly empty payload (``void``), used by some ioctl variants."""

    def render(self) -> str:
        return "void"

    def byte_size(self, resolver: TypeSizeResolver | None = None) -> int:
        return 0


@dataclass(frozen=True)
class BufferType(TypeExpr):
    """An untyped byte buffer with direction, shorthand for ``array[int8]``."""

    direction: str = "in"

    def __post_init__(self) -> None:
        if self.direction not in PTR_DIRECTIONS:
            raise ValueError(f"invalid buffer direction {self.direction!r}")

    def render(self) -> str:
        return f"buffer[{self.direction}]"

    def byte_size(self, resolver: TypeSizeResolver | None = None) -> int:
        return DEFAULT_ARRAY_ELEMS

    def is_output(self) -> bool:
        return self.direction == "out"


@dataclass(frozen=True)
class Field:
    """A named member of a struct or union definition.

    ``attrs`` carries per-field annotations such as ``out`` (the field is
    written by the kernel) exactly as they appear in parentheses in syzlang.
    """

    name: str
    type: TypeExpr
    attrs: tuple[str, ...] = ()

    def render(self) -> str:
        suffix = f" ({', '.join(self.attrs)})" if self.attrs else ""
        return f"{self.name} {self.type.render()}{suffix}"

    def referenced_names(self) -> Iterator[str]:
        return self.type.referenced_names()

    def referenced_constants(self) -> Iterator[str]:
        return self.type.referenced_constants()


def walk_type(expr: TypeExpr) -> Iterator[TypeExpr]:
    """Yield ``expr`` and every nested type expression it contains (pre-order)."""
    yield expr
    if isinstance(expr, PtrType):
        yield from walk_type(expr.elem)
    elif isinstance(expr, ArrayType):
        yield from walk_type(expr.elem)


def substitute_named_refs(expr: TypeExpr, mapping: dict[str, str]) -> TypeExpr:
    """Return ``expr`` with named struct/union references renamed via ``mapping``.

    Used by the repair stage when a definition is renamed to resolve a clash.
    """
    if isinstance(expr, NamedTypeRef) and expr.name in mapping:
        return NamedTypeRef(mapping[expr.name])
    if isinstance(expr, ResourceRef) and expr.name in mapping:
        return ResourceRef(mapping[expr.name])
    if isinstance(expr, PtrType):
        return PtrType(expr.direction, substitute_named_refs(expr.elem, mapping))
    if isinstance(expr, ArrayType):
        return ArrayType(substitute_named_refs(expr.elem, mapping), expr.length)
    return expr


def type_from_simple_name(name: str) -> TypeExpr:
    """Build a type expression from a bare identifier used in syzlang text.

    Bare identifiers are either integer widths (``int32``), ``string``,
    ``filename``, ``void``, or references to named definitions/resources.
    """
    if name in INT_WIDTHS:
        return IntType(name)
    if name == "string":
        return StringType()
    if name == "filename":
        return FilenameType()
    if name == "void":
        return VoidType()
    return NamedTypeRef(name)


__all__ = [
    "INT_WIDTHS",
    "PTR_DIRECTIONS",
    "POINTER_SIZE",
    "DEFAULT_ARRAY_ELEMS",
    "TypeExpr",
    "TypeSizeResolver",
    "IntType",
    "ConstType",
    "FlagsType",
    "StringType",
    "FilenameType",
    "PtrType",
    "ArrayType",
    "LenType",
    "ResourceRef",
    "NamedTypeRef",
    "VoidType",
    "BufferType",
    "Field",
    "walk_type",
    "substitute_named_refs",
    "type_from_simple_name",
]
