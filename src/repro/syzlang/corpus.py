"""Spec corpus management and coverage/missing-spec accounting.

The paper's Table 1 and Figure 7 are computed by comparing, per operation
handler, the set of syscalls the kernel actually implements (ground truth,
known exactly for the synthetic kernel) against the set of syscalls the
existing Syzkaller corpus describes.  This module provides:

* :class:`SpecCorpus` — a named collection of per-handler spec suites that
  can be merged into one flat suite for fuzzing;
* :class:`HandlerCoverage` — the missing-spec accounting for one handler;
* :func:`missing_specs_report` — the scan behind Table 1 / Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from ..errors import SyzlangError
from .ast import SpecSuite


class SpecCorpus:
    """A collection of specification suites keyed by operation-handler name.

    A corpus is how the library models "the Syzkaller repository": one suite
    per described driver/socket handler.  Generators produce corpora too, so
    merging "Syzkaller + KernelGPT" is a corpus-level operation.
    """

    def __init__(self, name: str):
        self.name = name
        self._suites: dict[str, SpecSuite] = {}

    def add(self, handler_name: str, suite: SpecSuite, *, replace_existing: bool = False) -> None:
        """Register ``suite`` as the descriptions for ``handler_name``."""
        if handler_name in self._suites and not replace_existing:
            raise SyzlangError(f"corpus {self.name!r} already has specs for {handler_name!r}")
        self._suites[handler_name] = suite

    def get(self, handler_name: str) -> SpecSuite | None:
        return self._suites.get(handler_name)

    def handlers(self) -> tuple[str, ...]:
        return tuple(sorted(self._suites))

    def __contains__(self, handler_name: str) -> bool:
        return handler_name in self._suites

    def __len__(self) -> int:
        return len(self._suites)

    def __iter__(self) -> Iterator[tuple[str, SpecSuite]]:
        return iter(sorted(self._suites.items()))

    def flatten(self, name: str | None = None) -> SpecSuite:
        """Merge every per-handler suite into one suite for fuzzing."""
        merged = SpecSuite(name or self.name)
        for _, suite in self:
            merged = merged.merge(suite)
        merged.name = name or self.name
        return merged

    def merge_corpus(self, other: "SpecCorpus", *, prefer: str = "self") -> "SpecCorpus":
        """Combine two corpora handler-by-handler (suites merge on overlap)."""
        merged = SpecCorpus(f"{self.name}+{other.name}")
        for handler, suite in self:
            merged.add(handler, suite)
        for handler, suite in other:
            if handler in merged:
                merged._suites[handler] = merged._suites[handler].merge(suite, prefer=prefer)
            else:
                merged.add(handler, suite)
        return merged

    def total_syscalls(self) -> int:
        return sum(len(suite) for _, suite in self)

    def total_types(self) -> int:
        return sum(suite.stats()["types"] for _, suite in self)

    def stats(self) -> dict[str, int]:
        return {
            "handlers": len(self),
            "syscalls": self.total_syscalls(),
            "types": self.total_types(),
        }


@dataclass(frozen=True)
class HandlerCoverage:
    """Missing-spec accounting for one operation handler.

    ``implemented`` is the set of syscall interfaces (ground-truth operation
    names, e.g. ``ioctl$DM_DEV_CREATE``) the handler's kernel code supports;
    ``described`` is the subset covered by the corpus being measured.
    """

    handler: str
    kind: str
    implemented: tuple[str, ...]
    described: tuple[str, ...]

    @property
    def missing(self) -> tuple[str, ...]:
        described = set(self.described)
        return tuple(name for name in self.implemented if name not in described)

    @property
    def missing_fraction(self) -> float:
        """Fraction of implemented syscalls with no description (0.0 – 1.0)."""
        if not self.implemented:
            return 0.0
        return len(self.missing) / len(self.implemented)

    @property
    def is_incomplete(self) -> bool:
        """True when at least one implemented syscall has no description."""
        return bool(self.missing)

    @property
    def is_undescribed(self) -> bool:
        """True when the corpus has *no* description at all for this handler."""
        return not self.described


@dataclass
class MissingSpecsReport:
    """The outcome of scanning a corpus against ground-truth handler interfaces."""

    corpus_name: str
    coverages: list[HandlerCoverage] = field(default_factory=list)

    def incomplete(self, kind: str | None = None) -> list[HandlerCoverage]:
        return [
            cov
            for cov in self.coverages
            if cov.is_incomplete and (kind is None or cov.kind == kind)
        ]

    def undescribed(self, kind: str | None = None) -> list[HandlerCoverage]:
        return [
            cov
            for cov in self.coverages
            if cov.is_undescribed and (kind is None or cov.kind == kind)
        ]

    def of_kind(self, kind: str) -> list[HandlerCoverage]:
        return [cov for cov in self.coverages if cov.kind == kind]

    def histogram(self, kind: str, bins: int = 10) -> list[int]:
        """Return Figure 7's histogram: handler counts per missing-percentage bin.

        Only handlers that are missing at least one description are counted,
        matching the paper's "Missing ... Specs Distribution" plots.
        """
        counts = [0] * bins
        for cov in self.incomplete(kind):
            fraction = cov.missing_fraction
            index = min(int(fraction * bins), bins - 1)
            counts[index] += 1
        return counts


def missing_specs_report(
    corpus_name: str,
    ground_truth: Mapping[str, tuple[str, tuple[str, ...]]],
    described: Mapping[str, Iterable[str]],
) -> MissingSpecsReport:
    """Compare ground-truth handler interfaces against a corpus's descriptions.

    Parameters
    ----------
    corpus_name:
        Label for the corpus being measured (used in reports).
    ground_truth:
        Mapping ``handler name -> (kind, implemented syscall interface names)``.
    described:
        Mapping ``handler name -> described syscall interface names``.
    """
    report = MissingSpecsReport(corpus_name=corpus_name)
    for handler, (kind, implemented) in sorted(ground_truth.items()):
        described_names = tuple(sorted(set(described.get(handler, ()))))
        report.coverages.append(
            HandlerCoverage(
                handler=handler,
                kind=kind,
                implemented=tuple(implemented),
                described=described_names,
            )
        )
    return report


__all__ = [
    "SpecCorpus",
    "HandlerCoverage",
    "MissingSpecsReport",
    "missing_specs_report",
]
