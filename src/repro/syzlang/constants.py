"""Constant (macro) resolution for syzlang specifications.

Real Syzkaller resolves macro names such as ``DM_LIST_DEVICES`` by running
``syz-extract`` against kernel headers.  In this reproduction, macro values
come from the synthetic kernel codebase's ``#define`` tables.  The
:class:`ConstantTable` is the one interface both the validator (checking that
``const[NAME]`` resolves) and the fuzzer (encoding concrete command values)
use.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..errors import SyzlangError


class ConstantTable:
    """A mapping from macro identifiers to integer values.

    The table also supports reverse lookup (value → names), which the
    experiments use to render human-readable reports, and namespacing by
    source file, which mirrors how ``syz-extract`` scopes constants.
    """

    def __init__(self, values: Mapping[str, int] | None = None):
        self._values: dict[str, int] = dict(values or {})

    # ----------------------------------------------------------------- edit
    def define(self, name: str, value: int, *, allow_redefine: bool = False) -> None:
        """Add a macro definition.

        Redefinition with a *different* value raises unless explicitly allowed,
        because silently-conflicting constants are a classic source of invalid
        specifications.
        """
        if not allow_redefine and name in self._values and self._values[name] != value:
            raise SyzlangError(
                f"conflicting definitions for constant {name!r}: "
                f"{self._values[name]} vs {value}"
            )
        self._values[name] = value

    def update(self, other: "ConstantTable | Mapping[str, int]") -> None:
        items = other.items() if isinstance(other, Mapping) else other._values.items()
        for name, value in items:
            self.define(name, value, allow_redefine=True)

    # --------------------------------------------------------------- lookup
    def resolve(self, name_or_value: str | int) -> int:
        """Return the integer value of a macro name or pass through an int."""
        if isinstance(name_or_value, int):
            return name_or_value
        try:
            return self._values[name_or_value]
        except KeyError:
            raise SyzlangError(f"unknown constant {name_or_value!r}") from None

    def has(self, name: str) -> bool:
        return name in self._values

    def get(self, name: str, default: int | None = None) -> int | None:
        return self._values.get(name, default)

    def names_for(self, value: int) -> tuple[str, ...]:
        """Return every macro name bound to ``value`` (reverse lookup)."""
        return tuple(sorted(name for name, bound in self._values.items() if bound == value))

    def items(self) -> Iterator[tuple[str, int]]:
        return iter(sorted(self._values.items()))

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._values))

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def copy(self) -> "ConstantTable":
        return ConstantTable(self._values)

    @classmethod
    def from_defines(cls, defines: Iterable[tuple[str, int]]) -> "ConstantTable":
        """Build a table from an iterable of ``(name, value)`` pairs."""
        table = cls()
        for name, value in defines:
            table.define(name, value, allow_redefine=True)
        return table


#: Constants that the simulated libc/kernel ABI always knows about, mirroring
#: the builtin const list shipped with Syzkaller.
BUILTIN_CONSTANTS = ConstantTable(
    {
        "AT_FDCWD": 0xFFFFFF9C,
        "O_RDWR": 0x2,
        "O_RDONLY": 0x0,
        "O_WRONLY": 0x1,
        "O_NONBLOCK": 0x800,
        "SOCK_STREAM": 1,
        "SOCK_DGRAM": 2,
        "SOCK_RAW": 3,
        "SOCK_SEQPACKET": 5,
        "SOL_SOCKET": 1,
        "AF_UNIX": 1,
        "AF_INET": 2,
        "AF_INET6": 10,
        "AF_PACKET": 17,
        "AF_BLUETOOTH": 31,
        "AF_RDS": 21,
        "AF_LLC": 26,
        "AF_CAIF": 37,
        "AF_PHONET": 35,
        "AF_PPPOX": 24,
        "MSG_DONTWAIT": 0x40,
    }
)


__all__ = ["ConstantTable", "BUILTIN_CONSTANTS"]
