"""Syzlang: the specification language subsystem.

This package models Syzkaller's description language — the types, resources,
struct/union definitions and syscall descriptions that tell a fuzzer how to
build valid syscall sequences — together with a parser, a serializer, a
validator (the stand-in for ``syz-extract``/``syz-generate``) and corpus
management utilities.
"""

from .ast import (
    FlagsDef,
    Param,
    ResourceDef,
    SpecSuite,
    StructDef,
    Syscall,
    UnionDef,
)
from .constants import BUILTIN_CONSTANTS, ConstantTable
from .corpus import HandlerCoverage, MissingSpecsReport, SpecCorpus, missing_specs_report
from .parser import parse_field, parse_suite, parse_syscall, parse_type, resolve_resource_refs
from .serializer import serialize_suite, serialize_syscall
from .types import (
    ArrayType,
    BufferType,
    ConstType,
    Field,
    FilenameType,
    FlagsType,
    IntType,
    LenType,
    NamedTypeRef,
    PtrType,
    ResourceRef,
    StringType,
    TypeExpr,
    VoidType,
)
from .validator import (
    ErrorCode,
    Severity,
    SpecValidator,
    ValidationIssue,
    ValidationReport,
    validate_suite,
)

__all__ = [
    # ast
    "SpecSuite",
    "Syscall",
    "Param",
    "ResourceDef",
    "FlagsDef",
    "StructDef",
    "UnionDef",
    # types
    "TypeExpr",
    "IntType",
    "ConstType",
    "FlagsType",
    "StringType",
    "FilenameType",
    "PtrType",
    "ArrayType",
    "LenType",
    "ResourceRef",
    "NamedTypeRef",
    "VoidType",
    "BufferType",
    "Field",
    # parsing / serialization
    "parse_type",
    "parse_field",
    "parse_syscall",
    "parse_suite",
    "resolve_resource_refs",
    "serialize_suite",
    "serialize_syscall",
    # validation
    "SpecValidator",
    "ValidationReport",
    "ValidationIssue",
    "ErrorCode",
    "Severity",
    "validate_suite",
    # constants
    "ConstantTable",
    "BUILTIN_CONSTANTS",
    # corpus
    "SpecCorpus",
    "HandlerCoverage",
    "MissingSpecsReport",
    "missing_specs_report",
]
