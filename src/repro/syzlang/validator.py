"""Validation of syzlang specification suites.

This is the reproduction's stand-in for running ``syz-extract`` and
``syz-generate`` (the paper §4 "Validation").  The validator performs the
same classes of checks those tools perform:

* **undefined-type** — a syscall or struct references a struct/union/resource
  that is not defined anywhere in the suite;
* **unknown-constant** — a ``const[NAME]`` or flag value does not resolve
  against the kernel's constant table (wrong macro name);
* **unmatched-resource** — a syscall consumes a resource no syscall in the
  suite produces (broken inter-syscall dependency);
* **bad-len-target** — a ``len[...]`` field names a sibling that does not
  exist;
* **unknown-syscall** — the base syscall name is not one the (simulated)
  kernel ABI provides;
* **empty-definition**, **recursive-type**, **duplicate-variant** and other
  structural problems.

Each problem becomes a :class:`ValidationIssue` carrying an error code, the
offending definition, and a human-readable message; the repair stage
(:mod:`repro.core.repair`) keys its few-shot prompts off the error code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable

from .ast import BUILTIN_RESOURCE_KINDS, KNOWN_SYSCALL_NAMES, SpecSuite, StructDef, Syscall, UnionDef
from .constants import BUILTIN_CONSTANTS, ConstantTable
from .types import (
    ArrayType,
    ConstType,
    FlagsType,
    LenType,
    NamedTypeRef,
    PtrType,
    ResourceRef,
    StringType,
    TypeExpr,
    walk_type,
)


class Severity(str, Enum):
    """Severity of a validation finding."""

    ERROR = "error"
    WARNING = "warning"


class ErrorCode(str, Enum):
    """Stable identifiers for every class of validation problem."""

    UNDEFINED_TYPE = "undefined-type"
    UNKNOWN_CONSTANT = "unknown-constant"
    UNKNOWN_FLAGS = "unknown-flags"
    UNMATCHED_RESOURCE = "unmatched-resource"
    UNDEFINED_RESOURCE = "undefined-resource"
    BAD_LEN_TARGET = "bad-len-target"
    UNKNOWN_SYSCALL = "unknown-syscall"
    EMPTY_DEFINITION = "empty-definition"
    RECURSIVE_TYPE = "recursive-type"
    BAD_RESOURCE_KIND = "bad-resource-kind"
    MISSING_FILENAME = "missing-filename"
    DUPLICATE_FIELD = "duplicate-field"
    UNUSED_DEFINITION = "unused-definition"


@dataclass(frozen=True)
class ValidationIssue:
    """A single validation finding.

    Attributes
    ----------
    code:
        Machine-readable error class (drives repair few-shot selection).
    severity:
        Whether the finding blocks acceptance of the suite.
    subject:
        Name of the syscall or type definition the finding is about.
    message:
        Human-readable explanation, phrased like the syz-tool error output.
    """

    code: ErrorCode
    severity: Severity
    subject: str
    message: str

    def render(self) -> str:
        return f"{self.severity.value}: {self.subject}: {self.message} [{self.code.value}]"


@dataclass
class ValidationReport:
    """The outcome of validating one suite.

    **Ordering is part of the public API.**  ``issues`` are appended in
    *suite declaration order*: the validator walks syscalls, then structs,
    then unions, then resources, each in the suite's insertion order, so a
    given suite always yields the same issue sequence.  Everything derived
    here (:meth:`issues_for`, :meth:`subjects_with_errors`) preserves that
    order and never round-trips through a ``set`` or ``dict`` whose
    iteration could depend on ``PYTHONHASHSEED`` — the repair stage's
    deterministic item ordering (determinism rule 7, see
    :mod:`repro.core.repair`) is built directly on this guarantee.
    """

    suite_name: str
    issues: list[ValidationIssue] = field(default_factory=list)

    @property
    def errors(self) -> list[ValidationIssue]:
        return [issue for issue in self.issues if issue.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[ValidationIssue]:
        return [issue for issue in self.issues if issue.severity is Severity.WARNING]

    @property
    def is_valid(self) -> bool:
        """True when no error-severity issue was found (warnings are allowed)."""
        return not self.errors

    def issues_for(self, subject: str) -> list[ValidationIssue]:
        """The issues attached to one syscall or type name, in report order."""
        return [issue for issue in self.issues if issue.subject == subject]

    def subjects_with_errors(self) -> tuple[str, ...]:
        """Subjects carrying at least one error, in declaration order.

        The order is each subject's *first appearance* among the error
        issues — i.e. suite declaration order, because that is how the
        validator emits issues.  This ordering is what the repair stage
        interns subjects by; it is deliberately not alphabetical and not
        derived from set iteration.
        """
        seen: dict[str, None] = {}
        for issue in self.issues:
            if issue.severity is Severity.ERROR and issue.subject not in seen:
                seen[issue.subject] = None
        return tuple(seen)

    def render(self) -> str:
        if not self.issues:
            return f"{self.suite_name}: specification is valid"
        lines = [f"{self.suite_name}: {len(self.errors)} error(s), {len(self.warnings)} warning(s)"]
        lines.extend(issue.render() for issue in self.issues)
        return "\n".join(lines)


class SpecValidator:
    """Validates spec suites against a kernel constant table.

    Parameters
    ----------
    constants:
        Macro table used to resolve ``const[NAME]`` and flag values.  The
        builtin ABI constants are always consulted as a fallback.
    known_syscalls:
        Base syscall names the target ABI provides.
    warn_unused:
        Also emit warnings for type definitions no syscall references.
    """

    def __init__(
        self,
        constants: ConstantTable | None = None,
        *,
        known_syscalls: Iterable[str] = KNOWN_SYSCALL_NAMES,
        warn_unused: bool = True,
    ):
        self._constants = constants or ConstantTable()
        self._known_syscalls = frozenset(known_syscalls)
        self._warn_unused = warn_unused

    # ------------------------------------------------------------------ API
    def validate(self, suite: SpecSuite) -> ValidationReport:
        """Validate ``suite`` and return a full report."""
        report = ValidationReport(suite_name=suite.name)
        produced = suite.produced_resources()
        referenced_defs: set[str] = set()

        for syscall in suite:
            self._check_syscall(suite, syscall, produced, report, referenced_defs)

        for name, struct in suite.structs.items():
            self._check_composite(suite, name, struct, report, referenced_defs)
        for name, union in suite.unions.items():
            self._check_composite(suite, name, union, report, referenced_defs)

        for name, resource in suite.resources.items():
            if resource.kind not in BUILTIN_RESOURCE_KINDS and not suite.has_definition(resource.kind):
                report.issues.append(
                    ValidationIssue(
                        ErrorCode.BAD_RESOURCE_KIND,
                        Severity.ERROR,
                        name,
                        f"resource kind {resource.kind!r} is not a builtin kind or defined resource",
                    )
                )

        self._check_recursion(suite, report)

        if self._warn_unused:
            for name in sorted(set(suite.structs) | set(suite.unions)):
                if name not in referenced_defs:
                    report.issues.append(
                        ValidationIssue(
                            ErrorCode.UNUSED_DEFINITION,
                            Severity.WARNING,
                            name,
                            "type definition is never referenced by a syscall",
                        )
                    )
        return report

    # -------------------------------------------------------------- details
    def _check_syscall(
        self,
        suite: SpecSuite,
        syscall: Syscall,
        produced: set[str],
        report: ValidationReport,
        referenced_defs: set[str],
    ) -> None:
        subject = syscall.full_name
        if syscall.name not in self._known_syscalls:
            report.issues.append(
                ValidationIssue(
                    ErrorCode.UNKNOWN_SYSCALL,
                    Severity.ERROR,
                    subject,
                    f"syscall {syscall.name!r} is not part of the target ABI",
                )
            )
        if syscall.name == "openat" and not self._has_filename_arg(syscall):
            report.issues.append(
                ValidationIssue(
                    ErrorCode.MISSING_FILENAME,
                    Severity.WARNING,
                    subject,
                    "openat description has no string/filename argument for the device path",
                )
            )
        for param in syscall.params:
            for expr in walk_type(param.type):
                self._check_expr(suite, subject, expr, produced, report, referenced_defs)
        if syscall.returns is not None and syscall.returns.name not in suite.resources:
            report.issues.append(
                ValidationIssue(
                    ErrorCode.UNDEFINED_RESOURCE,
                    Severity.ERROR,
                    subject,
                    f"return resource {syscall.returns.name!r} is not declared",
                )
            )

    def _check_expr(
        self,
        suite: SpecSuite,
        subject: str,
        expr: TypeExpr,
        produced: set[str],
        report: ValidationReport,
        referenced_defs: set[str],
    ) -> None:
        if isinstance(expr, NamedTypeRef):
            if suite.get_type_def(expr.name) is not None:
                referenced_defs.add(expr.name)
            elif expr.name in suite.resources:
                self._check_resource_use(suite, subject, expr.name, produced, report)
            else:
                report.issues.append(
                    ValidationIssue(
                        ErrorCode.UNDEFINED_TYPE,
                        Severity.ERROR,
                        subject,
                        f"type {expr.name!r} is not defined",
                    )
                )
        elif isinstance(expr, ResourceRef):
            if expr.name in suite.resources:
                self._check_resource_use(suite, subject, expr.name, produced, report)
            elif suite.get_type_def(expr.name) is not None:
                referenced_defs.add(expr.name)
            else:
                report.issues.append(
                    ValidationIssue(
                        ErrorCode.UNDEFINED_RESOURCE,
                        Severity.ERROR,
                        subject,
                        f"resource {expr.name!r} is not declared",
                    )
                )
        elif isinstance(expr, ConstType):
            if isinstance(expr.value, str) and not self._resolves(expr.value):
                report.issues.append(
                    ValidationIssue(
                        ErrorCode.UNKNOWN_CONSTANT,
                        Severity.ERROR,
                        subject,
                        f"constant {expr.value!r} cannot be resolved against kernel headers",
                    )
                )
        elif isinstance(expr, FlagsType):
            flags_def = suite.flags.get(expr.flags_name)
            if flags_def is None:
                report.issues.append(
                    ValidationIssue(
                        ErrorCode.UNKNOWN_FLAGS,
                        Severity.ERROR,
                        subject,
                        f"flag set {expr.flags_name!r} is not defined",
                    )
                )
            else:
                for value in flags_def.values:
                    if not self._resolves(value):
                        report.issues.append(
                            ValidationIssue(
                                ErrorCode.UNKNOWN_CONSTANT,
                                Severity.ERROR,
                                expr.flags_name,
                                f"flag value {value!r} cannot be resolved against kernel headers",
                            )
                        )

    def _check_resource_use(
        self,
        suite: SpecSuite,
        subject: str,
        resource_name: str,
        produced: set[str],
        report: ValidationReport,
    ) -> None:
        if resource_name not in produced:
            report.issues.append(
                ValidationIssue(
                    ErrorCode.UNMATCHED_RESOURCE,
                    Severity.ERROR,
                    subject,
                    f"resource {resource_name!r} is consumed but no syscall in the suite produces it",
                )
            )

    def _check_composite(
        self,
        suite: SpecSuite,
        name: str,
        definition: StructDef | UnionDef,
        report: ValidationReport,
        referenced_defs: set[str],
    ) -> None:
        if not definition.fields:
            report.issues.append(
                ValidationIssue(
                    ErrorCode.EMPTY_DEFINITION,
                    Severity.ERROR,
                    name,
                    "definition has no fields",
                )
            )
            return
        seen: set[str] = set()
        field_names = set(definition.field_names())
        for member in definition.fields:
            if member.name in seen:
                report.issues.append(
                    ValidationIssue(
                        ErrorCode.DUPLICATE_FIELD,
                        Severity.ERROR,
                        name,
                        f"field {member.name!r} appears more than once",
                    )
                )
            seen.add(member.name)
            for expr in walk_type(member.type):
                if isinstance(expr, LenType) and expr.target not in field_names:
                    report.issues.append(
                        ValidationIssue(
                            ErrorCode.BAD_LEN_TARGET,
                            Severity.ERROR,
                            name,
                            f"len[] target {expr.target!r} is not a field of {name!r}",
                        )
                    )
                if isinstance(expr, (NamedTypeRef, ResourceRef)):
                    target = expr.name
                    if suite.get_type_def(target) is not None:
                        referenced_defs.add(target)
                    elif target in suite.resources:
                        pass
                    else:
                        report.issues.append(
                            ValidationIssue(
                                ErrorCode.UNDEFINED_TYPE,
                                Severity.ERROR,
                                name,
                                f"field {member.name!r} references undefined type {target!r}",
                            )
                        )
                if isinstance(expr, ConstType) and isinstance(expr.value, str):
                    if not self._resolves(expr.value):
                        report.issues.append(
                            ValidationIssue(
                                ErrorCode.UNKNOWN_CONSTANT,
                                Severity.ERROR,
                                name,
                                f"constant {expr.value!r} cannot be resolved against kernel headers",
                            )
                        )
                if isinstance(expr, FlagsType) and expr.flags_name not in suite.flags:
                    report.issues.append(
                        ValidationIssue(
                            ErrorCode.UNKNOWN_FLAGS,
                            Severity.ERROR,
                            name,
                            f"field {member.name!r} references undefined flag set {expr.flags_name!r}",
                        )
                    )

    def _check_recursion(self, suite: SpecSuite, report: ValidationReport) -> None:
        """Flag struct definitions that contain themselves without pointer indirection."""
        for name in list(suite.structs) + list(suite.unions):
            if self._embeds_itself(suite, name, name, set(), through_pointer=False):
                report.issues.append(
                    ValidationIssue(
                        ErrorCode.RECURSIVE_TYPE,
                        Severity.ERROR,
                        name,
                        "type embeds itself without pointer indirection (infinite size)",
                    )
                )

    def _embeds_itself(
        self,
        suite: SpecSuite,
        root: str,
        current: str,
        visited: set[str],
        *,
        through_pointer: bool,
    ) -> bool:
        if current in visited:
            return False
        visited.add(current)
        definition = suite.get_type_def(current)
        if definition is None:
            return False
        for member in definition.fields:
            for expr in self._direct_embeds(member.type):
                if expr == root:
                    return True
                if self._embeds_itself(suite, root, expr, visited, through_pointer=False):
                    return True
        return False

    @staticmethod
    def _direct_embeds(expr: TypeExpr) -> list[str]:
        """Return names embedded by value (not behind a pointer) in ``expr``."""
        if isinstance(expr, NamedTypeRef):
            return [expr.name]
        if isinstance(expr, ArrayType):
            return SpecValidator._direct_embeds(expr.elem)
        # PtrType breaks the by-value embedding chain.
        return []

    def _resolves(self, name: str) -> bool:
        return self._constants.has(name) or BUILTIN_CONSTANTS.has(name)

    @staticmethod
    def _has_filename_arg(syscall: Syscall) -> bool:
        from .types import FilenameType

        for param in syscall.params:
            for expr in walk_type(param.type):
                if isinstance(expr, (StringType, FilenameType)):
                    return True
        return False


def validate_suite(suite: SpecSuite, constants: ConstantTable | None = None) -> ValidationReport:
    """Convenience wrapper: validate ``suite`` with default settings."""
    return SpecValidator(constants).validate(suite)


__all__ = [
    "Severity",
    "ErrorCode",
    "ValidationIssue",
    "ValidationReport",
    "SpecValidator",
    "validate_suite",
]
