"""Per-stage wall-time instrumentation for engine-backed runs.

Every engine batch, generation stage and campaign records into a shared
:class:`EngineProfile`; the experiment runner's ``--profile`` flag renders
the aggregate so "where does the time actually go" is answered from
measurement rather than guesswork.  All clocks are ``time.perf_counter``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass


@dataclass
class StageStats:
    """Accumulated wall time for one named stage."""

    name: str
    calls: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "calls": self.calls,
            "total_seconds": round(self.total_seconds, 6),
            "max_seconds": round(self.max_seconds, 6),
            "avg_seconds": round(self.total_seconds / self.calls, 6) if self.calls else 0.0,
        }


class EngineProfile:
    """Thread-safe accumulator of per-stage timings."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: dict[str, StageStats] = {}

    def record(self, stage: str, seconds: float) -> None:
        with self._lock:
            stats = self._stages.setdefault(stage, StageStats(stage))
            stats.calls += 1
            stats.total_seconds += seconds
            stats.max_seconds = max(stats.max_seconds, seconds)

    @contextmanager
    def measure(self, stage: str):
        started = time.perf_counter()
        try:
            yield
        finally:
            self.record(stage, time.perf_counter() - started)

    def stage(self, name: str) -> StageStats | None:
        with self._lock:
            return self._stages.get(name)

    def report(self) -> dict[str, dict]:
        """Stage name -> stats, sorted by descending total time."""
        with self._lock:
            stages = list(self._stages.values())
        stages.sort(key=lambda stats: -stats.total_seconds)
        return {stats.name: stats.as_dict() for stats in stages}

    def render(self) -> str:
        lines = ["stage timings (wall seconds)", "----------------------------"]
        report = self.report()
        if not report:
            return "\n".join(lines + ["(no stages recorded)"])
        width = max(len(name) for name in report)
        for name, stats in report.items():
            lines.append(
                f"{name.ljust(width)}  total={stats['total_seconds']:9.3f}  "
                f"calls={stats['calls']:5d}  avg={stats['avg_seconds']:8.4f}  "
                f"max={stats['max_seconds']:8.4f}"
            )
        return "\n".join(lines)

    def clear(self) -> None:
        with self._lock:
            self._stages.clear()


__all__ = ["EngineProfile", "StageStats"]
