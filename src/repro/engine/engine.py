"""The deterministic task-execution engine.

:class:`ExecutionEngine` is the one scheduler every layer above fans work
through: spec generation fans out per-handler sessions, the fuzzer fans out
per-seed campaigns, and the experiment runner fans out whole tables.  It
bundles

* an :class:`~repro.engine.executors.Executor` chosen by the ``jobs`` knob
  (serial, thread pool or process pool);
* two single-flight memo caches — ``extract_cache`` for extractor lookups
  and ``llm_cache`` for LLM queries — plus a ``result_cache`` for whole
  generation sessions, all with hit/miss statistics;
* an :class:`~repro.engine.profile.EngineProfile` collecting per-stage wall
  times.

The engine is deliberately agnostic about *what* runs: tasks are plain
callables, and results always come back in submission order so callers can
rebuild deterministic aggregates no matter how the schedule interleaved.
"""

from __future__ import annotations

import threading
from typing import Sequence

from ..llm import LLMRequest
from .budget import GlobalWorkerBudget
from .cache import MemoCache
from .executors import Executor, create_executor
from .profile import EngineProfile
from .tasks import TaskResult, TaskSpec


class ExecutionEngine:
    """Deterministic scheduler + memoization + instrumentation."""

    def __init__(
        self,
        *,
        jobs: int = 1,
        kind: str = "thread",
        executor: Executor | None = None,
        budget: "GlobalWorkerBudget | None" = None,
        store: "object | None" = None,
    ):
        self.jobs = max(1, jobs)
        self.executor = executor or create_executor(self.jobs, kind, budget=budget)
        #: Optional :class:`~repro.store.StoreBinding`: the persistent
        #: complement to the memo caches.  The caches stay the first line
        #: (in-memory, single-flight); the store is consulted *inside* their
        #: compute callbacks — a memo miss hydrates from disk before paying
        #: for recomputation, and fresh computations are written through.
        self.store = store
        self.extract_cache = MemoCache("extract")
        self.llm_cache = MemoCache("llm")
        #: Whole generation sessions, keyed by (generator, mode, handler) —
        #: regenerating a handler the run already produced (table 5/6, the
        #: ablations) is a cache hit, and two workers asking for the same
        #: handler concurrently collapse into one session (single-flight).
        self.result_cache = MemoCache("session")
        self.profile = EngineProfile()
        # Identity tokens for cache-key participants (backends, extractors).
        # Keying by the object pins a strong reference, so — unlike raw
        # ``id()`` — a token can never be reused after garbage collection.
        self._token_lock = threading.Lock()
        self._participant_tokens: dict[object, int] = {}

    @property
    def shares_memory(self) -> bool:
        """Whether tasks run in the caller's address space (see Executor)."""
        return self.executor.shares_memory

    # ------------------------------------------------------------- scheduling
    def run_tasks(
        self,
        stage: str,
        tasks: Sequence[TaskSpec],
        *,
        rethrow: bool = True,
        payload: object = None,
    ) -> list[TaskResult]:
        """Run a batch of tasks, returning results in submission order.

        With ``rethrow=True`` (the default) the first failed task's exception
        is re-raised after the whole batch finished; ``rethrow=False`` leaves
        failures in ``TaskResult.error`` for the caller to triage.
        ``payload`` is the batch's shared object, referenced from task args
        via the ``POOL_PAYLOAD`` sentinel and shipped once per worker (see
        :meth:`Executor.run`).
        """
        with self.profile.measure(stage):
            results = self.executor.run(tasks, payload=payload)
        for result in results:
            self.profile.record(f"{stage}/task", result.duration)
        if rethrow:
            for result in results:
                if result.error is not None:
                    raise result.error
        return results

    # ------------------------------------------------------------ memoization
    def token(self, participant: object) -> int:
        """A stable per-object token for composing cache keys."""
        with self._token_lock:
            token = self._participant_tokens.get(participant)
            if token is None:
                token = len(self._participant_tokens)
                self._participant_tokens[participant] = token
            return token

    def _llm_key(self, backend, request) -> tuple:
        """The LLM memo key: backend identity token + route + full prompt.

        Two backends with the same model string but different error profiles
        never serve each other's completions, and — because the route is
        part of the key — neither do two routes through the same
        :class:`~repro.llm.BackendPool` (same prompt, different member).
        """
        prompt = request.prompt
        return ("llm", self.token(backend), request.route, prompt.kind, prompt.subject, prompt.text)

    def cached_query(self, backend, prompt, *, route: str | None = None):
        """Memoized single LLM query (a one-element :meth:`cached_query_batch`).

        Single-flight computation keeps the backend's usage meter at exactly
        one recorded query per distinct prompt, independent of ``jobs``.
        """
        return self.cached_query_batch(backend, (LLMRequest(prompt=prompt, route=route),))[0]

    def cached_query_batch(self, backend, requests):
        """Memoized ``backend.complete_batch(requests)``, results in request order.

        Single-flight **per distinct prompt across concurrent batches**: of
        all in-flight batches asking for the same (backend, route, prompt),
        exactly one computes it and the rest wait for that completion.  The
        misses this batch owns are forwarded to the backend as one
        ``complete_batch`` call, so batch granularity — the backend's atomic
        budget reservation and per-batch metering — survives memoization.
        With a store bound, owned misses first hydrate from disk and only
        the remainder reaches the backend (still as one batch).
        """
        normalized = [LLMRequest.of(item) for item in requests]
        keys = [self._llm_key(backend, request) for request in normalized]

        def compute_many(owned_positions: list[int]):
            owned = [normalized[position] for position in owned_positions]
            if self.store is None:
                return backend.complete_batch(owned)
            return self.store.complete_batch_through(backend, owned)

        return self.llm_cache.get_or_compute_many(keys, compute_many)

    def cached_extract(self, extractor, identifier: str) -> str:
        """Memoized ``extractor.extract_code(identifier)``."""
        key = (self.token(extractor), identifier)
        if self.store is None:
            return self.extract_cache.get_or_compute(
                key, lambda: extractor.extract_code(identifier)
            )
        return self.extract_cache.get_or_compute(
            key, lambda: self.store.extract_through(extractor, identifier)
        )

    def cached_session(self, generator, flavor: str, mode: str, handler_name: str, compute):
        """Memoized whole generation session (single-flight, store-hydrated).

        The result-cache key stays engine-local (participant token), so two
        generators sharing one engine keep separate memo namespaces; the
        store key underneath is cross-run canonical
        (:func:`repro.store.session_key`), so a warm engine hydrates
        sessions recorded by an earlier process — the service-restart and
        frozen-replay path.
        """
        key = (self.token(generator), flavor, mode, handler_name)
        if self.store is None:
            return self.result_cache.get_or_compute(key, compute)
        return self.result_cache.get_or_compute(
            key,
            lambda: self.store.session_through(generator, flavor, mode, handler_name, compute),
        )

    # --------------------------------------------------------------- reporting
    def cache_stats(self) -> dict[str, dict]:
        stats = {
            "extract": self.extract_cache.stats.as_dict(),
            "llm": self.llm_cache.stats.as_dict(),
            "session": self.result_cache.stats.as_dict(),
        }
        if self.store is not None:
            # ``store:<kind>`` rows share the CacheStats dict shape, so the
            # --profile renderers (runner and serve) print them unchanged.
            stats.update(self.store.stats())
        return stats

    def stats(self) -> dict:
        return {
            "jobs": self.jobs,
            "executor": self.executor.name,
            "caches": self.cache_stats(),
            "stages": self.profile.report(),
        }


def resolve_engine(
    engine: ExecutionEngine | None, jobs: int = 1, *, kind: str | None = None
) -> ExecutionEngine | None:
    """Resolve an optional engine + ``jobs``/``kind`` knobs into a dispatch engine.

    Returns the engine to dispatch tasks through, or ``None`` when the
    caller should take its plain serial path (no engine at all).  A supplied
    engine is always used — a serial one dispatches through the serial
    executor, so its caches and profile still see the work — and ``jobs>1``
    gets a fresh engine when the supplied one is serial (so the knob is
    never silently a no-op).  ``kind`` names the executor flavour for that
    fresh engine (``serial``/``thread``/``process``); it never overrides an
    explicit engine.  This is the one place the fallback policy lives;
    generation and the fuzz-campaign drivers all route through it.
    """
    if jobs > 1 and (engine is None or engine.jobs <= 1):
        engine = ExecutionEngine(jobs=jobs, kind=kind or "thread")
    return engine


__all__ = ["ExecutionEngine", "resolve_engine"]
