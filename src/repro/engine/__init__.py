"""Deterministic parallel task-execution engine.

The engine is the repository's one scheduling substrate: task specs with
per-task seeds, pluggable serial/thread/process executors behind
``jobs``/``kind`` knobs, a :class:`GlobalWorkerBudget` that nested pools
lease workers from (so fan-out inside fan-out cannot oversubscribe the
host), single-flight memo caches (extractor lookups, LLM queries) with
hit/miss statistics, and per-stage wall-time instrumentation.  The layers
above — spec generation (``repro.core``), fuzz campaigns (``repro.fuzzer``)
and the experiment runner (``repro.experiments``) — all fan their work
through it; results are always returned in submission order, which is the
invariant that makes ``jobs=1`` and ``jobs=N`` runs byte-identical on any
executor kind.
"""

from .budget import GlobalWorkerBudget, get_global_worker_budget, set_global_worker_budget
from .cache import CacheStats, MemoCache
from .engine import ExecutionEngine, resolve_engine
from .executors import (
    Executor,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
    create_executor,
    execute_task,
)
from .profile import EngineProfile, StageStats
from .tasks import POOL_PAYLOAD, TaskResult, TaskSpec, derive_seed, substitute_payload

__all__ = [
    "ExecutionEngine",
    "resolve_engine",
    "GlobalWorkerBudget",
    "get_global_worker_budget",
    "set_global_worker_budget",
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "create_executor",
    "execute_task",
    "MemoCache",
    "CacheStats",
    "EngineProfile",
    "StageStats",
    "TaskSpec",
    "TaskResult",
    "derive_seed",
    "POOL_PAYLOAD",
    "substitute_payload",
]
