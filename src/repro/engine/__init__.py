"""Deterministic parallel task-execution engine.

The engine is the repository's one scheduling substrate: task specs with
per-task seeds, pluggable serial/thread/process executors behind a ``jobs``
knob, single-flight memo caches (extractor lookups, LLM queries) with
hit/miss statistics, and per-stage wall-time instrumentation.  The layers
above — spec generation (``repro.core``), fuzz campaigns (``repro.fuzzer``)
and the experiment runner (``repro.experiments``) — all fan their work
through it; results are always returned in submission order, which is the
invariant that makes ``jobs=1`` and ``jobs=N`` runs byte-identical.
"""

from .cache import CacheStats, MemoCache
from .engine import ExecutionEngine, resolve_engine
from .executors import (
    Executor,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
    create_executor,
    execute_task,
)
from .profile import EngineProfile, StageStats
from .tasks import TaskResult, TaskSpec, derive_seed

__all__ = [
    "ExecutionEngine",
    "resolve_engine",
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "create_executor",
    "execute_task",
    "MemoCache",
    "CacheStats",
    "EngineProfile",
    "StageStats",
    "TaskSpec",
    "TaskResult",
    "derive_seed",
]
