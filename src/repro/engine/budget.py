"""A global, process-wide budget of concurrent workers.

PR 1's executors create a fresh pool per ``run()`` call, which keeps nested
fan-out (an experiment task fanning out per-handler generation tasks, which
fan out per-campaign fuzz tasks) deadlock-free — but it also means every
nesting level sizes its pool independently, so a ``--jobs N`` runner could
put ``N * N`` workers on ``N`` cores.  :class:`GlobalWorkerBudget` closes
that hole without reintroducing shared-pool deadlocks:

* every pool *leases* workers from one shared budget before it spins up and
  releases them when the batch finishes;
* a lease is **never blocking** and always grants at least one worker, so a
  nested pool can always make progress even when the budget is exhausted —
  the worst case is one extra worker per nesting level, not a deadlock;
* a pool worker that fans out a *nested* pool is itself blocked for the
  nested batch's whole duration, contributing nothing — so it **donates**
  the slot it holds back to the budget while the nested pool runs
  (:meth:`GlobalWorkerBudget.reclaimed_for_nested`) and takes it back
  afterwards.  With donation the effective concurrency bound of nested
  fan-out is exactly ``limit``, not ``limit + one per nesting level``;
* the budget is advisory concurrency control only: it changes *how many*
  workers run at once, never *what* they compute, so any grant sequence
  produces byte-identical results (executors still return submission order).

The module-level default budget is sized to the host's CPU count; tests and
embedders can install their own with :func:`set_global_worker_budget`.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

from ..errors import ServiceSaturated

#: Which budgets the current thread holds a leased worker slot of.  Pool
#: executors mark their worker threads for the duration of each task
#: (:meth:`GlobalWorkerBudget.held_slot`); nested leases on the same thread
#: use the mark to donate the blocked parent's slot.  Thread-local, so the
#: marking needs no locks and cannot leak across workers.
_held = threading.local()


def _held_budgets() -> list:
    budgets = getattr(_held, "budgets", None)
    if budgets is None:
        budgets = _held.budgets = []
    return budgets


class GlobalWorkerBudget:
    """Caps the number of concurrently leased workers across nested pools."""

    def __init__(self, limit: int | None = None):
        self.limit = max(1, limit if limit is not None else (os.cpu_count() or 1))
        self._lock = threading.Lock()
        self._leased = 0
        self.peak = 0

    def lease(self, requested: int) -> int:
        """Grant between 1 and ``requested`` workers, without ever blocking.

        Granting at least one worker keeps nested fan-out deadlock-free: a
        saturated budget degrades inner pools to effectively-serial execution
        instead of making them wait on workers that may never be released.
        """
        requested = max(1, requested)
        with self._lock:
            available = max(0, self.limit - self._leased)
            granted = max(1, min(requested, available))
            self._leased += granted
            self.peak = max(self.peak, self._leased)
            return granted

    def admit(self, requested: int, *, required: int | None = None) -> int:
        """Lease like :meth:`lease`, but refuse loudly instead of degrading.

        :meth:`lease` silently grants a single worker when the budget is
        exhausted — the right behaviour for nested compute pools, where
        degrading to serial execution beats deadlocking.  Admission control
        is the opposite contract: a job service that cannot get the workers
        it was asked for should *refuse* the work with a typed error the
        caller can act on, not quietly run it at a fraction of the promised
        concurrency.  Raises :class:`~repro.errors.ServiceSaturated` when
        fewer than ``required`` slots (default: all of ``requested``) are
        free; otherwise grants up to ``requested`` and returns the grant,
        which the caller must :meth:`release`.
        """
        requested = max(1, requested)
        required = requested if required is None else max(1, min(required, requested))
        with self._lock:
            available = max(0, self.limit - self._leased)
            if available < required:
                raise ServiceSaturated(
                    f"worker budget saturated: {available} of {self.limit} slots free, "
                    f"admission requires {required}",
                    limit=self.limit,
                    pending=self._leased,
                )
            granted = min(requested, available)
            self._leased += granted
            self.peak = max(self.peak, self._leased)
            return granted

    def release(self, granted: int) -> None:
        with self._lock:
            self._leased = max(0, self._leased - granted)

    @contextmanager
    def workers(self, requested: int):
        """Lease workers for the duration of a ``with`` block."""
        granted = self.lease(requested)
        try:
            yield granted
        finally:
            self.release(granted)

    @contextmanager
    def held_slot(self):
        """Mark the current thread as occupying one of this budget's slots.

        Pool executors wrap each task execution in this so that a task which
        fans out a nested pool can be recognized as a slot holder and donate
        its slot for the nested batch (see :meth:`reclaimed_for_nested`).
        """
        budgets = _held_budgets()
        budgets.append(self)
        try:
            yield
        finally:
            budgets.remove(self)

    @contextmanager
    def reclaimed_for_nested(self):
        """Donate the calling worker's slot while a nested batch runs.

        If the current thread holds one of this budget's slots (it is a pool
        worker mid-task), the slot returns to the budget for the duration of
        the block — the thread is about to block on the nested pool's
        futures, so the nested workers, not the parent, should own the
        concurrency.  The slot is taken back on exit (after the nested lease
        released), restoring the parent's claim before it resumes computing.
        No-op on threads that hold no slot (top-level callers).
        """
        budgets = _held_budgets()
        donated = self in budgets
        if donated:
            budgets.remove(self)
            with self._lock:
                self._leased = max(0, self._leased - 1)
        try:
            yield
        finally:
            if donated:
                with self._lock:
                    self._leased += 1
                    self.peak = max(self.peak, self._leased)
                budgets.append(self)

    @property
    def leased(self) -> int:
        with self._lock:
            return self._leased

    def stats(self) -> dict:
        with self._lock:
            return {"limit": self.limit, "leased": self._leased, "peak": self.peak}


_default_budget = GlobalWorkerBudget()


def get_global_worker_budget() -> GlobalWorkerBudget:
    """The process-wide budget new executors lease from by default."""
    return _default_budget


def set_global_worker_budget(budget: GlobalWorkerBudget) -> GlobalWorkerBudget:
    """Install ``budget`` as the process-wide default; returns the previous one."""
    global _default_budget
    previous = _default_budget
    _default_budget = budget
    return previous


__all__ = ["GlobalWorkerBudget", "get_global_worker_budget", "set_global_worker_budget"]
