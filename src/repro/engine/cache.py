"""A thread-safe, single-flight memoizing cache with hit/miss statistics.

The cache backs the engine's two memoization points — extractor lookups and
LLM queries — where the computed value is a pure function of the key.  Two
properties matter for determinism under concurrency:

* **single-flight**: when several workers ask for the same missing key at
  once, exactly one computes it and the others wait for that result.  This
  keeps side-effect counters behind the compute (e.g. the LLM backend's
  usage meter) identical between ``jobs=1`` and ``jobs=N`` runs;
* **deterministic accounting**: misses always equal the number of distinct
  keys computed, hits the number of calls served from memory, so cache
  statistics are reproducible for a fixed workload regardless of schedule.

A failed compute removes the in-flight entry (and does not count as a miss),
so a later call may retry.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Sequence


@dataclass
class CacheStats:
    """Hit/miss counters for one cache."""

    name: str
    hits: int = 0
    misses: int = 0
    errors: int = 0

    @property
    def calls(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.calls if self.calls else 0.0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "hits": self.hits,
            "misses": self.misses,
            "errors": self.errors,
            "hit_rate": round(self.hit_rate, 4),
        }


class _Entry:
    """One cache slot: a value once ready, or an in-flight computation."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None


class MemoCache:
    """Single-flight memoization keyed by any hashable value."""

    def __init__(self, name: str = "cache"):
        self.name = name
        self.stats = CacheStats(name)
        self._lock = threading.Lock()
        self._entries: dict[Hashable, _Entry] = {}

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it at most once."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = _Entry()
                self._entries[key] = entry
                owner = True
                self.stats.misses += 1
            else:
                owner = False
        if owner:
            try:
                entry.value = compute()
            except BaseException as exc:  # noqa: BLE001 - propagated to waiters
                entry.error = exc
                with self._lock:
                    self._entries.pop(key, None)
                    self.stats.misses -= 1
                    self.stats.errors += 1
                entry.event.set()
                raise
            entry.event.set()
            return entry.value
        entry.event.wait()
        if entry.error is not None:
            # The compute this caller waited on failed: it was served an
            # exception, not a memoized value, so it counts as neither hit
            # nor miss (the owner already counted the error).
            raise entry.error
        with self._lock:
            self.stats.hits += 1
        return entry.value

    def get_or_compute_many(
        self,
        keys: "Sequence[Hashable]",
        compute_many: "Callable[[list[int]], Sequence[Any]]",
    ) -> list[Any]:
        """Batched :meth:`get_or_compute`: one compute call for all misses.

        The caller becomes the owner of every key that has no entry yet
        (first occurrence only — duplicate keys within ``keys`` collapse to
        one owned slot) and ``compute_many(owned_positions)`` produces their
        values in one call, where ``owned_positions`` are indices into
        ``keys``.  Keys owned by concurrent callers are waited on after the
        owned batch computed, so a batch that contains its own duplicates
        never deadlocks on itself.  Accounting matches the single-key path:
        one miss per owned key, one hit per position served from memory
        (in-batch duplicates included), and a failed batch compute removes
        every owned entry so later calls retry.
        """
        entries: list[_Entry] = []
        owned_positions: list[int] = []
        with self._lock:
            for position, key in enumerate(keys):
                entry = self._entries.get(key)
                if entry is None:
                    entry = _Entry()
                    self._entries[key] = entry
                    owned_positions.append(position)
                    self.stats.misses += 1
                entries.append(entry)
        if owned_positions:
            try:
                values = compute_many(owned_positions)
            except BaseException as exc:  # noqa: BLE001 - propagated to waiters
                with self._lock:
                    for position in owned_positions:
                        self._entries.pop(keys[position], None)
                        self.stats.misses -= 1
                        self.stats.errors += 1
                for position in owned_positions:
                    entries[position].error = exc
                    entries[position].event.set()
                raise
            for position, value in zip(owned_positions, values):
                entries[position].value = value
                entries[position].event.set()
        results: list[Any] = []
        hits = 0
        owned = set(owned_positions)
        for position, entry in enumerate(entries):
            if position not in owned:
                entry.event.wait()
                if entry.error is not None:
                    raise entry.error
                hits += 1
            results.append(entry.value)
        if hits:
            with self._lock:
                self.stats.hits += hits
        return results

    def __len__(self) -> int:
        with self._lock:
            return sum(1 for entry in self._entries.values() if entry.event.is_set())

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and entry.event.is_set() and entry.error is None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats(self.name)


__all__ = ["MemoCache", "CacheStats"]
