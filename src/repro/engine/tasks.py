"""Task specifications and results for the execution engine.

A :class:`TaskSpec` is a self-contained, deterministic unit of work: a
callable plus its (positional/keyword) arguments, a stable ``key`` naming the
task, and an optional per-task ``seed``.  Keeping the callable and arguments
separate (instead of closing over them) keeps tasks picklable, so the same
spec can run on the serial, thread-pool or process-pool executor.

A :class:`TaskResult` pairs the task key with either a value or the raised
exception, plus the wall time and the worker that ran it.  Executors always
return results in **submission order**, never completion order — that single
invariant is what lets callers fan work out across workers and still produce
byte-identical aggregates.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping


class _PoolPayloadSentinel:
    """Placeholder for a batch's shared payload in task args/kwargs.

    Large objects every task of a batch shares (the pickled generator of a
    generation fan-out) used to ride inside each task's ``args``, so a
    process pool re-pickled them once **per task**.  Callers now pass the
    object once as ``run(tasks, payload=...)`` and put this sentinel where
    it belongs in the args; executors substitute the real payload — shared
    by reference on in-memory executors, shipped once per worker process
    via the pool initializer on process pools.

    Identity is class-based (``isinstance``), not object-based, so the
    sentinel survives pickling into process workers.
    """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "POOL_PAYLOAD"


#: The one sentinel value callers place in :class:`TaskSpec` args/kwargs.
POOL_PAYLOAD = _PoolPayloadSentinel()


def substitute_payload(task: "TaskSpec", payload: object) -> "TaskSpec":
    """Return ``task`` with every payload sentinel replaced by ``payload``."""
    args = tuple(payload if isinstance(item, _PoolPayloadSentinel) else item for item in task.args)
    kwargs = task.kwargs
    if kwargs and any(isinstance(value, _PoolPayloadSentinel) for value in kwargs.values()):
        kwargs = {
            key: payload if isinstance(value, _PoolPayloadSentinel) else value
            for key, value in kwargs.items()
        }
    if args == task.args and kwargs is task.kwargs:
        return task
    return TaskSpec(
        key=task.key, fn=task.fn, args=args, kwargs=kwargs, seed=task.seed, stage=task.stage
    )


def derive_seed(base: int, *parts: object) -> int:
    """Derive a stable per-task seed from a base seed and identifying parts.

    Unlike the builtin ``hash``, the derivation is stable across processes
    and interpreter invocations (``PYTHONHASHSEED`` does not affect it), so
    seeded campaigns reproduce bit-for-bit no matter where the task runs.
    """
    text = "|".join(str(part) for part in parts)
    return (base * 1_000_003 + zlib.crc32(text.encode("utf-8"))) % (2**31)


@dataclass(frozen=True)
class TaskSpec:
    """One deterministic unit of work."""

    key: str
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: Mapping[str, Any] | None = None
    seed: int | None = None
    stage: str | None = None

    def __call__(self) -> Any:
        return self.fn(*self.args, **(self.kwargs or {}))


@dataclass
class TaskResult:
    """Outcome of one task: a value or an error, plus instrumentation."""

    key: str
    value: Any = None
    error: BaseException | None = None
    duration: float = 0.0
    worker: str = ""
    seed: int | None = None
    extra: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> Any:
        """Return the value, re-raising the task's exception if it failed."""
        if self.error is not None:
            raise self.error
        return self.value


__all__ = ["TaskSpec", "TaskResult", "derive_seed", "POOL_PAYLOAD", "substitute_payload"]
