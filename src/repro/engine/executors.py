"""Pluggable task executors: serial, thread pool, process pool.

Every executor honours the same contract:

* results come back in **submission order**, regardless of completion order;
* a task that raises is captured as a :class:`TaskResult` with ``error`` set
  (it never aborts sibling tasks);
* each ``run()`` call owns its worker pool.  Pools are created per call and
  torn down afterwards, so nested fan-out (an experiment task fanning out
  per-handler generation tasks) can never deadlock on a shared saturated
  pool — the inner call simply gets fresh workers.

The thread-pool executor is the default for in-process work that shares
caches and backends; the process-pool executor exists for picklable
pure-function workloads (fuzz campaigns) that want real cores.
"""

from __future__ import annotations

import abc
import concurrent.futures
import os
import threading
import time
from typing import Sequence

from .tasks import TaskResult, TaskSpec


def execute_task(task: TaskSpec) -> TaskResult:
    """Run one task, capturing value/error/duration/worker.

    Module-level (rather than a method) so process pools can pickle it.
    """
    started = time.perf_counter()
    result = TaskResult(key=task.key, seed=task.seed)
    try:
        result.value = task()
    except Exception as exc:
        # Only Exception: KeyboardInterrupt/SystemExit must abort the whole
        # batch (Ctrl-C during an hours-long run), not become a task result.
        result.error = exc
    result.duration = time.perf_counter() - started
    result.worker = f"{os.getpid()}:{threading.current_thread().name}"
    return result


class Executor(abc.ABC):
    """Runs a batch of tasks and returns results in submission order."""

    name: str = "executor"

    @abc.abstractmethod
    def run(self, tasks: Sequence[TaskSpec]) -> list[TaskResult]:
        """Execute every task and return one result per task, in order."""


class SerialExecutor(Executor):
    """Runs tasks one after another on the calling thread (``jobs=1``)."""

    name = "serial"
    jobs = 1

    def run(self, tasks: Sequence[TaskSpec]) -> list[TaskResult]:
        return [execute_task(task) for task in tasks]


class ThreadPoolExecutor(Executor):
    """Runs tasks on a per-call pool of ``jobs`` threads."""

    name = "thread"

    def __init__(self, jobs: int = 4):
        self.jobs = max(1, jobs)

    def run(self, tasks: Sequence[TaskSpec]) -> list[TaskResult]:
        if not tasks:
            return []
        workers = min(self.jobs, len(tasks))
        with concurrent.futures.ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(execute_task, task) for task in tasks]
            return [future.result() for future in futures]


class ProcessPoolExecutor(Executor):
    """Runs tasks on a per-call pool of ``jobs`` processes.

    Tasks (callable + arguments) and their results must be picklable.  Worker
    processes do not share caches or usage meters with the parent, so this
    executor suits pure-function workloads such as fuzz campaigns.
    """

    name = "process"

    def __init__(self, jobs: int = 4):
        self.jobs = max(1, jobs)

    def run(self, tasks: Sequence[TaskSpec]) -> list[TaskResult]:
        if not tasks:
            return []
        workers = min(self.jobs, len(tasks))
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(execute_task, task) for task in tasks]
            return [future.result() for future in futures]


def create_executor(jobs: int = 1, kind: str = "thread", *, cap_to_cpus: bool = True) -> Executor:
    """Pick an executor for a ``jobs`` level (``jobs<=1`` is always serial).

    With ``cap_to_cpus`` (the default policy) the worker count is clamped to
    the host's CPU count: the engine's workloads are CPU-bound pure Python,
    so oversubscribing cores only adds scheduler thrash — on a single-core
    host ``jobs=4`` degenerates to the serial executor and the engine's win
    comes entirely from memoization.  Callers that want latency-hiding
    oversubscription (or a specific pool in tests) pass ``cap_to_cpus=False``
    or hand the engine an explicit executor.
    """
    if kind not in ("serial", "thread", "process"):
        raise ValueError(f"unknown executor kind {kind!r}; choose serial, thread or process")
    if cap_to_cpus:
        jobs = min(jobs, os.cpu_count() or 1)
    if jobs <= 1 or kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadPoolExecutor(jobs)
    return ProcessPoolExecutor(jobs)


__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "create_executor",
    "execute_task",
]
