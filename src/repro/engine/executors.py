"""Pluggable task executors: serial, thread pool, process pool.

Every executor honours the same contract:

* results come back in **submission order**, regardless of completion order;
* a task that raises is captured as a :class:`TaskResult` with ``error`` set
  (it never aborts sibling tasks);
* each ``run()`` call owns its worker pool.  Pools are created per call and
  torn down afterwards, so nested fan-out (an experiment task fanning out
  per-handler generation tasks) can never deadlock on a shared saturated
  pool — the inner call simply gets fresh workers.
* pool sizes are leased from a :class:`~repro.engine.budget.GlobalWorkerBudget`
  when one is attached, so nested fan-out at ``--jobs N`` cannot oversubscribe
  the host: an inner pool created while the budget is exhausted degrades to a
  single worker instead of stacking ``N`` more.

The thread-pool executor is the default for in-process work that shares
caches and backends; the process-pool executor exists for picklable
workloads (fuzz campaigns, handler-generation task payloads) that want real
cores.  ``shares_memory`` tells schedulers which of the two worlds they are
in: process workers see *copies* of the task arguments, so any state they
mutate (usage meters, recorded exchanges) must travel back in the task's
return value and be merged at join.
"""

from __future__ import annotations

import abc
import concurrent.futures
import os
import threading
import time
from contextlib import nullcontext
from typing import Sequence

from .budget import GlobalWorkerBudget, get_global_worker_budget
from .tasks import TaskResult, TaskSpec, substitute_payload

#: The once-per-worker shared payload a process pool's initializer installs.
#: Each worker process belongs to exactly one pool for its whole life (pools
#: are created per ``run()`` call), so a plain module global is safe there;
#: in-memory executors never use it — they substitute the payload into the
#: task specs directly, by reference.
_pool_payload: object = None


def _install_pool_payload(payload: object) -> None:
    """Process-pool initializer: unpickle the shared payload once per worker."""
    global _pool_payload
    _pool_payload = payload


def execute_task(task: TaskSpec) -> TaskResult:
    """Run one task, capturing value/error/duration/worker.

    Module-level (rather than a method) so process pools can pickle it.
    Payload sentinels left in the task's args (process-pool batches) are
    resolved against the worker's installed shared payload first.
    """
    started = time.perf_counter()
    result = TaskResult(key=task.key, seed=task.seed)
    try:
        result.value = substitute_payload(task, _pool_payload)()
    except Exception as exc:
        # Only Exception: KeyboardInterrupt/SystemExit must abort the whole
        # batch (Ctrl-C during an hours-long run), not become a task result.
        result.error = exc
    result.duration = time.perf_counter() - started
    result.worker = f"{os.getpid()}:{threading.current_thread().name}"
    return result


def _execute_task_with_slot(task: TaskSpec, budget: GlobalWorkerBudget) -> TaskResult:
    """Run one task with the worker thread marked as a budget-slot holder.

    Thread pools with a budget submit through this wrapper so a task that
    fans out a nested pool can donate the slot it holds while it blocks
    (see :meth:`GlobalWorkerBudget.reclaimed_for_nested`).
    """
    with budget.held_slot():
        return execute_task(task)


class Executor(abc.ABC):
    """Runs a batch of tasks and returns results in submission order."""

    name: str = "executor"
    #: Whether workers share the caller's address space.  Process pools set
    #: this to False: their tasks receive pickled copies of the arguments, so
    #: side effects on those copies are invisible to the parent and must be
    #: carried back through return values.
    shares_memory: bool = True

    @abc.abstractmethod
    def run(self, tasks: Sequence[TaskSpec], *, payload: object = None) -> list[TaskResult]:
        """Execute every task and return one result per task, in order.

        ``payload`` is an optional object shared by the whole batch, which
        tasks reference through the :data:`~repro.engine.tasks.POOL_PAYLOAD`
        sentinel in their args/kwargs.  In-memory executors hand it to
        tasks by reference; a process pool pickles it **once per worker**
        (via the pool initializer) instead of once per task.
        """


class SerialExecutor(Executor):
    """Runs tasks one after another on the calling thread (``jobs=1``)."""

    name = "serial"
    jobs = 1

    def run(self, tasks: Sequence[TaskSpec], *, payload: object = None) -> list[TaskResult]:
        if payload is not None:
            tasks = [substitute_payload(task, payload) for task in tasks]
        return [execute_task(task) for task in tasks]


class _PoolExecutor(Executor):
    """Shared machinery for the pool executors: sizing, leasing, ordering."""

    pool_factory: type

    def __init__(self, jobs: int = 4, *, budget: GlobalWorkerBudget | None = None):
        self.jobs = max(1, jobs)
        self.budget = budget

    def _pool_kwargs(self, payload: object) -> dict:
        """Extra pool-construction kwargs (process pools install the payload)."""
        return {}

    def run(self, tasks: Sequence[TaskSpec], *, payload: object = None) -> list[TaskResult]:
        if not tasks:
            return []
        if payload is not None and self.shares_memory:
            tasks = [substitute_payload(task, payload) for task in tasks]
        wanted = min(self.jobs, len(tasks))
        if self.budget is not None:
            reclaim = self.budget.reclaimed_for_nested()
            lease = self.budget.workers(wanted)
        else:
            reclaim = nullcontext()
            lease = nullcontext(wanted)
        with reclaim:
            with lease as workers:
                with self.pool_factory(max_workers=workers, **self._pool_kwargs(payload)) as pool:
                    if self.shares_memory and self.budget is not None:
                        futures = [
                            pool.submit(_execute_task_with_slot, task, self.budget)
                            for task in tasks
                        ]
                    else:
                        futures = [pool.submit(execute_task, task) for task in tasks]
                    return [future.result() for future in futures]


class ThreadPoolExecutor(_PoolExecutor):
    """Runs tasks on a per-call pool of up to ``jobs`` threads."""

    name = "thread"
    pool_factory = concurrent.futures.ThreadPoolExecutor


class ProcessPoolExecutor(_PoolExecutor):
    """Runs tasks on a per-call pool of up to ``jobs`` processes.

    Tasks (callable + arguments) and their results must be picklable.  Worker
    processes do not share caches or usage meters with the parent — mutable
    outcomes must be returned from the task and merged at join (see
    :mod:`repro.core.tasks` for the generation payloads that do this).
    """

    name = "process"
    shares_memory = False
    pool_factory = concurrent.futures.ProcessPoolExecutor

    def _pool_kwargs(self, payload: object) -> dict:
        # The shared payload pickles once per worker through the pool
        # initializer, instead of once per task inside every task's args.
        if payload is None:
            return {}
        return {"initializer": _install_pool_payload, "initargs": (payload,)}


def create_executor(
    jobs: int = 1,
    kind: str = "thread",
    *,
    cap_to_cpus: bool = True,
    budget: GlobalWorkerBudget | None = None,
) -> Executor:
    """Pick an executor for a ``jobs`` level (``jobs<=1`` is always serial).

    With ``cap_to_cpus`` (the default policy) the pool leases its workers
    from the process-wide :class:`GlobalWorkerBudget`, which is sized to the
    host's CPU count: the engine's workloads are CPU-bound pure Python, so
    oversubscribing cores only adds scheduler thrash, and nested pools at
    ``--jobs N`` would otherwise stack ``N`` workers per level.  Callers that
    want latency-hiding oversubscription (or a deterministic pool shape in
    tests) pass ``cap_to_cpus=False`` or hand the engine an explicit
    executor; an explicit ``budget`` overrides the global one.
    """
    if kind not in ("serial", "thread", "process"):
        raise ValueError(f"unknown executor kind {kind!r}; choose serial, thread or process")
    if jobs <= 1 or kind == "serial":
        return SerialExecutor()
    if budget is None and cap_to_cpus:
        budget = get_global_worker_budget()
    if kind == "thread":
        return ThreadPoolExecutor(jobs, budget=budget)
    return ProcessPoolExecutor(jobs, budget=budget)


__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "create_executor",
    "execute_task",
]
