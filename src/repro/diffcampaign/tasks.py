"""Task handlers for differential-campaign cells and cross-config diffs.

Importing this module registers three handler kinds into the scheduler's
:data:`~repro.orchestrator.scheduler.TASK_HANDLERS` registry — the
scheduler's ``EXTENSION_HANDLER_MODULES`` table points process-pool workers
here, so a payload of kind ``cell_fuzz`` / ``cell_report`` / ``diff``
self-registers wherever it lands.

Cell outputs are canonical-JSON dicts (sorted label/bug lists, counts,
digests) — the same store/pickle contract as the built-in campaign kinds,
so cells cache, reuse and cross process boundaries byte-identically.  The
terminal diff handlers are pure functions of their upstream cell reports:
no context, no kernel, just set algebra over the recorded labels.
"""

from __future__ import annotations

from ..errors import CampaignPlanError
from ..kconfig import config_preset, prune_coverage_space
from ..kernel.coverage import CoverageBitmap
from ..orchestrator.scheduler import TASK_HANDLERS, TaskPayload
from .plan import cell_fuzz_id


def _context(payload: TaskPayload):
    from ..experiments.context import shared_context

    return shared_context(payload.preset, None, None, None, None, payload.store_spec)


def _loaded_handlers(kernel, preset) -> set[str]:
    """Handler names (fops/proto_ops variables) the cell's config loads."""
    return {
        record.handler_name
        for record in kernel.loaded_records(preset.kernel_config())
    }


def _run_cell_fuzz(payload: TaskPayload) -> dict:
    """Fuzz one config cell: loaded handlers only, config-pruned coverage.

    The merged Syzkaller+KernelGPT corpus is filtered to the handlers the
    cell's config loads, fuzzed with the shared seed/budget, and the
    resulting coverage is re-projected onto the cell's pruned space — so the
    recorded ``space_digest`` pins which config the labels mean, and bitmaps
    rebuilt from two different cells refuse to mix.
    """
    from ..fuzzer import run_campaign
    from ..syzlang import SpecCorpus

    params = payload.params_dict()
    cell = params["cell"]
    preset = config_preset(cell)
    ctx = _context(payload)
    kernel = ctx.kernel
    loaded = _loaded_handlers(kernel, preset)
    merged = ctx.syzkaller_corpus.merge_corpus(ctx.kernelgpt_corpus())
    corpus = SpecCorpus(f"cell-{cell}")
    for handler, suite in merged:
        if handler in loaded:
            corpus.add(handler, suite)
    campaign = run_campaign(
        kernel, corpus.flatten(f"cell-{cell}"), ctx.config.seed, params["budget"]
    )
    space = prune_coverage_space(kernel, preset)
    bitmap = CoverageBitmap.from_labels(space, sorted(campaign.coverage.labels()))
    return {
        "cell": cell,
        "config_digest": params["config_digest"],
        "space_digest": space.digest,
        "space_size": space.size,
        "handlers": len(corpus),
        "programs": campaign.executed_programs,
        "calls": campaign.executed_calls,
        "coverage": sorted(bitmap.labels()),
        "extras": sorted(bitmap.extras),
        "bugs": sorted(set(campaign.crash_log.bug_ids())),
    }


def _run_cell_report(payload: TaskPayload) -> dict:
    """Render one cell: fuzz outcome plus the cell's spec-validity slice."""
    params = payload.params_dict()
    cell = params["cell"]
    preset = config_preset(cell)
    ctx = _context(payload)
    fuzz = payload.upstream_dict()[cell_fuzz_id(cell)]
    loaded = _loaded_handlers(ctx.kernel, preset)
    run = ctx.generation_run
    targeted = sorted(handler for handler in run.results if handler in loaded)
    valid = sum(1 for handler in targeted if run.results[handler].valid)
    covered = len(fuzz["coverage"])
    lines = [
        f"Config cell {cell} (config {fuzz['config_digest'][:12]})",
        f"  coverage space: {fuzz['space_size']} blocks "
        f"(digest {fuzz['space_digest'][:12]})",
        f"  fuzz: {fuzz['programs']} programs, {fuzz['calls']} calls, "
        f"{covered} blocks covered, {len(fuzz['bugs'])} unique bugs",
        f"  specs: {valid}/{len(targeted)} generated suites valid "
        f"for loaded handlers",
    ]
    return {
        "cell": cell,
        "config_digest": fuzz["config_digest"],
        "space_digest": fuzz["space_digest"],
        "space_size": fuzz["space_size"],
        "coverage": fuzz["coverage"],
        "bugs": fuzz["bugs"],
        "generated": len(targeted),
        "valid": valid,
        "text": "\n".join(lines),
    }


def _percent(valid: int, generated: int) -> float:
    return round(100.0 * valid / generated, 1) if generated else 0.0


def _diff_coverage(cells: list[dict]) -> dict:
    covered = {cell["cell"]: set(cell["coverage"]) for cell in cells}
    shared = set.intersection(*covered.values())
    unique = {
        name: sorted(labels - set.union(*(covered[other] for other in covered if other != name)))
        for name, labels in covered.items()
    }
    lines = [f"Differential coverage over {len(cells)} config cells"]
    lines.append(f"  shared baseline: {len(shared)} blocks covered in every cell")
    for cell in cells:
        name = cell["cell"]
        lines.append(
            f"  {name}: {len(covered[name])} covered in a "
            f"{cell['space_size']}-block space, {len(unique[name])} unique"
        )
    return {
        "shared": len(shared),
        "unique": {name: len(labels) for name, labels in unique.items()},
        "text": "\n".join(lines),
    }


def _diff_bugs(cells: list[dict]) -> dict:
    found = {cell["cell"]: set(cell["bugs"]) for cell in cells}
    shared = sorted(set.intersection(*found.values()))
    unique = {
        name: sorted(bugs - set.union(*(found[other] for other in found if other != name)))
        for name, bugs in found.items()
    }
    lines = [f"Differential bugs over {len(cells)} config cells"]
    lines.append(f"  shared: {', '.join(shared) if shared else '(none)'}")
    for cell in cells:
        name = cell["cell"]
        only = unique[name]
        lines.append(
            f"  {name}: {len(found[name])} bugs, {len(only)} unique"
            + (f" ({', '.join(only)})" if only else "")
        )
    return {
        "shared": shared,
        "unique": unique,
        "text": "\n".join(lines),
    }


def _diff_validity(cells: list[dict]) -> dict:
    rows = []
    baseline = _percent(cells[0]["valid"], cells[0]["generated"])
    lines = [f"Spec validity by config cell (delta vs {cells[0]['cell']})"]
    for cell in cells:
        rate = _percent(cell["valid"], cell["generated"])
        delta = round(rate - baseline, 1)
        rows.append(
            {
                "cell": cell["cell"],
                "valid": cell["valid"],
                "generated": cell["generated"],
                "rate": rate,
                "delta": delta,
            }
        )
        lines.append(
            f"  {cell['cell']}: {cell['valid']}/{cell['generated']} valid "
            f"({rate:.1f}%, {delta:+.1f} pts)"
        )
    return {"rows": rows, "text": "\n".join(lines)}


_DIFF_ASPECTS = {
    "coverage": _diff_coverage,
    "bugs": _diff_bugs,
    "validity": _diff_validity,
}


def _run_diff(payload: TaskPayload) -> dict:
    """One cross-config comparison aspect over every cell report."""
    aspect = payload.params_dict()["aspect"]
    render = _DIFF_ASPECTS.get(aspect)
    if render is None:
        raise CampaignPlanError(
            f"unknown diff aspect {aspect!r}; valid: {sorted(_DIFF_ASPECTS)}"
        )
    cells = sorted(payload.upstream_dict().values(), key=lambda cell: cell["cell"])
    result = render(cells)
    return {"aspect": aspect, "cells": [cell["cell"] for cell in cells], **result}


#: Imported-for-effect registration: the scheduler dispatches these kinds
#: here (see EXTENSION_HANDLER_MODULES).
TASK_HANDLERS.setdefault("cell_fuzz", _run_cell_fuzz)
TASK_HANDLERS.setdefault("cell_report", _run_cell_report)
TASK_HANDLERS.setdefault("diff", _run_diff)


__all__: list[str] = []
