"""Differential-campaign plans: one orchestrator sub-DAG per config cell.

A differential campaign asks "what does each kernel configuration buy?":
the same generation pipeline feeds one *cell* per config preset, each cell
fuzzing only the handlers its config loads and measuring coverage against
its config-pruned space, then terminal diff-report tasks compare the cells
— coverage and bugs unique to each cell, the shared baseline, and per-cell
spec-validity deltas.

The plan reuses the campaign orchestrator wholesale: the shared prefix
(``generate`` → ``validate``) is built with *identical* task ids and
parameters to :func:`~repro.orchestrator.plan.build_campaign_plan`'s, so a
warm artifact store serves the config-invariant prefix as ``task_reused``
regardless of which cells a run asks for; only the config-dependent cone —
``fuzz:cell:*`` → ``report:cell:*`` → ``diff:*`` — re-executes per cell.
Each cell's tasks carry the preset's canonical config digest as a
parameter, so two cells over different presets can never collide in the
store even when everything upstream of them agrees.
"""

from __future__ import annotations

from ..errors import CampaignPlanError
from ..experiments.config import ExperimentConfig
from ..kconfig import ConfigPreset
from ..orchestrator.plan import CampaignPlan, CampaignTask

#: The cross-config comparison aspects, in rendering order.
DIFF_ASPECTS = ("coverage", "bugs", "validity")


def cell_fuzz_id(cell: str) -> str:
    return f"fuzz:cell:{cell}"


def cell_report_id(cell: str) -> str:
    return f"report:cell:{cell}"


def diff_task_id(aspect: str) -> str:
    return f"diff:{aspect}"


def build_diff_plan(
    config: ExperimentConfig,
    presets: list[ConfigPreset],
    *,
    retries: int = 1,
    fuzz_budget: int = 200,
) -> CampaignPlan:
    """The differential campaign over ``presets`` (the config cells).

    Layout: shared ``generate`` → ``validate`` prefix (byte-identical task
    identity to the standard campaign plan), then per cell — in sorted
    preset-name order — a ``cell_fuzz`` task hanging off ``validate`` and a
    ``cell_report`` task hanging off the fuzz, and finally one ``diff`` task
    per :data:`DIFF_ASPECTS` depending on every cell report.
    """
    if len(presets) < 2:
        raise CampaignPlanError(
            f"a differential campaign needs at least 2 config cells, got {len(presets)}"
        )
    by_name = {preset.name: preset for preset in presets}
    if len(by_name) != len(presets):
        names = [preset.name for preset in presets]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        raise CampaignPlanError(f"duplicate config cells {duplicates}")

    tasks = [
        CampaignTask.make("generate", "stage", {"stage": "generate"}, retries=retries),
        CampaignTask.make(
            "validate", "stage", {"stage": "validate"}, depends_on=("generate",), retries=retries
        ),
    ]
    report_ids = []
    for name in sorted(by_name):
        preset = by_name[name]
        fuzz_id = cell_fuzz_id(name)
        report_id = cell_report_id(name)
        tasks.append(
            CampaignTask.make(
                fuzz_id,
                "cell_fuzz",
                {"cell": name, "config_digest": preset.digest(), "budget": fuzz_budget},
                depends_on=("validate",),
                retries=retries,
            )
        )
        tasks.append(
            CampaignTask.make(
                report_id,
                "cell_report",
                {"cell": name, "config_digest": preset.digest()},
                depends_on=(fuzz_id,),
                retries=retries,
            )
        )
        report_ids.append(report_id)
    for aspect in DIFF_ASPECTS:
        tasks.append(
            CampaignTask.make(
                diff_task_id(aspect),
                "diff",
                {"aspect": aspect},
                depends_on=tuple(report_ids),
                retries=retries,
            )
        )
    return CampaignPlan(tasks, config, name="diffcampaign")


__all__ = [
    "DIFF_ASPECTS",
    "build_diff_plan",
    "cell_fuzz_id",
    "cell_report_id",
    "diff_task_id",
]
