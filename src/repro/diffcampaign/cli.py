"""``kernelgpt-repro diff`` — differential campaigns across config cells.

The diff subcommand runs one sub-DAG per named config preset through the
campaign scheduler and prints, in deterministic order, each cell's report
followed by the three cross-config diff reports (coverage, bugs, validity).
stdout is the contract — byte-identical across ``--jobs``/``--executor``
choices and across cold vs warm stores (determinism rule 12); progress and
the run summary go to stderr and the event log.

With ``--store DIR``, the config-invariant prefix (``generate`` →
``validate``) and any unchanged cells are served as ``task_reused`` on a
warm run, so adding a config to ``--configs`` re-executes only the new
cell and the terminal diffs.  The combined diff report is additionally
recorded under a ``diff-report`` store key.  ``config_cell_planned`` /
``config_cell_finished`` events bracket each cell in the event log.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..engine import ExecutionEngine
from ..errors import CampaignError
from ..kconfig import CONFIG_PRESETS, config_preset
from ..orchestrator.cli import _progress
from ..orchestrator.events import EventLog
from ..orchestrator.plan import CAMPAIGN_SCHEMA
from ..orchestrator.scheduler import CampaignScheduler
from ..store.keys import StoreKey
from .plan import DIFF_ASPECTS, build_diff_plan, cell_report_id, diff_task_id

# Handler registration for the coordinating process; workers self-register
# via the scheduler's EXTENSION_HANDLER_MODULES table.
from . import tasks as _tasks  # noqa: F401


def diff_report_key(cells: list[str], digests: list[str]) -> StoreKey:
    """Store key of the combined diff report for one cell set."""
    parts = [CAMPAIGN_SCHEMA]
    for cell, digest in zip(cells, digests):
        parts.append(cell)
        parts.append(digest)
    return StoreKey("diff-report", tuple(parts))


def diff_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="kernelgpt-repro diff",
        description="Run a differential campaign: one cell per config preset, "
                    "plus cross-config diff reports",
    )
    parser.add_argument("--configs", required=True, metavar="A,B,...",
                        help="comma-separated config presets (at least 2); "
                             f"choices: {', '.join(sorted(CONFIG_PRESETS))}")
    parser.add_argument("--preset", choices=["quick", "paper"], default="quick")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="workers per campaign wave (default: 1)")
    parser.add_argument("--executor", choices=["serial", "thread", "process"], default="thread",
                        help="worker pool flavour for --jobs > 1 (default: thread)")
    parser.add_argument("--store", type=Path, default=None, metavar="DIR",
                        help="artifact store for digest-keyed task reuse: the "
                             "config-invariant prefix and unchanged cells load "
                             "instead of re-executing")
    parser.add_argument("--events", type=Path, default=None, metavar="FILE",
                        help="append the schema'd JSONL event log to FILE")
    parser.add_argument("--output", type=Path, default=None, metavar="DIR",
                        help="directory to write per-cell and diff text files")
    parser.add_argument("--retries", type=int, default=1,
                        help="retry budget per task (default: 1)")
    parser.add_argument("--fuzz-budget", type=int, default=200,
                        help="program budget per config cell (default: 200)")
    args = parser.parse_args(argv)

    names = sorted({name.strip() for name in args.configs.split(",") if name.strip()})
    presets = [config_preset(name) for name in names]

    from ..experiments.config import paper, quick

    config = paper() if args.preset == "paper" else quick()
    plan = build_diff_plan(
        config, presets, retries=args.retries, fuzz_budget=args.fuzz_budget
    )
    store = None
    if args.store is not None:
        from ..store import ArtifactStore

        store = ArtifactStore(args.store)
    engine = ExecutionEngine(jobs=args.jobs, kind=args.executor)
    events = EventLog(args.events, mirror=_progress)
    try:
        for preset in presets:
            events.emit(
                "config_cell_planned", cell=preset.name, config_digest=preset.digest()
            )
        scheduler = CampaignScheduler(
            plan, engine, preset=args.preset, store=store, events=events
        )
        result = scheduler.run()
        for preset in presets:
            outcome = result.outcomes.get(cell_report_id(preset.name))
            if outcome is not None:
                events.emit(
                    "config_cell_finished",
                    cell=preset.name,
                    config_digest=preset.digest(),
                    output_digest=outcome.output_digest,
                )
    finally:
        events.close()

    texts: list[tuple[str, str]] = []
    for preset in presets:
        outcome = result.outcomes.get(cell_report_id(preset.name))
        if outcome is not None:
            texts.append((f"cell-{preset.name}", outcome.output["text"]))
    for aspect in DIFF_ASPECTS:
        outcome = result.outcomes.get(diff_task_id(aspect))
        if outcome is not None:
            texts.append((f"diff-{aspect}", outcome.output["text"]))
    for name, text in texts:
        print(text)
        print()
        if args.output is not None:
            args.output.mkdir(parents=True, exist_ok=True)
            (args.output / f"{name}.txt").write_text(text + "\n")

    if store is not None and all(
        diff_task_id(aspect) in result.outcomes for aspect in DIFF_ASPECTS
    ):
        combined = {
            "cells": names,
            "config_digests": [preset.digest() for preset in presets],
            "aspects": {
                aspect: result.outcomes[diff_task_id(aspect)].output
                for aspect in DIFF_ASPECTS
            },
        }
        key = diff_report_key(names, combined["config_digests"])
        if key not in store:
            store.save(key, combined)

    print(
        f"[diff] {len(names)} cell(s), {len(plan)} task(s): "
        f"{result.executed} executed, {result.reused} reused, "
        f"{len(result.failures)} failed, {len(result.skipped)} skipped "
        f"in {result.wall:.1f}s",
        file=sys.stderr,
    )
    try:
        result.raise_for_status()
    except CampaignError as error:
        print(f"diff campaign failed: {error}", file=sys.stderr)
        return 1
    return 0


__all__ = ["diff_main", "diff_report_key"]
