"""Differential campaigns: one orchestrated sub-DAG per kernel config cell.

Built on :mod:`repro.kconfig` (the config cells and their pruned coverage
spaces) and :mod:`repro.orchestrator` (the DAG scheduler, event log and
digest-keyed task reuse).  See :func:`build_diff_plan` for the DAG layout
and :func:`repro.diffcampaign.cli.diff_main` for the CLI face.
"""

from .plan import DIFF_ASPECTS, build_diff_plan, cell_fuzz_id, cell_report_id, diff_task_id

__all__ = [
    "DIFF_ASPECTS",
    "build_diff_plan",
    "cell_fuzz_id",
    "cell_report_id",
    "diff_task_id",
]
