"""The queue-driven job service: admission, workers, coalesced LLM traffic.

:class:`JobService` is the long-running front door over the existing
engine.  It owns one shared :class:`~repro.experiments.EvaluationContext`
(kernel, extractor, corpus built once and shared read-only), one backend —
typically the context's analyst pool — and one
:class:`~repro.llm.BatchCoalescer` in front of it.  Every submitted
:class:`~repro.service.jobs.Job` runs on a service worker thread; each
job's LLM traffic goes through a per-job
:class:`~repro.llm.CoalescingBackend` handle stamped with the job's tenant
(budget accounting) and job id (statistics), so concurrent jobs' wavefronts
merge into single ``complete_batch`` calls per pool member while per-job
and per-tenant accounting stay exact.

Admission is explicit and typed: worker threads are *admitted* (not leased)
from a :class:`~repro.engine.GlobalWorkerBudget` at construction, a full
queue refuses with :class:`~repro.errors.ServiceSaturated`, and tenant
exhaustion surfaces as :class:`~repro.errors.TenantBudgetExceeded` from the
job that overran.

Determinism (rule 8, DESIGN.md): with one job in flight the service flips
the coalescer eager, so each submission flushes inline and alone — the
backend sees exactly the CLI path's batch sequence, and the job's output is
byte-identical to the CLI run.  With many jobs in flight, merging changes
round-trip counts only, never completions (backends are pure functions of
the prompt), so every job's output is *still* byte-identical to its solo
run — coalescing is a throughput optimization, not a semantic one.
"""

from __future__ import annotations

import queue
import threading
import time

from ..engine import ExecutionEngine, GlobalWorkerBudget
from ..errors import ServiceSaturated, TransientBackendError
from ..experiments.config import ExperimentConfig
from ..experiments.context import EvaluationContext
from ..kernel import KernelCodebase
from ..llm import BatchCoalescer, CoalescingBackend, LLMBackend
from .jobs import Job, JobEvent, JobHandle, JobResult


class JobService:
    """Runs many concurrent pipeline jobs over one shared, coalesced backend."""

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        *,
        workers: int = 2,
        max_pending: int | None = None,
        coalesce: bool = True,
        window: float = 0.01,
        max_batch: int = 64,
        engine_jobs: int = 1,
        executor: str = "thread",
        tenant_budgets: dict[str, int] | None = None,
        backend: LLMBackend | None = None,
        budget: GlobalWorkerBudget | None = None,
        kernel: KernelCodebase | None = None,
        store: "object | None" = None,
        job_retries: int = 0,
        events: "object | None" = None,
    ):
        #: Persistent artifact store (a path or an ArtifactStore): the
        #: service-restart warm cache.  The shared context engine and every
        #: per-job engine get their *own* StoreBinding over the one store,
        #: so JobResult hit rates are attributable per job while artifacts
        #: written by one job (or a previous service process) hydrate the
        #: next.
        self._store = None
        context_engine = None
        if store is not None:
            from ..store import ArtifactStore, StoreBinding

            self._store = store if isinstance(store, ArtifactStore) else ArtifactStore(store)
            context_engine = ExecutionEngine(jobs=1, store=StoreBinding(self._store))
        self.context = EvaluationContext(config, kernel, engine=context_engine)
        inner = backend if backend is not None else self.context.build_analysis_backend()
        # Experiments run inside jobs must share the service's front door,
        # not build private analysts.
        self.context.analysis_backend = inner
        self.backend = inner
        #: Default transient-fault retry budget for jobs that leave
        #: ``Job.retries`` unset; permanent faults always fail fast.
        self.job_retries = max(0, job_retries)
        #: Optional :class:`~repro.orchestrator.events.EventLog`: backend
        #: retries, breaker transitions, job retries and observer failures
        #: are emitted here (the serve CLI passes its ``--events`` log).
        self.events = events
        if events is not None:
            from ..llm import wire_resilience_events

            wire_resilience_events(
                inner, lambda event_type, fields: events.emit(event_type, **fields)
            )
        #: ``coalesce=False`` still routes through a coalescer — in drain
        #: mode, where every submission flushes inline and alone.  That
        #: keeps tenant budgets, admission errors and statistics identical
        #: between the two modes; only the merging (and hence the backend
        #: round-trip count) differs, which is exactly what the benchmark
        #: wants to isolate.
        self.coalescer = BatchCoalescer(
            inner, window=window, max_batch=max_batch, drain=not coalesce
        )
        if events is not None:
            # A broken flush observer is degraded serving, not a silent
            # no-op: it lands in the event log as an observer_error record.
            self.coalescer.on_observer_error = lambda error: events.emit(
                "observer_error", error=f"{type(error).__name__}: {error}"
            )
        for tenant, limit in (tenant_budgets or {}).items():
            self.coalescer.set_tenant_budget(tenant, limit)
        self.engine_jobs = max(1, engine_jobs)
        self.executor = executor
        self.max_pending = max_pending
        # Serving threads are admitted, not silently degraded: a host whose
        # worker budget cannot fund even one serving thread should refuse
        # loudly (ServiceSaturated) rather than run a zero-throughput
        # service.  Serving threads spend their lives blocked on coalescer
        # events, so the service defaults to its own budget sized to
        # ``workers`` instead of competing with compute pools for the
        # CPU-count default.
        self._budget = budget or GlobalWorkerBudget(limit=workers)
        self._granted = self._budget.admit(workers, required=1)
        self.workers = self._granted
        self._queue: queue.Queue[tuple[str, Job, JobHandle] | None] = queue.Queue()
        self._lock = threading.Lock()
        self._pending = 0
        self._running = 0
        self._submitted = 0
        self._closed = False
        self._terminated = False
        self._handles: dict[str, JobHandle] = {}
        self._threads = [
            threading.Thread(target=self._worker_loop, name=f"job-worker-{index}", daemon=True)
            for index in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()
        self._sync_load()

    # -------------------------------------------------------------- admission
    def submit(self, job: Job) -> JobHandle:
        """Admit one job; returns its handle immediately.

        Raises :class:`~repro.errors.ServiceSaturated` when the service is
        closed or ``max_pending`` jobs are already queued or running.
        """
        with self._lock:
            if self._closed:
                raise ServiceSaturated("job service is closed")
            if self.max_pending is not None and self._pending >= self.max_pending:
                raise ServiceSaturated(
                    f"job queue full: {self._pending} jobs pending, limit {self.max_pending}",
                    limit=self.max_pending,
                    pending=self._pending,
                )
            self._submitted += 1
            self._pending += 1
            job_id = f"job-{self._submitted:04d}"
        handle = JobHandle(job_id, job)
        self._handles[job_id] = handle
        self._queue.put((job_id, job, handle))
        return handle

    def submit_all(self, jobs: "list[Job]") -> "list[JobHandle]":
        """Admit several jobs in order (all-or-nothing is NOT implied)."""
        return [self.submit(job) for job in jobs]

    def _sync_load(self) -> None:
        """Propagate the in-flight job count to the coalescer's heuristics.

        With ≤1 job running the coalescer goes eager (inline, solo flushes:
        the CLI-identical schedule); with more, the running count becomes
        the expected-clients hint so lock-stepped wavefronts flush as soon
        as every active job has submitted, not after the full window.
        """
        with self._lock:
            running = self._running
        self.coalescer.set_expected(running)
        self.coalescer.set_eager(running <= 1)

    # ---------------------------------------------------------------- workers
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            job_id, job, handle = item
            with self._lock:
                self._running += 1
            self._sync_load()
            started = time.perf_counter()
            job_backend = CoalescingBackend(
                self.coalescer, tenant=job.tenant, client=job_id
            )
            result = JobResult(
                job_id=job_id, label=job.describe(), kind=job.kind, tenant=job.tenant
            )

            def emit(stage: str, detail: str) -> None:
                event = JobEvent(job_id, stage, detail, time.perf_counter() - started)
                result.events.append(event)
                handle._emit(event)

            # Transient faults that escape the backend-level retry layer
            # may retry the *job*; permanent faults and unclassified
            # errors fail it on first occurrence.  Each attempt gets a
            # fresh engine (clean memo caches) but shares the job backend,
            # whose converging fault schedule and budget accounting span
            # attempts.
            retry_budget = job.retries if job.retries is not None else self.job_retries
            attempt = 0
            while True:
                attempt += 1
                job_store = None
                if self._store is not None:
                    from ..store import StoreBinding

                    job_store = StoreBinding(self._store)
                job_engine = ExecutionEngine(
                    jobs=self.engine_jobs, kind=self.executor, store=job_store
                )
                try:
                    result.text = self._run_job(job, job_backend, job_engine, emit)
                    result.error = None
                    break
                except TransientBackendError as error:
                    result.error = error
                    if attempt > retry_budget:
                        break
                    emit("retry", f"attempt {attempt} hit a transient fault: {error}")
                    if self.events is not None:
                        self.events.emit(
                            "job_retried",
                            job_id=job_id,
                            attempt=attempt,
                            error=f"{type(error).__name__}: {error}",
                        )
                except BaseException as error:  # noqa: BLE001 - delivered via the handle
                    result.error = error
                    break
            result.attempts = attempt
            result.duration = time.perf_counter() - started
            result.queries = job_backend.usage.queries
            result.cache = job_engine.cache_stats()
            client = self.coalescer.client_stats(job_id)
            result.coalescing = {
                "queries_saved_by_coalescing": client["queries_saved_by_coalescing"],
                "submissions": client["submissions"],
                "requests": client["requests"],
                "flushes_joined": client["flushes_joined"],
                "by_kind": self.coalescer.stats()["by_kind"],
            }
            with self._lock:
                self._running -= 1
                self._pending -= 1
            self._sync_load()
            handle._finish(result)

    def _run_job(self, job: Job, backend: LLMBackend, engine: ExecutionEngine, emit) -> str:
        """Dispatch one job to its pipeline; returns the rendered text."""
        if job.kind in ("generation", "repair"):
            return self._run_generation(job, backend, engine, emit)
        if job.kind == "fuzz":
            return self._run_fuzz(job, emit)
        return self._run_experiment(job, backend, engine, emit)

    def _run_generation(self, job: Job, backend, engine, emit) -> str:
        # Repair jobs are generation jobs that lean on the repair stage:
        # they default to the transactional protocol (one routed batch per
        # round) unless the job pins a mode.
        repair_mode = job.repair_mode or ("transactional" if job.kind == "repair" else None)
        gpt = self.context.kernelgpt.clone(backend=backend, engine=engine)
        handlers = job.handlers or tuple(self.context.selection.all_handlers)
        blocks: list[str] = []
        for handler in handlers:
            generated = gpt.generate_for_handler(handler, engine=engine, repair_mode=repair_mode)
            emit(
                "handler",
                f"{handler} valid={generated.valid} syscalls={generated.syscall_count} "
                f"repaired={generated.repaired}",
            )
            header = (
                f"== {handler} (valid={generated.valid}, "
                f"syscalls={generated.syscall_count}, repaired={generated.repaired})"
            )
            if job.kind == "repair":
                header += (
                    f" [mode={generated.repair_mode} rounds={generated.repair_rounds_used}"
                    f" repair_queries={generated.repair_queries}"
                    f" repair_llm_calls={generated.repair_llm_calls}]"
                )
            blocks.append(f"{header}\n{generated.suite_text()}")
        return "\n".join(blocks)

    def _run_fuzz(self, job: Job, emit) -> str:
        from ..fuzzer import run_campaign

        if job.suite == "syzkaller":
            suite = self.context.syzkaller_corpus.flatten()
        else:
            generated = self.context.kernelgpt.generate_for_handler(job.suite)
            suite = generated.suite
        emit("suite", f"{suite.name} syscalls={len(suite)}")
        campaign = run_campaign(self.context.kernel, suite, job.seed, job.budget_programs)
        emit("campaign", f"programs={campaign.executed_programs}")
        return (
            f"fuzz {suite.name} seed={job.seed} programs={campaign.executed_programs} "
            f"coverage={campaign.coverage_count} crashes={campaign.unique_crashes} "
            f"corpus={campaign.corpus_size}\n"
        )

    def _run_experiment(self, job: Job, backend, engine, emit) -> str:
        from ..experiments.runner import run_experiment

        if not job.experiment:
            raise ValueError("experiment jobs need Job.experiment set")
        # A fresh context per experiment job, sharing the service kernel but
        # carrying the job's backend/engine: experiment artifacts (the
        # generation run, baselines) are then attributed to the job's tenant
        # and coalesced with other jobs' traffic.
        ctx = EvaluationContext(
            self.context.config,
            self.context.kernel,
            engine=engine,
            analysis_backend=backend,
        )
        table = run_experiment(job.experiment, ctx)
        emit("experiment", job.experiment)
        # The CLI writes ``render() + "\n"`` per experiment file; matching
        # it exactly is what lets CI diff service output against CLI output.
        return table.render() + "\n"

    # --------------------------------------------------------------- lifecycle
    def stats(self) -> dict:
        """Service-level accounting: load, budget, coalescer, tenants."""
        with self._lock:
            load = {
                "workers": self.workers,
                "pending": self._pending,
                "running": self._running,
                "submitted": self._submitted,
            }
        return {
            **load,
            "budget": self._budget.stats(),
            "coalescer": self.coalescer.stats(),
            "tenants": self.coalescer.tenant_usage(),
        }

    def drain(self, timeout: float | None = 30.0) -> bool:
        """Graceful shutdown, phase one: refuse new jobs, finish in-flight ones.

        Marks the service closed (submissions raise
        :class:`~repro.errors.ServiceSaturated` immediately) and waits for
        every queued and running job to deliver its result.  Returns True
        once the service is idle, False if ``timeout`` elapsed first — the
        caller decides whether to :meth:`close` anyway.  Idempotent, and
        :meth:`close` after a successful drain is instantaneous.
        """
        with self._lock:
            self._closed = True
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                if self._pending == 0:
                    return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.005)

    def close(self) -> None:
        """Stop accepting work, drain the workers, release the budget."""
        with self._lock:
            if self._terminated:
                return
            self._terminated = True
            self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=30.0)
        self.coalescer.close()
        self._budget.release(self._granted)

    def __enter__(self) -> "JobService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["JobService"]
