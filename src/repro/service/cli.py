"""``kernelgpt-repro serve`` — drive the job service from the command line.

A serve invocation submits every ``--job`` up front, streams events as
handlers land, then prints each job's output grouped in submission order
(deterministic whatever the completion order was).  Experiment jobs with
``--output`` write the same ``<experiment>.txt`` files as the batch CLI,
byte for byte — that equivalence is CI-checked.

Job syntax: ``--job [TENANT=]KIND:SPEC`` where KIND is one of
``generation``/``repair``/``fuzz``/``experiment`` and SPEC is
kind-specific (comma-separated handlers, a suite selector, an experiment
name).  A bare name with no kind is shorthand for ``experiment:NAME``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..errors import AdmissionError
from .jobs import JOB_KINDS, Job


def parse_job(entry: str) -> Job:
    """Parse one ``[TENANT=]KIND:SPEC`` flag into a :class:`Job`."""
    tenant = "default"
    body = entry.strip()
    if "=" in body.split(":", 1)[0]:
        tenant, _, body = body.partition("=")
        tenant, body = tenant.strip(), body.strip()
        if not tenant or not body:
            raise SystemExit(f"--job expects [TENANT=]KIND:SPEC, got {entry!r}")
    kind, separator, spec = body.partition(":")
    kind, spec = kind.strip(), spec.strip()
    if not separator:
        # Bare experiment-name shorthand: --job table1
        kind, spec = "experiment", kind
    if kind not in JOB_KINDS:
        raise SystemExit(
            f"--job {entry!r}: unknown kind {kind!r}; choose from {', '.join(JOB_KINDS)}"
        )
    if not spec:
        raise SystemExit(f"--job {entry!r}: empty spec")
    if kind == "experiment":
        return Job(kind=kind, tenant=tenant, experiment=spec)
    if kind == "fuzz":
        suite, _, seed = spec.partition("@")
        return Job(kind=kind, tenant=tenant, suite=suite, seed=int(seed) if seed else 0)
    handlers = tuple(part.strip() for part in spec.split(",") if part.strip())
    return Job(kind=kind, tenant=tenant, handlers=handlers)


def parse_tenant_budget(entry: str) -> tuple[str, int]:
    tenant, separator, limit = entry.partition("=")
    tenant, limit = tenant.strip(), limit.strip()
    if not separator or not tenant or not limit.isdigit():
        raise SystemExit(f"--tenant-budget expects TENANT=N, got {entry!r}")
    return tenant, int(limit)


def serve_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="kernelgpt-repro serve",
        description="Run generation/repair/fuzz/experiment jobs through the coalescing job service",
    )
    parser.add_argument("--job", action="append", default=None, metavar="[TENANT=]KIND:SPEC",
                        help="a job to submit (repeatable); bare NAME means experiment:NAME")
    parser.add_argument("--preset", choices=["quick", "paper"], default="quick")
    parser.add_argument("--workers", type=int, default=2,
                        help="service worker threads = jobs in flight (default: 2)")
    parser.add_argument("--engine-jobs", type=int, default=1,
                        help="per-job engine fan-out width (default: 1)")
    parser.add_argument("--executor", choices=["serial", "thread", "process"], default="thread",
                        help="per-job engine pool flavour (default: thread)")
    parser.add_argument("--no-coalesce", action="store_true",
                        help="drain mode: every LLM submission flushes alone (for A/B runs)")
    parser.add_argument("--window", type=float, default=10.0, metavar="MS",
                        help="coalescing admission window in milliseconds (default: 10)")
    parser.add_argument("--max-batch", type=int, default=64,
                        help="flush as soon as this many requests are pending (default: 64)")
    parser.add_argument("--tenant-budget", action="append", default=None, metavar="TENANT=N",
                        help="cap TENANT at N distinct backend queries (repeatable)")
    parser.add_argument("--max-pending", type=int, default=None,
                        help="refuse submissions beyond this many queued+running jobs")
    parser.add_argument("--store", type=Path, default=None, metavar="DIR",
                        help="persistent artifact store: warm-start job caches from DIR "
                             "and write fresh artifacts through, so warm caches "
                             "survive service restarts")
    parser.add_argument("--output", type=Path, default=None,
                        help="directory for experiment-job result files (CLI-identical bytes)")
    parser.add_argument("--events", type=Path, default=None, metavar="FILE",
                        help="append a schema'd JSONL event log (job admission/flush/"
                             "completion) to FILE — the same format as campaign --events")
    parser.add_argument("--fault-plan", default=None, metavar="SPEC",
                        help="deterministic chaos injection for the analysis backend, "
                             "e.g. rate=0.2,seed=7: faults are a pure function of "
                             "(route, prompt, occurrence), so retried runs converge "
                             "to fault-free bytes")
    parser.add_argument("--retry", default=None, metavar="SPEC",
                        help="retry policy for the resilient backend wrapper, e.g. "
                             "attempts=6 or off; a --fault-plan without --retry uses "
                             "the default policy (4 attempts, capped backoff)")
    parser.add_argument("--breaker-threshold", type=int, default=None, metavar="N",
                        help="arm per-member circuit breakers in BackendPools: open "
                             "after N consecutive member failures, deterministic "
                             "failover to the remaining members")
    parser.add_argument("--job-retries", type=int, default=0, metavar="N",
                        help="service-wide retry budget for jobs failed by a transient "
                             "backend fault (default: 0; permanent faults never retry)")
    parser.add_argument("--profile", action="store_true",
                        help="print per-job cache statistics and the coalescer summary")
    args = parser.parse_args(argv)

    from ..experiments.config import paper, quick
    from .service import JobService

    jobs = [parse_job(entry) for entry in (args.job or [])]
    if not jobs:
        parser.error("at least one --job is required")
    tenant_budgets = dict(parse_tenant_budget(entry) for entry in (args.tenant_budget or []))
    config = paper() if args.preset == "paper" else quick()
    if args.fault_plan or args.retry or args.breaker_threshold is not None:
        from ..llm import FaultPlan, RetryPolicy

        try:
            if args.fault_plan:
                FaultPlan.parse(args.fault_plan)
            if args.retry and args.retry != "off":
                RetryPolicy.parse(args.retry)
        except ValueError as error:
            raise SystemExit(f"invalid resilience spec: {error}")
        config = config.with_overrides(
            fault_plan=args.fault_plan,
            retry_spec=args.retry,
            breaker_threshold=args.breaker_threshold,
        )

    event_log = None
    if args.events is not None:
        # The orchestrator's event log doubles as the service's: same JSONL
        # schema, serve-specific event types, so CI asserts on events here
        # too instead of scraping --profile output.  Built before the
        # service so backend retries and breaker transitions are wired from
        # the first request.
        from ..orchestrator.events import EventLog

        event_log = EventLog(args.events)
    service = JobService(
        config,
        workers=args.workers,
        max_pending=args.max_pending,
        coalesce=not args.no_coalesce,
        window=args.window / 1000.0,
        max_batch=args.max_batch,
        engine_jobs=args.engine_jobs,
        executor=args.executor,
        tenant_budgets=tenant_budgets,
        store=args.store,
        job_retries=args.job_retries,
        events=event_log,
    )
    if event_log is not None:
        service.coalescer.observer = lambda info: event_log.emit("coalescer_flush", **info)
    failures = 0
    try:
        try:
            handles = service.submit_all(jobs)
        except AdmissionError as error:
            print(f"admission refused: {error}", file=sys.stderr)
            return 2
        if event_log is not None:
            for handle in handles:
                event_log.emit(
                    "job_admitted",
                    job_id=handle.job_id,
                    kind=handle.job.kind,
                    tenant=handle.job.tenant,
                    label=handle.job.describe(),
                )
        results = [handle.wait() for handle in handles]
        if event_log is not None:
            for result in results:
                event_log.emit(
                    "job_finished",
                    job_id=result.job_id,
                    ok=result.error is None,
                    queries=result.queries,
                    duration=round(result.duration, 6),
                    saved_by_coalescing=result.coalescing.get(
                        "queries_saved_by_coalescing", 0
                    ),
                )
        for result in results:
            print(f"=== {result.job_id} {result.label} (tenant={result.tenant})")
            for event in result.events:
                print(f"  [{event.elapsed:6.2f}s] {event.stage}: {event.detail}")
            if result.error is not None:
                failures += 1
                print(f"  FAILED: {result.error!r}", file=sys.stderr)
                continue
            print(result.text)
            print(f"[{result.job_id}] completed in {result.duration:.1f}s "
                  f"queries={result.queries} "
                  f"saved_by_coalescing={result.coalescing['queries_saved_by_coalescing']}\n")
            if args.output is not None and result.kind == "experiment":
                args.output.mkdir(parents=True, exist_ok=True)
                # result.text already carries the CLI's trailing newline.
                (args.output / f"{_experiment_name(result)}.txt").write_text(result.text)
        if args.profile:
            _print_profile(service, results)
    except AdmissionError as error:
        print(f"admission refused: {error}", file=sys.stderr)
        return 2
    finally:
        # Graceful degradation on exit: drain in-flight jobs first, then
        # terminate.  The drain verdict is part of the event record — a
        # dirty drain means results above may be incomplete.
        clean = service.drain()
        if event_log is not None:
            event_log.emit("service_drained", clean=clean)
        service.close()
        if event_log is not None:
            event_log.close()
    return 1 if failures else 0


def _experiment_name(result) -> str:
    # JobResult carries the human label "experiment:NAME"; recover NAME for
    # the output filename so it matches the batch CLI's layout.
    return result.label.split(":", 1)[1] if ":" in result.label else result.label


def _print_profile(service, results) -> None:
    print("per-job statistics")
    print("------------------")
    for result in results:
        coalescing = result.coalescing
        print(f"{result.job_id}  queries={result.queries:5d}  "
              f"saved_by_coalescing={coalescing.get('queries_saved_by_coalescing', 0):4d}  "
              f"flushes_joined={coalescing.get('flushes_joined', 0):4d}")
        for cache in result.cache.values():
            print(f"    cache {cache['name']:8s}  hits={cache['hits']:6d}  "
                  f"misses={cache['misses']:6d}  hit_rate={cache['hit_rate']:.1%}")
    stats = service.stats()
    coalescer = stats["coalescer"]
    print("coalescer summary")
    print("-----------------")
    print(f"flushes={coalescer['flushes']}  merged_flushes={coalescer['merged_flushes']}  "
          f"requests={coalescer['requests']}  distinct={coalescer['distinct_requests']}  "
          f"saved={coalescer['queries_saved_by_coalescing']}  "
          f"max_merged_batch={coalescer['max_merged_batch']}")
    for kind, entry in sorted(coalescer["by_kind"].items()):
        print(f"  kind {kind:12s}  batches={entry['batches']:5d}  "
              f"requests={entry['requests']:6d}  max_batch={entry['max_batch']:4d}")
    if stats["tenants"]:
        print("tenant budgets")
        print("--------------")
        for tenant, usage in sorted(stats["tenants"].items()):
            print(f"  {tenant:12s}  used={usage['used']:5d}  limit={usage['limit']:5d}  "
                  f"remaining={usage['remaining']:5d}")


if __name__ == "__main__":
    sys.exit(serve_main())
