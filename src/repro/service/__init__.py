"""The serving layer: a queue-driven job service over the engine.

See DESIGN.md's "Serving layer" section for the job lifecycle, coalescing
windows, tenant budget rules and the single-job byte-identity guarantee.
"""

from .jobs import JOB_KINDS, Job, JobEvent, JobHandle, JobResult
from .service import JobService

__all__ = ["JOB_KINDS", "Job", "JobEvent", "JobHandle", "JobResult", "JobService"]
