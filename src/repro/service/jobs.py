"""Job descriptions, streamed events and results for the serving layer.

A :class:`Job` is a declarative description of one unit of pipeline work —
generate specs for some handlers, repair-heavy generation, a fuzzing
campaign, or a full experiment table.  The service turns it into a
:class:`JobHandle` immediately at submission: the handle streams
:class:`JobEvent`\\ s as the job's sub-results land (completed handlers
surface while later ones are still running) and finally carries one
:class:`JobResult` with the rendered text, timing, query accounting and the
job's slice of the coalescer statistics.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Iterator

#: Supported job kinds, in the order the CLI documents them.
JOB_KINDS = ("generation", "repair", "fuzz", "experiment")


@dataclass(frozen=True)
class Job:
    """A declarative request for one unit of pipeline work.

    ``spec`` is kind-specific: handler names for ``generation``/``repair``
    (comma-separated in the CLI), an experiment name for ``experiment``, a
    suite selector (``syzkaller`` or a handler name) for ``fuzz``.
    """

    kind: str
    tenant: str = "default"
    label: str | None = None
    #: Handlers to generate/repair, in deterministic processing order.
    handlers: tuple[str, ...] = ()
    #: Experiment name for ``kind == "experiment"`` (e.g. ``table1``).
    experiment: str | None = None
    #: Fuzz-job inputs: which suite to fuzz and how hard.
    suite: str = "syzkaller"
    budget_programs: int = 300
    seed: int = 0
    #: Repair protocol override; None uses the generator's configured mode
    #: (``repair`` jobs default to ``transactional``).
    repair_mode: str | None = None
    #: Job-level retry budget for **transient** backend faults
    #: (:class:`~repro.errors.TransientBackendError` escaping the job's
    #: pipeline); ``None`` defers to the service-wide default.  Permanent
    #: faults and unclassified errors never consume it — they fail the job
    #: on first occurrence.
    retries: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}; choose from {', '.join(JOB_KINDS)}")

    def describe(self) -> str:
        """A stable human label: explicit ``label`` or a kind:spec summary."""
        if self.label:
            return self.label
        if self.kind == "experiment":
            return f"experiment:{self.experiment}"
        if self.kind == "fuzz":
            return f"fuzz:{self.suite}@{self.seed}"
        spec = ",".join(self.handlers) if self.handlers else "<all>"
        return f"{self.kind}:{spec}"


@dataclass(frozen=True)
class JobEvent:
    """One streamed sub-result: a handler finished, a stage completed."""

    job_id: str
    stage: str
    detail: str
    elapsed: float


@dataclass
class JobResult:
    """Everything a finished job produced, plus its accounting.

    ``error`` is the raised exception for failed jobs (``text`` is then
    empty); ``coalescing`` is the job's slice of the coalescer statistics —
    ``queries_saved_by_coalescing`` counts this job's requests answered by
    another session's identical in-flight request, and ``by_kind`` snapshots
    the service-wide per-prompt-kind merged batch sizes at completion time.
    """

    job_id: str
    label: str
    kind: str
    tenant: str
    text: str = ""
    error: BaseException | None = None
    duration: float = 0.0
    #: How many times the job ran (1 = no retries were needed).
    attempts: int = 1
    queries: int = 0
    cache: dict = field(default_factory=dict)
    coalescing: dict = field(default_factory=dict)
    events: list[JobEvent] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None


class JobHandle:
    """The caller's view of a submitted job: an event stream plus the result.

    Events arrive on an internal queue as the job runs; :meth:`events`
    drains them in order and terminates when the job finishes.  The handle
    is thread-safe: one thread may stream events while another waits on the
    result.
    """

    def __init__(self, job_id: str, job: Job):
        self.job_id = job_id
        self.job = job
        self._events: queue.Queue[JobEvent | None] = queue.Queue()
        self._done = threading.Event()
        self._result: JobResult | None = None

    # ------------------------------------------------------- producer side
    def _emit(self, event: JobEvent) -> None:
        self._events.put(event)

    def _finish(self, result: JobResult) -> None:
        self._result = result
        self._done.set()
        self._events.put(None)

    # ------------------------------------------------------- consumer side
    def events(self) -> Iterator[JobEvent]:
        """Yield streamed events in emission order until the job finishes."""
        while True:
            event = self._events.get()
            if event is None:
                return
            yield event

    def wait(self, timeout: float | None = None) -> JobResult:
        """Block until the job finishes and return its result."""
        if not self._done.wait(timeout):
            raise TimeoutError(f"job {self.job_id} did not finish within {timeout}s")
        assert self._result is not None
        return self._result

    @property
    def done(self) -> bool:
        return self._done.is_set()


__all__ = ["JOB_KINDS", "Job", "JobEvent", "JobResult", "JobHandle"]
