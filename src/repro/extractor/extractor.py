"""The kernel source extractor (the paper's LLVM-based tool, §4).

The extractor parses every file of the synthetic kernel codebase and
provides the two services KernelGPT's pipeline relies on:

* **operation handler discovery** — pattern-match ``file_operations`` /
  ``miscdevice`` / ``proto_ops`` initializers to locate driver and socket
  operation handlers, together with their usage sites (the registration code
  that reveals the device node or socket family);
* **definition extraction** (``ExtractCode`` in Algorithm 1) — given an
  identifier the analysis LLM marked as unknown, return its source text
  (function, struct, macro or initializer) so it can be added to the next
  prompt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterable

from ..errors import ExtractionError
from ..kernel import KernelCodebase
from ..syzlang import ConstantTable
from .cparser import (
    FunctionDecl,
    InitializerDecl,
    MacroDef,
    StructDecl,
    TranslationUnit,
    parse_translation_unit,
)

#: file_operations members that register generic-syscall handlers.
_IOCTL_FIELDS = ("unlocked_ioctl", "ioctl", "compat_ioctl")

#: proto_ops members the extractor records for socket handlers.
_SOCKET_SYSCALL_FIELDS = (
    "bind", "connect", "accept", "sendmsg", "recvmsg", "sendto", "recvfrom",
    "setsockopt", "getsockopt", "poll",
)


@dataclass(frozen=True)
class HandlerInfo:
    """One discovered operation handler and its registration context."""

    handler_name: str
    kind: str                      # "driver" or "socket"
    file: str
    ioctl_fn: str | None = None
    syscall_fns: tuple[tuple[str, str], ...] = ()   # (syscall/member, function)
    usage_snippets: tuple[str, ...] = ()            # registration code referencing the handler
    initializer_text: str = ""

    @property
    def label(self) -> str:
        return f"{self.kind}:{self.handler_name}"


class KernelExtractor:
    """Parses the synthetic kernel and answers extraction queries."""

    def __init__(self, codebase: KernelCodebase):
        self._codebase = codebase
        self._units: dict[str, TranslationUnit] = {}
        self._by_identifier: dict[str, tuple[str, object]] = {}
        self._handlers: dict[str, HandlerInfo] = {}
        self._index()

    def store_profile(self) -> str:
        """Identity for persistent cache keys (repro.store).

        Extraction results are pure functions of the codebase's source
        text; the coverage-space digest enumerates every block label in it,
        so it changes whenever the substrate does — two differently-built
        kernels never share extraction artifacts across runs.
        """
        return f"extract:{self._codebase.coverage_space().digest}"

    # ------------------------------------------------------------- indexing
    def _index(self) -> None:
        for path, text in self._codebase.source_files().items():
            unit = parse_translation_unit(path, text)
            self._units[path] = unit
            for table in (unit.functions, unit.structs, unit.initializers, unit.macros):
                for name, decl in table.items():
                    # First definition wins; the synthetic kernel has no
                    # cross-file duplicate identifiers by construction.
                    self._by_identifier.setdefault(name, (path, decl))
        for path, unit in self._units.items():
            self._discover_handlers(path, unit)

    def _discover_handlers(self, path: str, unit: TranslationUnit) -> None:
        for name, init in unit.initializers.items():
            if init.struct_type == "file_operations":
                ioctl_fn = None
                for field_name in _IOCTL_FIELDS:
                    value = init.field_value(field_name)
                    if value:
                        ioctl_fn = value.strip()
                        break
                usages = self._usage_snippets(unit, name)
                self._handlers[name] = HandlerInfo(
                    handler_name=name,
                    kind="driver",
                    file=path,
                    ioctl_fn=ioctl_fn,
                    syscall_fns=tuple(
                        (field_name, value)
                        for field_name, value in init.fields
                        if field_name in ("open", "read", "write", "poll", "mmap") and value
                    ),
                    usage_snippets=usages,
                    initializer_text=init.text,
                )
            elif init.struct_type == "proto_ops":
                fns = tuple(
                    (field_name, value)
                    for field_name, value in init.fields
                    if field_name in _SOCKET_SYSCALL_FIELDS and value
                )
                usages = self._usage_snippets(unit, name)
                self._handlers[name] = HandlerInfo(
                    handler_name=name,
                    kind="socket",
                    file=path,
                    ioctl_fn=init.field_value("ioctl"),
                    syscall_fns=fns,
                    usage_snippets=usages,
                    initializer_text=init.text,
                )

    def _usage_snippets(self, unit: TranslationUnit, handler_name: str) -> tuple[str, ...]:
        """Collect registration code that references the handler variable."""
        snippets: list[str] = []
        needle = handler_name
        for init in unit.initializers.values():
            if init.var_name == handler_name:
                continue
            if any(needle in value for _, value in init.fields):
                snippets.append(init.text)
        for function in unit.functions.values():
            if needle in function.body and (
                "register" in function.name
                or "init" in function.name
                or "create" in function.name
            ):
                snippets.append(function.text)
        return tuple(snippets)

    # -------------------------------------------------------------- queries
    def handlers(self, kind: str | None = None) -> list[HandlerInfo]:
        """Every discovered operation handler (optionally filtered by kind)."""
        infos = list(self._handlers.values())
        if kind is not None:
            infos = [info for info in infos if info.kind == kind]
        return sorted(infos, key=lambda info: info.handler_name)

    def handler(self, handler_name: str) -> HandlerInfo:
        try:
            return self._handlers[handler_name]
        except KeyError:
            raise ExtractionError(f"no operation handler named {handler_name!r}") from None

    def has_definition(self, identifier: str) -> bool:
        return identifier in self._by_identifier

    def extract_code(self, identifier: str) -> str:
        """Return the source text for ``identifier`` (Algorithm 1's ExtractCode)."""
        entry = self._by_identifier.get(identifier)
        if entry is None:
            raise ExtractionError(f"no definition found for identifier {identifier!r}")
        _, decl = entry
        return decl.text

    def definition_kind(self, identifier: str) -> str:
        entry = self._by_identifier.get(identifier)
        if entry is None:
            raise ExtractionError(f"no definition found for identifier {identifier!r}")
        _, decl = entry
        if isinstance(decl, FunctionDecl):
            return "function"
        if isinstance(decl, StructDecl):
            return "struct"
        if isinstance(decl, InitializerDecl):
            return "initializer"
        if isinstance(decl, MacroDef):
            return "macro"
        return "unknown"

    def function(self, name: str) -> FunctionDecl:
        entry = self._by_identifier.get(name)
        if entry is None or not isinstance(entry[1], FunctionDecl):
            raise ExtractionError(f"no function named {name!r}")
        return entry[1]

    def struct(self, name: str) -> StructDecl:
        entry = self._by_identifier.get(name)
        if entry is None or not isinstance(entry[1], StructDecl):
            raise ExtractionError(f"no struct named {name!r}")
        return entry[1]

    def initializer(self, name: str) -> InitializerDecl:
        entry = self._by_identifier.get(name)
        if entry is None or not isinstance(entry[1], InitializerDecl):
            raise ExtractionError(f"no initializer named {name!r}")
        return entry[1]

    def macro(self, name: str) -> MacroDef:
        entry = self._by_identifier.get(name)
        if entry is None or not isinstance(entry[1], MacroDef):
            raise ExtractionError(f"no macro named {name!r}")
        return entry[1]

    def translation_unit(self, path: str) -> TranslationUnit:
        try:
            return self._units[path]
        except KeyError:
            raise ExtractionError(f"no source file at {path!r}") from None

    def constants(self) -> ConstantTable:
        """Macro table recovered from ``#define`` lines across the whole tree."""
        table = ConstantTable()
        for unit in self._units.values():
            for macro in unit.macros.values():
                if macro.int_value is not None:
                    table.define(macro.name, macro.int_value, allow_redefine=True)
        return table

    def stats(self) -> dict[str, int]:
        return {
            "files": len(self._units),
            "handlers": len(self._handlers),
            "driver_handlers": sum(1 for info in self._handlers.values() if info.kind == "driver"),
            "socket_handlers": sum(1 for info in self._handlers.values() if info.kind == "socket"),
            "functions": sum(len(unit.functions) for unit in self._units.values()),
            "structs": sum(len(unit.structs) for unit in self._units.values()),
            "macros": sum(len(unit.macros) for unit in self._units.values()),
        }


@lru_cache(maxsize=4)
def cached_extractor(codebase: KernelCodebase) -> KernelExtractor:
    """Memoised extractor construction (indexing a full kernel is not free)."""
    return KernelExtractor(codebase)


__all__ = ["HandlerInfo", "KernelExtractor", "cached_extractor"]
