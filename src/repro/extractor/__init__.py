"""Kernel source extraction (the stand-in for the paper's LLVM tooling)."""

from .cparser import (
    FunctionDecl,
    InitializerDecl,
    MacroDef,
    StructDecl,
    StructField,
    TranslationUnit,
    parse_translation_unit,
)
from .extractor import HandlerInfo, KernelExtractor, cached_extractor

__all__ = [
    "KernelExtractor",
    "HandlerInfo",
    "cached_extractor",
    "TranslationUnit",
    "parse_translation_unit",
    "FunctionDecl",
    "StructDecl",
    "StructField",
    "InitializerDecl",
    "MacroDef",
]
