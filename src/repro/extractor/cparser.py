"""A small parser for the C subset used by the synthetic kernel.

This replaces the LLVM-based tooling of the paper's source extractor.  It
indexes one C translation unit into its top-level declarations:

* ``#define`` macros (with integer values where they are literal),
* ``struct`` type definitions and their fields,
* function definitions (signature + body text, found by brace matching),
* designated-initializer globals (``static const struct file_operations ...``).

The parser is intentionally tolerant: it works on text, skips anything it
does not recognise, and never needs a full C grammar — exactly like the
pattern-matching extractor described in §4 of the paper.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..errors import CParseError

_DEFINE_RE = re.compile(r"^#define\s+(?P<name>\w+)\s+(?P<value>.+?)(?:\s*/\*.*\*/)?\s*$")
_STRUCT_OPEN_RE = re.compile(r"^(?:/\*.*\*/\s*)?struct\s+(?P<name>\w+)\s*\{\s*$")
_STRUCT_FIELD_RE = re.compile(
    r"^\s*(?P<type>(?:struct\s+)?[A-Za-z_]\w*(?:\s+[A-Za-z_]\w*)*)\s+"
    r"(?P<name>\w+)\s*(?:\[(?P<array>\w*)\])?\s*;"
)
_FUNCTION_RE = re.compile(
    r"^(?P<static>static\s+)?(?P<ret>[A-Za-z_]\w*(?:\s+[A-Za-z_]\w*)*?\s*\**)\s*"
    r"(?P<name>[A-Za-z_]\w+)\s*\((?P<params>[^)]*)\)\s*$"
)
_INITIALIZER_RE = re.compile(
    r"^static\s+(?:const\s+)?struct\s+(?P<type>\w+)\s+(?P<name>\w+(?:\[\])?)\s*=\s*\{\s*$"
)
_INIT_FIELD_RE = re.compile(r"^\s*\.(?P<field>\w+)\s*=\s*(?P<value>.+?),?\s*$")


@dataclass(frozen=True)
class MacroDef:
    """A ``#define``; ``int_value`` is None when the body is not a literal."""

    name: str
    body: str
    int_value: int | None
    text: str


@dataclass(frozen=True)
class StructField:
    """A parsed struct member."""

    c_type: str
    name: str
    array: str | None  # None = scalar, "" = flexible array, digits = fixed length

    @property
    def is_flexible_array(self) -> bool:
        return self.array == ""

    @property
    def fixed_length(self) -> int | None:
        if self.array and self.array.isdigit():
            return int(self.array)
        return None


@dataclass(frozen=True)
class StructDecl:
    """A parsed ``struct`` definition."""

    name: str
    fields: tuple[StructField, ...]
    text: str


@dataclass(frozen=True)
class FunctionDecl:
    """A parsed function definition (signature plus raw body text)."""

    name: str
    return_type: str
    params: str
    body: str
    text: str

    def calls(self) -> tuple[str, ...]:
        """Names of functions invoked in the body (approximate, textual)."""
        found = re.findall(r"\b([a-zA-Z_]\w+)\s*\(", self.body)
        keywords = {"if", "for", "while", "switch", "return", "sizeof", "ARRAY_SIZE"}
        return tuple(dict.fromkeys(name for name in found if name not in keywords))


@dataclass(frozen=True)
class InitializerDecl:
    """A parsed designated-initializer global."""

    struct_type: str
    var_name: str
    fields: tuple[tuple[str, str], ...]
    text: str

    def field_value(self, name: str) -> str | None:
        for field_name, value in self.fields:
            if field_name == name:
                return value
        return None

    def has_field(self, name: str) -> bool:
        return self.field_value(name) is not None


@dataclass
class TranslationUnit:
    """The parsed contents of one source file."""

    path: str
    macros: dict[str, MacroDef] = field(default_factory=dict)
    structs: dict[str, StructDecl] = field(default_factory=dict)
    functions: dict[str, FunctionDecl] = field(default_factory=dict)
    initializers: dict[str, InitializerDecl] = field(default_factory=dict)

    def lookup(self, identifier: str):
        """Return whichever declaration carries this identifier, if any."""
        for table in (self.functions, self.structs, self.initializers, self.macros):
            if identifier in table:
                return table[identifier]
        return None


def _parse_int(text: str) -> int | None:
    text = text.strip()
    try:
        return int(text, 0)
    except ValueError:
        return None


def parse_translation_unit(path: str, text: str) -> TranslationUnit:
    """Parse one source file into a :class:`TranslationUnit`."""
    unit = TranslationUnit(path=path)
    lines = text.splitlines()
    index = 0
    total = len(lines)
    while index < total:
        line = lines[index]
        stripped = line.strip()
        define_match = _DEFINE_RE.match(stripped)
        if define_match:
            name = define_match.group("name")
            body = define_match.group("value").strip()
            unit.macros[name] = MacroDef(name=name, body=body, int_value=_parse_int(body), text=stripped)
            index += 1
            continue
        struct_match = _STRUCT_OPEN_RE.match(stripped)
        if struct_match:
            index = _parse_struct(unit, lines, index, struct_match.group("name"))
            continue
        init_match = _INITIALIZER_RE.match(stripped)
        if init_match:
            index = _parse_initializer(unit, lines, index, init_match)
            continue
        func_match = _FUNCTION_RE.match(stripped)
        if func_match and index + 1 < total and lines[index + 1].strip() == "{":
            index = _parse_function(unit, lines, index, func_match)
            continue
        index += 1
    return unit


def _parse_struct(unit: TranslationUnit, lines: list[str], start: int, name: str) -> int:
    fields: list[StructField] = []
    collected = [lines[start]]
    index = start + 1
    while index < len(lines):
        line = lines[index]
        collected.append(line)
        stripped = line.strip()
        index += 1
        if stripped.startswith("};") or stripped == "}":
            break
        field_match = _STRUCT_FIELD_RE.match(stripped)
        if field_match:
            raw_name = field_match.group("name")
            array = field_match.group("array")
            # A flexible array member renders as ``type name[];`` — the regex
            # captures the empty brackets as array == "".
            if raw_name.endswith("[]"):
                raw_name = raw_name[:-2]
                array = ""
            fields.append(
                StructField(c_type=field_match.group("type").strip(), name=raw_name, array=array)
            )
    unit.structs[name] = StructDecl(name=name, fields=tuple(fields), text="\n".join(collected))
    return index


def _parse_function(unit: TranslationUnit, lines: list[str], start: int, match: re.Match) -> int:
    depth = 0
    body_lines: list[str] = []
    collected = [lines[start]]
    index = start + 1
    started = False
    while index < len(lines):
        line = lines[index]
        collected.append(line)
        depth += line.count("{") - line.count("}")
        if not started:
            started = True
            index += 1
            continue
        if depth <= 0:
            index += 1
            break
        body_lines.append(line)
        index += 1
    name = match.group("name")
    unit.functions[name] = FunctionDecl(
        name=name,
        return_type=(match.group("ret") or "").strip(),
        params=match.group("params").strip(),
        body="\n".join(body_lines),
        text="\n".join(collected),
    )
    return index


def _parse_initializer(unit: TranslationUnit, lines: list[str], start: int, match: re.Match) -> int:
    fields: list[tuple[str, str]] = []
    collected = [lines[start]]
    index = start + 1
    while index < len(lines):
        line = lines[index]
        collected.append(line)
        stripped = line.strip()
        index += 1
        if stripped.startswith("};") or stripped == "}":
            break
        field_match = _INIT_FIELD_RE.match(stripped)
        if field_match:
            fields.append((field_match.group("field"), field_match.group("value").rstrip(",")))
    var_name = match.group("name").removesuffix("[]")
    unit.initializers[var_name] = InitializerDecl(
        struct_type=match.group("type"),
        var_name=var_name,
        fields=tuple(fields),
        text="\n".join(collected),
    )
    return index


__all__ = [
    "MacroDef",
    "StructField",
    "StructDecl",
    "FunctionDecl",
    "InitializerDecl",
    "TranslationUnit",
    "parse_translation_unit",
]
