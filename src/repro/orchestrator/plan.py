"""Campaign plans: typed task DAGs with canonical per-task input digests.

A campaign models one end-to-end evaluation as a dependency DAG —
generate → validate/repair → fuzz → per-table report → quality gates —
instead of the flat per-table loop in :mod:`repro.experiments.runner`.
Every node is a :class:`CampaignTask` with explicit ``depends_on`` edges, a
retry budget, and a *canonical input digest*: a SHA-256 over a schema tag,
the experiment-config digest, the task's identity and parameters, and the
output digests of its dependencies.  The digest is the unit of staleness —
a task whose input digest matches a previously recorded run is clean and
may be served from the artifact store (``task_reused``) instead of
re-executed, so partial re-runs touch only the dirty subgraph.

Digest conventions mirror :mod:`repro.store.keys`: content digests only
(never ``hash()``/``id()``), NUL-joined parts under a schema tag that is
bumped whenever derivation changes (old entries orphan as cold misses, are
never mis-served).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

from ..errors import CampaignPlanError
from ..experiments.config import ExperimentConfig
from ..store.keys import StoreKey

#: Bumped whenever task identity, parameter canonicalization, or digest
#: derivation changes incompatibly.
CAMPAIGN_SCHEMA = "repro-campaign-v1"

#: Report tasks whose tables exercise the fuzzing substrate; they depend on
#: the fuzz stage, everything else on validate.
FUZZ_EXPERIMENTS = frozenset({"table3", "table4", "table5", "table6"})


def canonical_json(value) -> str:
    """Canonical JSON text: sorted keys, no whitespace variance."""
    return json.dumps(value, sort_keys=True, ensure_ascii=False, separators=(",", ":"))


def content_digest(*parts: str) -> str:
    """SHA-256 over NUL-joined parts, the :mod:`repro.store.keys` construction."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def config_digest(config: ExperimentConfig) -> str:
    """Digest of everything the experiment config contributes to task inputs."""
    return content_digest(CAMPAIGN_SCHEMA, "config", canonical_json(asdict(config)))


def output_digest(output) -> str:
    """Digest of a task's (JSON-serializable) output value."""
    return content_digest(CAMPAIGN_SCHEMA, "output", canonical_json(output))


@dataclass(frozen=True)
class CampaignTask:
    """One node of a campaign DAG.

    ``params`` is a sorted tuple of ``(name, value)`` pairs so equal
    parameter dicts always canonicalize — and digest — identically.
    ``cacheable=False`` (gates) means the task re-executes on every run:
    verification must observe the present, not a recorded verdict.
    """

    task_id: str
    kind: str
    params: tuple[tuple[str, object], ...] = ()
    depends_on: tuple[str, ...] = ()
    retries: int = 0
    cacheable: bool = True

    @staticmethod
    def make(
        task_id: str,
        kind: str,
        params: dict | None = None,
        *,
        depends_on: tuple[str, ...] = (),
        retries: int = 0,
        cacheable: bool = True,
    ) -> "CampaignTask":
        ordered = tuple(sorted((params or {}).items()))
        return CampaignTask(task_id, kind, ordered, tuple(depends_on), retries, cacheable)

    def params_dict(self) -> dict:
        return dict(self.params)


def task_input_digest(
    task: CampaignTask, cfg_digest: str, upstream_digests: dict[str, str]
) -> str:
    """Canonical input digest: config + task identity + upstream outputs.

    Dependencies contribute in sorted-id order so the digest is a function
    of the plan, never of scheduling history.
    """
    parts = [
        CAMPAIGN_SCHEMA,
        cfg_digest,
        task.task_id,
        task.kind,
        canonical_json([[name, value] for name, value in task.params]),
    ]
    for dep in sorted(task.depends_on):
        parts.append(dep)
        parts.append(upstream_digests[dep])
    return content_digest(*parts)


def campaign_key(task_id: str, input_digest: str) -> StoreKey:
    """Artifact-store key for one task execution at one input digest."""
    return StoreKey("campaign", (CAMPAIGN_SCHEMA, task_id, input_digest))


class CampaignPlan:
    """A validated DAG of campaign tasks over one experiment config.

    Construction rejects duplicate ids, unknown dependencies,
    self-dependencies and cycles with :class:`CampaignPlanError`, so every
    plan that exists has a deterministic topological order.
    """

    def __init__(self, tasks: list[CampaignTask], config: ExperimentConfig, *, name: str = "campaign"):
        self.name = name
        self.config = config
        self._by_id: dict[str, CampaignTask] = {}
        for task in tasks:
            if task.task_id in self._by_id:
                raise CampaignPlanError(f"duplicate task id {task.task_id!r}")
            self._by_id[task.task_id] = task
        for task in tasks:
            for dep in task.depends_on:
                if dep == task.task_id:
                    raise CampaignPlanError(f"task {task.task_id!r} depends on itself")
                if dep not in self._by_id:
                    raise CampaignPlanError(
                        f"task {task.task_id!r} depends on unknown task {dep!r}"
                    )
        self._order = self._topological_sort()

    def _topological_sort(self) -> tuple[CampaignTask, ...]:
        """Kahn's algorithm with the ready set kept sorted by task id.

        The stable tie-break makes dispatch order a pure function of the
        plan — the byte-identity anchor for event logs across jobs/executor.
        """
        pending = {task_id: set(task.depends_on) for task_id, task in self._by_id.items()}
        order: list[CampaignTask] = []
        ready = sorted(task_id for task_id, deps in pending.items() if not deps)
        while ready:
            task_id = ready.pop(0)
            del pending[task_id]
            order.append(self._by_id[task_id])
            newly_ready = []
            for other_id, deps in pending.items():
                if task_id in deps:
                    deps.discard(task_id)
                    if not deps:
                        newly_ready.append(other_id)
            ready = sorted(ready + newly_ready)
        if pending:
            raise CampaignPlanError(f"dependency cycle involving tasks {sorted(pending)}")
        return tuple(order)

    def topological_order(self) -> tuple[CampaignTask, ...]:
        return self._order

    def task(self, task_id: str) -> CampaignTask:
        return self._by_id[task_id]

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._by_id

    @property
    def tasks(self) -> tuple[CampaignTask, ...]:
        return self._order

    def config_digest(self) -> str:
        return config_digest(self.config)


def build_campaign_plan(
    config: ExperimentConfig,
    *,
    experiments: list[str] | None = None,
    retries: int = 1,
    gates: bool = True,
    store: str | None = None,
    bench_dir: str | None = None,
    fuzz_budget: int = 200,
) -> CampaignPlan:
    """The standard evaluation campaign for one config.

    Pipeline stages (generate → validate → fuzz) feed per-experiment report
    tasks; fuzz-driven tables hang off the fuzz stage, generation tables off
    validate.  Quality gates — determinism diff, bench floors, and (with a
    store) ``ArtifactStore.verify`` — are terminal tasks depending on every
    report, so a gate verdict always describes a complete run.
    """
    from ..experiments.runner import EXPERIMENTS

    names = sorted(experiments) if experiments is not None else sorted(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        raise CampaignPlanError(f"unknown experiments {unknown}; valid: {sorted(EXPERIMENTS)}")

    tasks = [
        CampaignTask.make("generate", "stage", {"stage": "generate"}, retries=retries),
        CampaignTask.make(
            "validate", "stage", {"stage": "validate"}, depends_on=("generate",), retries=retries
        ),
    ]
    need_fuzz = any(name in FUZZ_EXPERIMENTS for name in names)
    if need_fuzz:
        tasks.append(
            CampaignTask.make(
                "fuzz",
                "stage",
                {"stage": "fuzz", "budget": fuzz_budget},
                depends_on=("validate",),
                retries=retries,
            )
        )
    report_ids = []
    for name in names:
        upstream = "fuzz" if name in FUZZ_EXPERIMENTS else "validate"
        task_id = f"report:{name}"
        report_ids.append(task_id)
        tasks.append(
            CampaignTask.make(
                task_id, "report", {"experiment": name}, depends_on=(upstream,), retries=retries
            )
        )
    if gates:
        terminal = tuple(report_ids)
        tasks.append(
            CampaignTask.make(
                "gate:determinism",
                "gate",
                {"gate": "determinism"},
                depends_on=terminal,
                cacheable=False,
            )
        )
        tasks.append(
            CampaignTask.make(
                "gate:bench_floors",
                "gate",
                {"gate": "bench_floors", "bench_dir": bench_dir},
                depends_on=terminal,
                cacheable=False,
            )
        )
        if store is not None:
            tasks.append(
                CampaignTask.make(
                    "gate:store_verify",
                    "gate",
                    {"gate": "store_verify", "store": store},
                    depends_on=terminal,
                    cacheable=False,
                )
            )
    return CampaignPlan(tasks, config)


__all__ = [
    "CAMPAIGN_SCHEMA",
    "FUZZ_EXPERIMENTS",
    "CampaignPlan",
    "CampaignTask",
    "build_campaign_plan",
    "campaign_key",
    "canonical_json",
    "config_digest",
    "content_digest",
    "output_digest",
    "task_input_digest",
]
