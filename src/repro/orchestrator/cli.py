"""``kernelgpt-repro campaign`` — DAG-scheduled runs of the evaluation.

The campaign subcommand is the orchestrated face of the flat runner: the
same experiments, the same presets and executors, but scheduled as a
dependency DAG with retry budgets, quality gates, and a structured event
log.  Rendered tables print to stdout in the flat runner's deterministic
experiment order and byte-for-byte format, so ``campaign --preset quick``
diffs clean against ``kernelgpt-repro --preset quick`` — stdout stays the
contract; progress, verdicts and the summary go to stderr and the event
log.

With ``--store DIR``, completed tasks are recorded under their canonical
input digests; a second run against the same store re-executes only tasks
whose digests changed (``task_reused`` events name the clean ones).  With
``--events FILE``, the full schema'd JSONL log is appended there for CI to
assert on instead of scraping stdout.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..engine import ExecutionEngine
from ..errors import CampaignError
from .events import EventLog
from .plan import build_campaign_plan
from .scheduler import CampaignScheduler


def _progress(record: dict) -> None:
    """One concise stderr line per interesting event."""
    kind = record["type"]
    if kind == "task_started":
        print(f"[campaign] {record['task_id']} started (attempt {record['attempt']})",
              file=sys.stderr)
    elif kind == "task_reused":
        print(f"[campaign] {record['task_id']} reused (digest {record['digest'][:12]})",
              file=sys.stderr)
    elif kind == "task_finished":
        duration = record.get("duration", 0.0)
        print(f"[campaign] {record['task_id']} finished in {duration:.1f}s",
              file=sys.stderr)
    elif kind == "task_retried":
        print(f"[campaign] {record['task_id']} retrying after: {record['error']}",
              file=sys.stderr)
    elif kind in ("task_failed", "task_skipped"):
        detail = record.get("error") or f"blocked on {record.get('blocked_on')}"
        print(f"[campaign] {record['task_id']} {kind.split('_', 1)[1]}: {detail}",
              file=sys.stderr)
    elif kind in ("gate_passed", "gate_failed"):
        verdict = "pass" if kind == "gate_passed" else "FAIL"
        print(f"[campaign] gate {record['gate']}: {verdict} — {record['detail']}",
              file=sys.stderr)


def campaign_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="kernelgpt-repro campaign",
        description="Run the evaluation as a DAG-scheduled campaign with quality gates",
    )
    from ..experiments.runner import EXPERIMENTS

    parser.add_argument("--experiment", "-e", action="append",
                        choices=sorted(EXPERIMENTS) + ["all"], default=None,
                        help="experiment(s) to report on (default: all)")
    parser.add_argument("--preset", choices=["quick", "paper"], default="quick")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="workers per campaign wave (default: 1)")
    parser.add_argument("--executor", choices=["serial", "thread", "process"], default="thread",
                        help="worker pool flavour for --jobs > 1 (default: thread)")
    parser.add_argument("--store", type=Path, default=None, metavar="DIR",
                        help="artifact store for digest-keyed task reuse: clean tasks "
                             "(input digest unchanged) load instead of re-executing")
    parser.add_argument("--events", type=Path, default=None, metavar="FILE",
                        help="append the schema'd JSONL event log to FILE")
    parser.add_argument("--output", type=Path, default=None, metavar="DIR",
                        help="directory to write result text files")
    parser.add_argument("--bench", type=Path, default=None, metavar="DIR",
                        help="benchmark trajectory directory for the bench-floors gate "
                             "(default: benchmarks/)")
    parser.add_argument("--retries", type=int, default=1,
                        help="retry budget per pipeline/report task (default: 1)")
    parser.add_argument("--fuzz-budget", type=int, default=200,
                        help="program budget for the campaign fuzz stage (default: 200)")
    parser.add_argument("--no-gates", action="store_true",
                        help="skip the quality gates (determinism diff, bench floors, "
                             "store verify)")
    args = parser.parse_args(argv)

    from ..experiments.config import paper, quick

    config = paper() if args.preset == "paper" else quick()
    wanted = args.experiment or ["all"]
    names = sorted(EXPERIMENTS) if "all" in wanted else sorted(set(wanted))
    plan = build_campaign_plan(
        config,
        experiments=names,
        retries=args.retries,
        gates=not args.no_gates,
        store=str(args.store) if args.store is not None else None,
        bench_dir=str(args.bench) if args.bench is not None else None,
        fuzz_budget=args.fuzz_budget,
    )
    store = None
    if args.store is not None:
        from ..store import ArtifactStore

        store = ArtifactStore(args.store)
    engine = ExecutionEngine(jobs=args.jobs, kind=args.executor)
    events = EventLog(args.events, mirror=_progress)
    try:
        scheduler = CampaignScheduler(
            plan, engine, preset=args.preset, store=store, events=events
        )
        result = scheduler.run()
    finally:
        events.close()

    for name in names:
        outcome = result.outcomes.get(f"report:{name}")
        if outcome is None:
            continue
        text = outcome.output["text"]
        print(text)
        print()
        if name == "table1" and outcome.output.get("audit"):
            print("Correctness audit (§5.1.3):", outcome.output["audit"], "\n")
        if args.output is not None:
            args.output.mkdir(parents=True, exist_ok=True)
            (args.output / f"{name}.txt").write_text(text + "\n")

    print(
        f"[campaign] {len(plan)} task(s): {result.executed} executed, "
        f"{result.reused} reused, {len(result.failures)} failed, "
        f"{len(result.skipped)} skipped in {result.wall:.1f}s",
        file=sys.stderr,
    )
    try:
        result.raise_for_status()
    except CampaignError as error:
        print(f"campaign failed: {error}", file=sys.stderr)
        return 1
    return 0


__all__ = ["campaign_main"]
