"""Campaign orchestration: DAG-scheduled evaluation runs with quality gates.

The orchestrator turns the flat per-table experiment loop into a typed
dependency DAG — generate → validate/repair → fuzz → per-table report →
quality gates — scheduled deterministically onto the existing
:class:`~repro.engine.ExecutionEngine` executors.  Each task carries a
canonical input digest (config + parameters + upstream output digests under
a schema tag); against an :class:`~repro.store.ArtifactStore`, digests
decide what actually re-executes, so partial re-runs touch only the dirty
subgraph.  Every run is narrated by a schema'd JSONL event log that CI
consumes instead of scraping stdout.

Layering: orchestrator sits above ``experiments`` and ``engine`` and below
nothing — the ``campaign`` subcommand is its only entry point, and the
serving layer borrows only :mod:`repro.orchestrator.events`.
"""

from .events import EVENT_SCHEMA, VOLATILE_FIELDS, EventLog, deterministic_view, read_events
from .plan import (
    CAMPAIGN_SCHEMA,
    CampaignPlan,
    CampaignTask,
    build_campaign_plan,
    campaign_key,
    config_digest,
    output_digest,
    task_input_digest,
)
from .scheduler import (
    CampaignResult,
    CampaignScheduler,
    TaskPayload,
    execute_campaign_task,
    run_campaign_plan,
)
from .verifier import GateVerdict, bench_floor_gate, determinism_gate, store_verify_gate

__all__ = [
    "CAMPAIGN_SCHEMA",
    "EVENT_SCHEMA",
    "VOLATILE_FIELDS",
    "CampaignPlan",
    "CampaignResult",
    "CampaignScheduler",
    "CampaignTask",
    "EventLog",
    "GateVerdict",
    "TaskPayload",
    "bench_floor_gate",
    "build_campaign_plan",
    "campaign_key",
    "config_digest",
    "determinism_gate",
    "deterministic_view",
    "execute_campaign_task",
    "output_digest",
    "read_events",
    "run_campaign_plan",
    "store_verify_gate",
    "task_input_digest",
]
