"""Deterministic ready-set scheduling of campaign plans onto the engine.

The scheduler walks a validated :class:`~repro.orchestrator.plan.CampaignPlan`
in waves: every task whose dependencies have completed is dispatched — in
topological order with the plan's stable tie-break — as one engine wave
through :meth:`~repro.engine.ExecutionEngine.run_tasks`, so the same
serial/thread/process executors (and the global worker budget) that run the
flat experiments run campaigns too.  Determinism is scheduler-side: events
are emitted only from the coordinating thread, in dispatch order for starts
and submission order for completions, so two equivalent runs produce
byte-identical event sequences (rule 10) no matter how workers interleave.

Task payloads are process-portable by construction: a frozen
:class:`TaskPayload` of plain strings/tuples executed by the module-level
:func:`execute_campaign_task`, which resolves the worker-local evaluation
context via the process-cached ``shared_context`` — the same pattern as the
flat runner's process path, so campaign outputs are byte-identical to it.

With an :class:`~repro.store.ArtifactStore`, each completed cacheable task
is recorded under :func:`~repro.orchestrator.plan.campaign_key` — its id
plus canonical input digest.  On a later run, a task whose input digest
matches is *clean*: its output loads from the store (``task_reused``) and
only the dirty subgraph re-executes.  Gates never reuse; they verify the
present run.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

from ..engine import ExecutionEngine, TaskSpec
from ..errors import (
    BackendError,
    CampaignGateFailed,
    CampaignPlanError,
    CampaignTaskFailed,
    TransientBackendError,
    is_permanent_fault,
)
from .events import EventLog
from .plan import CampaignPlan, campaign_key, output_digest, task_input_digest


@dataclass(frozen=True)
class TaskPayload:
    """Everything one campaign task execution needs, as picklable plain data.

    ``upstream`` carries dependency outputs as sorted ``(task_id, output)``
    pairs; outputs are canonical-JSON values (dicts of lists/strings/ints),
    identical whether computed fresh or loaded from the store.
    """

    task_id: str
    kind: str
    params: tuple[tuple[str, object], ...]
    preset: str
    attempt: int
    upstream: tuple[tuple[str, dict], ...] = ()
    store_spec: tuple[str, str | None] | None = None

    def params_dict(self) -> dict:
        return dict(self.params)

    def upstream_dict(self) -> dict[str, dict]:
        return dict(self.upstream)


def _context(payload: TaskPayload):
    from ..experiments.context import shared_context

    return shared_context(payload.preset, None, None, None, None, payload.store_spec)


def _suite_digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _run_stage(payload: TaskPayload) -> dict:
    """Pipeline stages: generate, validate (repair outcomes), fuzz."""
    params = payload.params_dict()
    stage = params["stage"]
    ctx = _context(payload)
    if stage == "generate":
        run = ctx.generation_run
        texts = [result.suite_text() for result in run.results.values()]
        return {
            "stage": "generate",
            "handlers": len(run.results),
            "valid": sum(1 for result in run.results.values() if result.valid),
            "syscalls": run.total_syscalls(),
            "digest": _suite_digest("\x00".join(texts)),
        }
    if stage == "validate":
        run = ctx.generation_run
        outcomes = [
            [handler, bool(result.valid), bool(result.repaired), result.syscall_count]
            for handler, result in run.results.items()
        ]
        from .plan import canonical_json

        return {
            "stage": "validate",
            "valid": sum(1 for entry in outcomes if entry[1]),
            "repaired": sum(1 for entry in outcomes if entry[2]),
            "digest": _suite_digest(canonical_json(outcomes)),
        }
    if stage == "fuzz":
        from ..fuzzer import run_campaign

        suite = ctx.syzkaller_corpus.merge_corpus(ctx.kernelgpt_corpus()).flatten("campaign")
        campaign = run_campaign(ctx.kernel, suite, ctx.config.seed, params["budget"])
        return {
            "stage": "fuzz",
            "programs": campaign.executed_programs,
            "calls": campaign.executed_calls,
            "coverage": campaign.coverage_count,
            "crashes": campaign.unique_crashes,
        }
    raise CampaignPlanError(f"unknown pipeline stage {stage!r}")


def _run_report(payload: TaskPayload) -> dict:
    """Per-table report tasks: render one experiment to its canonical text."""
    from ..experiments.runner import run_experiment_for_preset, run_table1_for_preset

    name = payload.params_dict()["experiment"]
    overrides = (None, None, None, None, payload.store_spec)
    if name == "table1":
        table, audit = run_table1_for_preset(payload.preset, *overrides)
        return {"experiment": name, "text": table.render(), "audit": audit}
    result = run_experiment_for_preset(name, payload.preset, *overrides)
    return {"experiment": name, "text": result.render()}


def _run_gate(payload: TaskPayload) -> dict:
    from .verifier import run_gate

    params = payload.params_dict()
    return run_gate(params["gate"], params, payload.preset, payload.upstream_dict())


def _run_echo(payload: TaskPayload) -> dict:
    """Test handler: a pure function of its parameters and upstream digests."""
    params = payload.params_dict()
    return {
        "echo": params.get("text", ""),
        "upstream": sorted(payload.upstream_dict()),
    }


def _run_fail_until(payload: TaskPayload) -> dict:
    """Test handler: fails deterministically until attempt ``succeed_at``."""
    succeed_at = payload.params_dict().get("succeed_at", 1)
    if payload.attempt < succeed_at:
        raise RuntimeError(
            f"transient failure on attempt {payload.attempt} (succeeds at {succeed_at})"
        )
    return {"echo": "recovered", "attempt": payload.attempt}


def _run_fault_until(payload: TaskPayload) -> dict:
    """Test handler: raises classified backend faults until ``succeed_at``.

    Unlike :func:`_run_fail_until` (unclassified ``RuntimeError``), the
    raised error carries the resilience taxonomy: ``transient: true``
    (default) raises :class:`TransientBackendError` — retried within the
    task's budget — while ``transient: false`` raises a permanent
    :class:`BackendError`, which the scheduler fails fast regardless of
    remaining retries.
    """
    params = payload.params_dict()
    succeed_at = params.get("succeed_at", 1)
    if payload.attempt < succeed_at:
        message = f"backend fault on attempt {payload.attempt} (succeeds at {succeed_at})"
        if params.get("transient", True):
            raise TransientBackendError(message)
        raise BackendError(message)
    return {"echo": "recovered", "attempt": payload.attempt}


#: Task kind → module-level handler; module-level so payload dispatch
#: pickles by name into process workers.
TASK_HANDLERS = {
    "stage": _run_stage,
    "report": _run_report,
    "gate": _run_gate,
    "echo": _run_echo,
    "fail_until": _run_fail_until,
    "fault_until": _run_fault_until,
}

#: Task kind → module whose import registers the handler into
#: :data:`TASK_HANDLERS`.  The self-registration chokepoint for extension
#: layers (differential campaigns): a process-pool worker that unpickles a
#: payload of an extension kind imports the module lazily instead of
#: requiring the parent to have pre-imported it into every worker.
EXTENSION_HANDLER_MODULES = {
    "cell_fuzz": "repro.diffcampaign.tasks",
    "cell_report": "repro.diffcampaign.tasks",
    "diff": "repro.diffcampaign.tasks",
}


def execute_campaign_task(payload: TaskPayload) -> dict:
    """Run one campaign task; the engine task function for every kind."""
    handler = TASK_HANDLERS.get(payload.kind)
    if handler is None:
        module_name = EXTENSION_HANDLER_MODULES.get(payload.kind)
        if module_name is not None:
            import importlib

            importlib.import_module(module_name)
            handler = TASK_HANDLERS.get(payload.kind)
    if handler is None:
        raise CampaignPlanError(f"unknown task kind {payload.kind!r}")
    return handler(payload)


@dataclass
class TaskOutcome:
    """One completed task: its output plus the digests that identify it."""

    task_id: str
    output: dict
    input_digest: str
    output_digest: str
    reused: bool = False
    attempts: int = 0
    duration: float = 0.0


@dataclass
class CampaignResult:
    """Everything a campaign run produced, keyed for deterministic reads."""

    outcomes: dict[str, TaskOutcome] = field(default_factory=dict)
    failures: dict[str, BaseException] = field(default_factory=dict)
    skipped: dict[str, tuple[str, ...]] = field(default_factory=dict)
    gate_verdicts: dict[str, dict] = field(default_factory=dict)
    wall: float = 0.0

    @property
    def executed(self) -> int:
        return sum(1 for outcome in self.outcomes.values() if not outcome.reused)

    @property
    def reused(self) -> int:
        return sum(1 for outcome in self.outcomes.values() if outcome.reused)

    @property
    def failed_gates(self) -> tuple[str, ...]:
        return tuple(
            sorted(
                task_id
                for task_id, verdict in self.gate_verdicts.items()
                if not verdict.get("passed")
            )
        )

    @property
    def passed(self) -> bool:
        return not self.failures and not self.skipped and not self.failed_gates

    def output(self, task_id: str) -> dict:
        return self.outcomes[task_id].output

    def raise_for_status(self) -> None:
        """Surface the run's failure as the matching typed error, if any."""
        if self.failures:
            task_id = sorted(self.failures)[0]
            cause = self.failures[task_id]
            outcome_attempts = getattr(cause, "attempts", None)
            raise CampaignTaskFailed(
                f"campaign task {task_id!r} failed: {type(cause).__name__}: {cause}",
                task_id=task_id,
                attempts=outcome_attempts if isinstance(outcome_attempts, int) else 0,
                cause=cause,
            )
        if self.failed_gates:
            details = {
                task_id: str(self.gate_verdicts[task_id].get("detail", ""))
                for task_id in self.failed_gates
            }
            raise CampaignGateFailed(
                f"quality gate(s) failed: {', '.join(self.failed_gates)}",
                gates=self.failed_gates,
                details=details,
            )


class CampaignScheduler:
    """Runs one campaign plan to completion on an execution engine."""

    def __init__(
        self,
        plan: CampaignPlan,
        engine: ExecutionEngine | None = None,
        *,
        preset: str = "quick",
        store=None,
        events: EventLog | None = None,
    ):
        self.plan = plan
        self.engine = engine if engine is not None else ExecutionEngine(jobs=1)
        self.preset = preset
        self.store = store
        self.events = events if events is not None else EventLog()
        self._store_spec = (str(store.root), None) if store is not None else None

    def run(self) -> CampaignResult:
        """Execute every reachable task; returns the full result record.

        The loop is wave-structured: compute the ready set in topological
        order, serve clean tasks from the store, dispatch the rest as one
        engine wave, then fold completions (and retries) back in.  All event
        emission happens here, on the coordinating thread, in deterministic
        order.
        """
        plan, events = self.plan, self.events
        order = plan.topological_order()
        cfg_digest = plan.config_digest()
        result = CampaignResult()
        attempts: dict[str, int] = {}
        input_digests: dict[str, str] = {}
        announced: set[str] = set()
        started = time.perf_counter()
        events.emit(
            "campaign_started",
            campaign=plan.name,
            config_digest=cfg_digest,
            tasks=len(order),
            jobs=self.engine.jobs,
            executor=self.engine.executor.name,
        )
        while True:
            progressed = False
            for task in order:
                done = (
                    task.task_id in result.outcomes
                    or task.task_id in result.failures
                    or task.task_id in result.skipped
                )
                if done:
                    continue
                blocked_on = tuple(
                    sorted(
                        dep
                        for dep in task.depends_on
                        if dep in result.failures or dep in result.skipped
                    )
                )
                if blocked_on:
                    result.skipped[task.task_id] = blocked_on
                    events.emit("task_skipped", task_id=task.task_id, blocked_on=list(blocked_on))
                    progressed = True
            ready = [
                task
                for task in order
                if task.task_id not in result.outcomes
                and task.task_id not in result.failures
                and task.task_id not in result.skipped
                and all(dep in result.outcomes for dep in task.depends_on)
            ]
            if not ready:
                break
            wave: list = []
            for task in ready:
                digest = input_digests.get(task.task_id)
                if digest is None:
                    digest = task_input_digest(
                        task,
                        cfg_digest,
                        {
                            dep: result.outcomes[dep].output_digest
                            for dep in task.depends_on
                        },
                    )
                    input_digests[task.task_id] = digest
                if task.task_id not in announced:
                    announced.add(task.task_id)
                    events.emit("task_scheduled", task_id=task.task_id, digest=digest)
                if (
                    self.store is not None
                    and task.cacheable
                    and attempts.get(task.task_id, 0) == 0
                ):
                    key = campaign_key(task.task_id, digest)
                    try:
                        stored = self.store.load(key)
                    except KeyError:
                        stored = None
                    if stored is not None:
                        out_digest = output_digest(stored)
                        result.outcomes[task.task_id] = TaskOutcome(
                            task.task_id, stored, digest, out_digest, reused=True
                        )
                        events.emit(
                            "task_reused",
                            task_id=task.task_id,
                            digest=digest,
                            output_digest=out_digest,
                        )
                        progressed = True
                        continue
                wave.append((task, digest))
            if not wave:
                if progressed:
                    continue
                break
            specs = []
            for task, digest in wave:
                attempts[task.task_id] = attempts.get(task.task_id, 0) + 1
                events.emit(
                    "task_started",
                    task_id=task.task_id,
                    digest=digest,
                    attempt=attempts[task.task_id],
                )
                payload = TaskPayload(
                    task_id=task.task_id,
                    kind=task.kind,
                    params=task.params,
                    preset=self.preset,
                    attempt=attempts[task.task_id],
                    upstream=tuple(
                        sorted(
                            (dep, result.outcomes[dep].output) for dep in task.depends_on
                        )
                    ),
                    store_spec=self._store_spec,
                )
                specs.append(
                    TaskSpec(key=task.task_id, fn=execute_campaign_task, args=(payload,))
                )
            for (task, digest), task_result in zip(
                wave, self.engine.run_tasks("campaign", specs, rethrow=False)
            ):
                used = attempts[task.task_id]
                if task_result.error is not None:
                    error_text = f"{type(task_result.error).__name__}: {task_result.error}"
                    if used <= task.retries and not is_permanent_fault(task_result.error):
                        events.emit(
                            "task_retried",
                            task_id=task.task_id,
                            digest=digest,
                            attempt=used,
                            error=error_text,
                        )
                    else:
                        failure = task_result.error
                        failure.attempts = used
                        result.failures[task.task_id] = failure
                        events.emit(
                            "task_failed",
                            task_id=task.task_id,
                            digest=digest,
                            attempt=used,
                            error=error_text,
                        )
                    continue
                value = task_result.value
                out_digest = output_digest(value)
                result.outcomes[task.task_id] = TaskOutcome(
                    task.task_id,
                    value,
                    digest,
                    out_digest,
                    attempts=used,
                    duration=task_result.duration,
                )
                events.emit(
                    "task_finished",
                    task_id=task.task_id,
                    digest=digest,
                    output_digest=out_digest,
                    attempt=used,
                    duration=round(task_result.duration, 6),
                )
                if task.kind == "gate":
                    result.gate_verdicts[task.task_id] = value
                    events.emit(
                        "gate_passed" if value.get("passed") else "gate_failed",
                        task_id=task.task_id,
                        gate=str(value.get("gate", "")),
                        detail=str(value.get("detail", "")),
                    )
                if self.store is not None and task.cacheable:
                    key = campaign_key(task.task_id, digest)
                    if key not in self.store:
                        self.store.save(key, value)
        result.wall = time.perf_counter() - started
        events.emit(
            "campaign_finished",
            passed=result.passed,
            executed=result.executed,
            reused=result.reused,
            failed=len(result.failures),
            gates_failed=len(result.failed_gates),
            wall=round(result.wall, 6),
        )
        return result


def run_campaign_plan(
    plan: CampaignPlan,
    *,
    engine: ExecutionEngine | None = None,
    preset: str = "quick",
    store=None,
    events: EventLog | None = None,
) -> CampaignResult:
    """Convenience wrapper: schedule ``plan`` and return its result."""
    scheduler = CampaignScheduler(plan, engine, preset=preset, store=store, events=events)
    return scheduler.run()


__all__ = [
    "EXTENSION_HANDLER_MODULES",
    "TASK_HANDLERS",
    "CampaignResult",
    "CampaignScheduler",
    "TaskOutcome",
    "TaskPayload",
    "execute_campaign_task",
    "run_campaign_plan",
]
