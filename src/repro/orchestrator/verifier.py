"""Quality gates: first-class terminal campaign tasks with structured verdicts.

A gate is an ordinary :class:`~repro.orchestrator.plan.CampaignTask` of kind
``gate`` that *completes* with a :class:`GateVerdict` — pass/fail plus a
human-readable detail and machine-readable metrics — rather than raising.
The scheduler records the verdict as a ``gate_passed``/``gate_failed``
event and, once every reachable task has run, fails the campaign with a
typed :class:`~repro.errors.CampaignGateFailed` if any verdict failed, so
one bad gate never hides another.

Three gates ship with the standard plan:

``determinism``
    Re-runs one report task, deterministically sampled from the campaign's
    own outputs, against a *fresh* context (no store binding — the whole
    pipeline recomputes live) and byte-compares the rendered text.  The
    executable form of DESIGN.md's determinism rules.
``bench_floors``
    Reads every ``benchmarks/BENCH_*.json`` trajectory and checks the last
    row's headline against its recorded ``check_floor`` — the same contract
    the ``--check`` mode of each benchmark enforces in CI.
``store_verify``
    Runs :meth:`~repro.store.ArtifactStore.verify` over the campaign's
    artifact store: every manifest entry re-hashed against its blob.

Gates are ``cacheable=False``: verification must observe the present run,
never a recorded verdict.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .plan import canonical_json, content_digest, output_digest


@dataclass
class GateVerdict:
    """Structured pass/fail outcome of one quality gate."""

    gate: str
    passed: bool
    detail: str
    metrics: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "gate": self.gate,
            "passed": self.passed,
            "detail": self.detail,
            "metrics": self.metrics,
        }


def _fuzzer_headline(row: dict) -> float:
    return max(cell["speedup"] for cell in row["budgets"].values())


def _service_headline(row: dict) -> float:
    if "headline_reduction" in row:
        return row["headline_reduction"]
    return max(cell["round_trip_reduction"] for cell in row["grid"].values())


def _orchestrator_headline(row: dict) -> float:
    return row["reuse_speedup"]


def _resilience_headline(row: dict) -> float:
    return row["overhead_pct"]


#: Benchmark name → headline extractor over the trajectory's last row.  The
#: headline is the figure each benchmark's ``--check`` mode compares against
#: its floor (or ceiling); the gate applies the identical comparison.
HEADLINE_EXTRACTORS = {
    "fuzzer-hotloop": _fuzzer_headline,
    "service-throughput": _service_headline,
    "campaign-orchestrator": _orchestrator_headline,
    "diff-campaign": _orchestrator_headline,
    "resilience-overhead": _resilience_headline,
}


def check_recorded_floor(path: Path) -> dict:
    """Check one BENCH_*.json trajectory's last row against its bound.

    Most trajectories record a ``check_floor`` (headline must stay at or
    above it: speedups, round-trip reductions); overhead-style trajectories
    record a ``check_ceiling`` instead (headline must stay at or below it).
    """
    name = path.name
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        benchmark = data["benchmark"]
        row = data["rows"][-1]
        if "check_floor" in row:
            bound, is_floor = row["check_floor"], True
        else:
            bound, is_floor = row["check_ceiling"], False
    except (ValueError, KeyError, IndexError) as error:
        return {"file": name, "passed": False, "detail": f"unreadable trajectory: {error!r}"}
    extractor = HEADLINE_EXTRACTORS.get(benchmark)
    if extractor is None:
        headline = row.get("headline")
        if headline is None:
            return {
                "file": name,
                "passed": False,
                "detail": f"no headline extractor for benchmark {benchmark!r}",
            }
    else:
        try:
            headline = extractor(row)
        except (KeyError, ValueError, TypeError) as error:
            return {"file": name, "passed": False, "detail": f"malformed last row: {error!r}"}
    passed = headline >= bound if is_floor else headline <= bound
    bound_name = "floor" if is_floor else "ceiling"
    detail = f"{benchmark}: headline {headline:.2f} vs {bound_name} {bound:.2f}"
    return {
        "file": name,
        "passed": passed,
        "detail": detail,
        "benchmark": benchmark,
        "headline": headline,
        bound_name: bound,
    }


def bench_floor_gate(bench_dir: str | None) -> GateVerdict:
    """Every recorded benchmark trajectory must sit at or above its floor."""
    directory = Path(bench_dir) if bench_dir else Path("benchmarks")
    trajectories = sorted(directory.glob("BENCH_*.json")) if directory.is_dir() else []
    if not trajectories:
        return GateVerdict(
            "bench_floors",
            True,
            f"no benchmark trajectories under {directory} (vacuous pass)",
            {"trajectories": {}},
        )
    results = [check_recorded_floor(path) for path in trajectories]
    failed = [result for result in results if not result["passed"]]
    detail = "; ".join(result["detail"] for result in results)
    return GateVerdict(
        "bench_floors",
        not failed,
        detail,
        {"trajectories": {result["file"]: result for result in results}},
    )


def store_verify_gate(store_root: str) -> GateVerdict:
    """The campaign's artifact store must pass full integrity verification."""
    from ..errors import StoreCorruption, StoreError
    from ..store import ArtifactStore

    try:
        store = ArtifactStore(store_root)
        verified = store.verify()
    except (StoreCorruption, StoreError) as error:
        return GateVerdict("store_verify", False, f"{type(error).__name__}: {error}")
    return GateVerdict(
        "store_verify",
        True,
        f"verified {verified} artifact(s) in {store_root}",
        {"artifacts": verified},
    )


def sample_report(reports: dict[str, dict]) -> str:
    """Deterministically sample one report task id from the campaign outputs.

    The choice is a function of the report set and their output digests —
    stable across jobs/executor for equivalent runs, but rotating as content
    evolves, so over a trajectory of runs every table gets audited.
    """
    ids = sorted(reports)
    seed = content_digest(
        *(part for task_id in ids for part in (task_id, output_digest(reports[task_id])))
    )
    return ids[int(seed[:16], 16) % len(ids)]


def determinism_gate(preset: str, reports: dict[str, dict]) -> GateVerdict:
    """Re-run one sampled report live (no store) and byte-compare the output."""
    from ..experiments.runner import run_experiment_for_preset, run_table1_for_preset

    if not reports:
        return GateVerdict("determinism", True, "no report tasks to sample (vacuous pass)")
    task_id = sample_report(reports)
    recorded = reports[task_id]
    name = task_id.split(":", 1)[1]
    if name == "table1":
        table, audit = run_table1_for_preset(preset)
        fresh = {"experiment": name, "text": table.render(), "audit": audit}
    else:
        fresh = {"experiment": name, "text": run_experiment_for_preset(name, preset).render()}
    identical = canonical_json(fresh) == canonical_json(recorded)
    if identical:
        detail = f"{task_id} re-run byte-identical"
    else:
        detail = (
            f"{task_id} re-run diverged: recorded {len(recorded.get('text', ''))} chars "
            f"(digest {output_digest(recorded)[:12]}), fresh {len(fresh['text'])} chars "
            f"(digest {output_digest(fresh)[:12]})"
        )
    return GateVerdict("determinism", identical, detail, {"sampled": task_id})


def run_gate(gate: str, params: dict, preset: str, upstream: dict[str, dict]) -> dict:
    """Dispatch one gate task; returns the verdict as a plain dict."""
    if gate == "determinism":
        reports = {
            task_id: output for task_id, output in upstream.items() if task_id.startswith("report:")
        }
        return determinism_gate(preset, reports).as_dict()
    if gate == "bench_floors":
        return bench_floor_gate(params.get("bench_dir")).as_dict()
    if gate == "store_verify":
        return store_verify_gate(params["store"]).as_dict()
    from ..errors import CampaignPlanError

    raise CampaignPlanError(f"unknown gate {gate!r}")


__all__ = [
    "HEADLINE_EXTRACTORS",
    "GateVerdict",
    "bench_floor_gate",
    "check_recorded_floor",
    "determinism_gate",
    "run_gate",
    "sample_report",
    "store_verify_gate",
]
