"""Schema'd append-only JSONL event log for campaigns and the serving layer.

One campaign (or ``serve`` invocation) writes one log: a sequence of JSON
objects, one per line, each carrying a ``type`` from :data:`EVENT_SCHEMA`, a
monotonically increasing ``seq``, a wall-clock ``ts``, and the type's
required fields.  The log is the machine-readable face of a run — CI asserts
on events (gate verdicts, ``task_reused`` counts) instead of scraping
stdout, and partial re-runs are explained by it rather than inferred.

Determinism contract (DESIGN.md rule 10): two equivalent runs — same plan,
config, and store state, any jobs/executor — produce event logs whose
:func:`deterministic_view` sequences are byte-identical.  Everything timing-
or placement-dependent (``ts``, durations, worker names, jobs/executor
shape, cache and coalescer counters) lives in :data:`VOLATILE_FIELDS`;
everything else (event order, task ids, digests, attempts, verdicts) is
pinned.  The scheduler guarantees this by emitting every event from the
coordinating thread in dispatch order, never from workers.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from ..errors import EventLogError

#: Fields excluded from rule-10 byte comparison: anything measuring wall
#: time or reflecting execution shape (parallelism, cache warmth) rather
#: than campaign content.
VOLATILE_FIELDS = frozenset(
    {"ts", "duration", "wall", "elapsed", "worker", "jobs", "executor", "stats"}
)

#: Event type → required payload fields (beyond ``type``/``seq``/``ts``).
#: Extra fields are allowed — the schema is a floor, not a ceiling — so
#: emitters can attach volatile diagnostics without a schema bump.
EVENT_SCHEMA: dict[str, frozenset[str]] = {
    # Campaign lifecycle (repro.orchestrator.scheduler).
    "campaign_started": frozenset({"campaign", "config_digest", "tasks"}),
    "campaign_finished": frozenset({"passed", "executed", "reused", "failed", "gates_failed"}),
    "task_scheduled": frozenset({"task_id", "digest"}),
    "task_started": frozenset({"task_id", "digest", "attempt"}),
    "task_retried": frozenset({"task_id", "digest", "attempt", "error"}),
    "task_finished": frozenset({"task_id", "digest", "output_digest", "attempt"}),
    "task_reused": frozenset({"task_id", "digest", "output_digest"}),
    "task_failed": frozenset({"task_id", "digest", "attempt", "error"}),
    "task_skipped": frozenset({"task_id", "blocked_on"}),
    "gate_passed": frozenset({"task_id", "gate", "detail"}),
    "gate_failed": frozenset({"task_id", "gate", "detail"}),
    # Differential campaigns (repro.diffcampaign): one cell per config.
    "config_cell_planned": frozenset({"cell", "config_digest"}),
    "config_cell_finished": frozenset({"cell", "config_digest", "output_digest"}),
    # Serving-layer lifecycle (kernelgpt-repro serve --events).
    "job_admitted": frozenset({"job_id", "kind", "tenant", "label"}),
    "job_finished": frozenset({"job_id", "ok", "queries"}),
    "coalescer_flush": frozenset({"submissions", "requests", "distinct"}),
    # Resilience layer (repro.llm.faults / repro.llm.resilience).
    "backend_retry": frozenset({"attempt", "failed", "error"}),
    "breaker_transition": frozenset({"member", "from", "to"}),
    "job_retried": frozenset({"job_id", "attempt", "error"}),
    "observer_error": frozenset({"error"}),
    "service_drained": frozenset({"clean"}),
}


def validate_event(record: dict, *, line: int | None = None) -> dict:
    """Check one event record against :data:`EVENT_SCHEMA`; return it."""
    if not isinstance(record, dict):
        raise EventLogError(f"event record is {type(record).__name__}, expected object", line=line)
    kind = record.get("type")
    if kind not in EVENT_SCHEMA:
        raise EventLogError(f"unknown event type {kind!r}", line=line)
    for field in ("seq", "ts"):
        if field not in record:
            raise EventLogError(f"event {kind!r} is missing {field!r}", line=line)
    missing = sorted(EVENT_SCHEMA[kind] - record.keys())
    if missing:
        raise EventLogError(f"event {kind!r} is missing required fields {missing}", line=line)
    return record


def deterministic_view(record: dict) -> dict:
    """The rule-10 comparable projection of an event: volatile fields dropped."""
    return {key: value for key, value in record.items() if key not in VOLATILE_FIELDS}


class EventLog:
    """Thread-safe append-only event writer (and in-memory record).

    Events are validated on emit, held in :attr:`events`, and — when a path
    is given — appended to the file as canonical JSON lines, flushed per
    event so a crashed run still leaves a readable prefix.
    """

    def __init__(self, path: str | Path | None = None, *, mirror=None):
        self.path = Path(path) if path is not None else None
        self.events: list[dict] = []
        #: Optional callable invoked with each record after it is written —
        #: the CLI's stderr progress stream.  Never fed back into the log.
        self.mirror = mirror
        self._lock = threading.Lock()
        self._seq = 0
        self._handle = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")

    def emit(self, type: str, **fields) -> dict:
        """Append one event; returns the full record (with ``seq``/``ts``)."""
        with self._lock:
            self._seq += 1
            record = {"type": type, "seq": self._seq, "ts": round(time.time(), 6), **fields}
            validate_event(record)
            self.events.append(record)
            if self._handle is not None:
                line = json.dumps(record, sort_keys=True, ensure_ascii=False, separators=(",", ":"))
                self._handle.write(line + "\n")
                self._handle.flush()
        if self.mirror is not None:
            self.mirror(record)
        return record

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_events(path: str | Path) -> list[dict]:
    """Read and schema-validate a JSONL event log."""
    records: list[dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as error:
                raise EventLogError(f"event line is not valid JSON: {error}", line=number)
            records.append(validate_event(record, line=number))
    return records


__all__ = [
    "EVENT_SCHEMA",
    "VOLATILE_FIELDS",
    "EventLog",
    "validate_event",
    "deterministic_view",
    "read_events",
]
