"""Exception hierarchy shared by every subsystem of the reproduction.

All library errors derive from :class:`ReproError` so that callers can catch
one base class at API boundaries.  Subsystem-specific errors refine it with
the context a user needs to diagnose the failure (which spec, which handler,
which prompt).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class SyzlangError(ReproError):
    """Base class for errors in the syzlang subsystem."""


class SyzlangParseError(SyzlangError):
    """Raised when syzlang source text cannot be parsed.

    Attributes
    ----------
    line:
        1-based line number of the offending construct, when known.
    snippet:
        The source line (or fragment) that failed to parse.
    """

    def __init__(self, message: str, *, line: int | None = None, snippet: str | None = None):
        self.line = line
        self.snippet = snippet
        location = f" (line {line})" if line is not None else ""
        detail = f": {snippet!r}" if snippet else ""
        super().__init__(f"{message}{location}{detail}")


class SpecValidationError(SyzlangError):
    """Raised when validation is asked to fail hard on an invalid spec suite."""


class KernelModelError(ReproError):
    """Raised when the synthetic kernel substrate is constructed inconsistently."""


class ConfigError(KernelModelError):
    """Raised when a kernel config axis or preset is structurally invalid.

    Covers malformed config option names, duplicate axes within a preset,
    presets that mix ``enable_all`` with explicit axes, and lookups of
    unknown preset names.  Raised at model-construction / resolution time,
    before any pruning or campaign scheduling happens.
    """


class ExtractionError(ReproError):
    """Raised when the source extractor cannot parse or locate a construct."""


class CLexError(ExtractionError):
    """Raised when the C-subset lexer hits an unrecognised character sequence."""


class CParseError(ExtractionError):
    """Raised when the C-subset parser cannot make sense of a declaration."""


class LLMError(ReproError):
    """Base class for analysis-LLM backend errors."""


class LLMProtocolError(LLMError):
    """Raised when a backend returns a completion the pipeline cannot interpret."""


class LLMBudgetExceeded(LLMError):
    """Raised when a backend exceeds its configured token or query budget."""


class BackendError(LLMError):
    """Base class for backend serving faults (the resilience-layer taxonomy).

    A plain ``BackendError`` is **permanent**: retrying the same request
    cannot help (authentication failure, an invalid model, a request the
    provider rejects deterministically), so retry layers fail fast on it.
    Transient faults derive from :class:`TransientBackendError` instead.

    Batch state
    -----------
    A failing ``complete_batch`` may have served part of its batch before
    the fault.  Raisers attach that partial outcome via
    :meth:`attach_batch_state` so retry layers re-send only what failed:

    ``served``
        ``{position: Completion}`` for requests that completed, positions
        relative to the request sequence passed to the *raising*
        ``complete_batch`` call.  Served requests are already metered and
        budget-charged; re-sending them would double-charge.
    ``failed``
        ``((position, error), ...)`` for requests that did not complete, in
        batch order.  ``None`` (alongside ``served is None``) means the
        raiser carried no batch state and the whole batch must be treated
        as failed.
    """

    #: Class-level default; instances never mutate the class attributes.
    served: "dict[int, object] | None" = None
    failed: "tuple[tuple[int, BaseException], ...] | None" = None
    #: Retry layers stamp how many attempts were made before giving up.
    attempts: int | None = None

    def __init__(self, message: str, *, route: str | None = None, subject: str | None = None):
        self.route = route
        self.subject = subject
        super().__init__(message)

    @property
    def is_transient(self) -> bool:
        """Whether a retry of the same request can succeed."""
        return isinstance(self, TransientBackendError)

    def attach_batch_state(
        self,
        served: "dict[int, object]",
        failed: "tuple[tuple[int, BaseException], ...]",
    ) -> None:
        """Record the partial outcome of the batch this error aborted."""
        self.served = dict(served)
        self.failed = tuple(failed)


class TransientBackendError(BackendError):
    """A backend fault that a retry of the same request can repair."""


class BackendTimeout(TransientBackendError):
    """The backend did not answer within its deadline.

    Attributes
    ----------
    timeout:
        The deadline that elapsed, in seconds, when known.
    """

    def __init__(self, message: str, *, timeout: float | None = None, **context):
        self.timeout = timeout
        super().__init__(message, **context)


class RateLimited(TransientBackendError):
    """The backend shed load; ``retry_after`` is its requested back-off.

    Attributes
    ----------
    retry_after:
        Seconds the backend asked the caller to wait before retrying;
        retry policies honour it as a lower bound on their computed delay.
    """

    def __init__(self, message: str, *, retry_after: float = 0.0, **context):
        self.retry_after = retry_after
        super().__init__(message, **context)


class MalformedReply(TransientBackendError):
    """The backend answered, but with a truncated or unparseable reply.

    Classified transient: completions are sampled, so re-asking the same
    prompt is expected to produce a well-formed reply — which is also what
    makes chaos runs converge to the fault-free output.

    Attributes
    ----------
    excerpt:
        A short prefix of the malformed reply text, when known.
    """

    def __init__(self, message: str, *, excerpt: str | None = None, **context):
        self.excerpt = excerpt
        super().__init__(message, **context)


def is_transient_fault(error: BaseException) -> bool:
    """True for faults a retry can repair (:class:`TransientBackendError`)."""
    return isinstance(error, TransientBackendError)


def is_permanent_fault(error: BaseException) -> bool:
    """True for classified-permanent backend faults (retrying cannot help).

    Only a :class:`BackendError` that is *not* transient counts: unclassified
    exceptions (a ``RuntimeError`` from a task body) are not "permanent
    backend faults" — retry-budget layers keep their historical behaviour
    for those.
    """
    return isinstance(error, BackendError) and not error.is_transient


class GenerationError(ReproError):
    """Raised when the specification-generation pipeline fails irrecoverably."""


class RepairError(GenerationError):
    """Raised when the repair loop exhausts its attempts without a valid spec."""


class FuzzerError(ReproError):
    """Base class for fuzzing-substrate errors."""


class ProgramError(FuzzerError):
    """Raised when a syscall program is structurally invalid."""


class ExecutorError(FuzzerError):
    """Raised when the simulated kernel executor is driven incorrectly."""


class CoverageSpaceMismatch(FuzzerError, ValueError):
    """Raised when bitmaps over different coverage spaces are combined.

    Config-pruned spaces (:func:`repro.kconfig.prune_coverage_space`) make it
    easy to hold bitmaps whose indices mean different labels; silently
    unioning them would produce wrong counts, so ``union`` /
    ``difference_count`` refuse with this typed error instead.  Subclasses
    ``ValueError`` for compatibility with callers that guarded the historical
    untyped raise.

    Attributes
    ----------
    left_digest / right_digest:
        The two space digests that failed to align, when known.
    """

    def __init__(
        self,
        message: str,
        *,
        left_digest: str | None = None,
        right_digest: str | None = None,
    ):
        self.left_digest = left_digest
        self.right_digest = right_digest
        super().__init__(message)


class ExperimentError(ReproError):
    """Raised when an experiment harness is misconfigured."""


class StoreError(ReproError):
    """Base class for persistent artifact-store failures (:mod:`repro.store`)."""


class StoreCorruption(StoreError):
    """Raised when stored bytes fail verification against their digest.

    The store's integrity contract: a load either returns exactly the bytes
    that were saved, or raises this — never silently wrong content.  Raised
    for blobs whose content no longer hashes to their name (bit flips,
    truncation), manifest lines whose check digest does not match
    (hand-edits, torn writes), manifest entries naming a missing blob, and
    lockfiles whose whole-file checksum fails.

    Attributes
    ----------
    path:
        Filesystem path of the corrupt artifact, when known.
    key:
        Canonical store key whose load surfaced the corruption, when known.
    """

    def __init__(self, message: str, *, path: str | None = None, key: str | None = None):
        self.path = path
        self.key = key
        super().__init__(message)


class StoreLockTimeout(StoreError):
    """Raised when the store's inter-process ``flock`` cannot be acquired in time.

    The store's advisory lock is held only around manifest reads/appends, so
    contention is normally milliseconds; a bounded wait turns a crashed or
    wedged lock holder into a typed, diagnosable error instead of an
    indefinite cross-process hang.

    Attributes
    ----------
    path:
        Filesystem path of the lock file.
    timeout:
        Seconds waited before giving up.
    """

    def __init__(self, message: str, *, path: str | None = None, timeout: float | None = None):
        self.path = path
        self.timeout = timeout
        super().__init__(message)


class FrozenStoreMiss(StoreError):
    """Raised when a frozen (lockfile-pinned) run needs an artifact it lacks.

    Frozen mode trades liveness for reproducibility: an artifact absent from
    the lockfile must fail loudly rather than fall through to a live LLM
    call — a silent recomputation would make the "byte-reproducible rerun"
    claim unverifiable.

    Attributes
    ----------
    key:
        Canonical store key of the missing artifact, when known.
    kind:
        Artifact kind (``llm``/``session``/…), when known.
    """

    def __init__(self, message: str, *, key: str | None = None, kind: str | None = None):
        self.key = key
        self.kind = kind
        super().__init__(message)


class AdmissionError(ReproError):
    """Base class for serving-layer admission-control failures.

    The job service refuses work it cannot (or must not) take on with a
    typed error carrying the admission context, so callers — the ``serve``
    runner, load generators, tests — can distinguish "try again later"
    (:class:`ServiceSaturated`) from "this tenant is out of budget"
    (:class:`TenantBudgetExceeded`) without string matching.
    """


class ServiceSaturated(AdmissionError):
    """Raised when the job service (or a worker budget) cannot admit more work.

    Attributes
    ----------
    limit:
        The admission limit that was hit (queue capacity or worker slots),
        when known.
    pending:
        How much work was already admitted at refusal time, when known.
    """

    def __init__(self, message: str, *, limit: int | None = None, pending: int | None = None):
        self.limit = limit
        self.pending = pending
        super().__init__(message)


class TenantBudgetExceeded(AdmissionError):
    """Raised when a tenant's query budget cannot fund a submitted batch.

    Mirrors the backend budget contract (:class:`LLMBudgetExceeded`): the
    in-budget prefix of the batch is still served and charged before the
    error raises, and ``request_index`` names the position — within the
    submitted batch — of the first request that could not be funded, so the
    failure point is identical whether the tenant batches or loops.
    """

    def __init__(self, tenant: str, *, limit: int, requested: int, request_index: int):
        self.tenant = tenant
        self.limit = limit
        self.requested = requested
        self.request_index = request_index
        super().__init__(
            f"tenant {tenant!r} exceeded its query budget of {limit}: "
            f"{requested} distinct queries submitted, request #{request_index} refused"
        )


class CampaignError(ReproError):
    """Base class for campaign-orchestrator failures (:mod:`repro.orchestrator`).

    Campaigns are DAGs of typed tasks with quality gates at the leaves; the
    orchestrator refuses malformed plans (:class:`CampaignPlanError`), reports
    retry-budget exhaustion (:class:`CampaignTaskFailed`) and failed verifier
    gates (:class:`CampaignGateFailed`) with enough context that CI consumes
    the typed error rather than scraping stdout.
    """


class CampaignPlanError(CampaignError):
    """Raised when a campaign plan is structurally invalid.

    Covers duplicate task ids, edges to unknown tasks, self-dependencies and
    cycles — anything that makes a deterministic topological order
    impossible.  Raised at plan construction, before any task runs.
    """


class CampaignTaskFailed(CampaignError):
    """Raised when a campaign task exhausts its retry budget.

    Attributes
    ----------
    task_id:
        Id of the task whose attempts are exhausted.
    attempts:
        How many attempts were made (retry budget + 1).
    cause:
        The error raised by the final attempt, when known.
    """

    def __init__(self, message: str, *, task_id: str, attempts: int, cause: BaseException | None = None):
        self.task_id = task_id
        self.attempts = attempts
        self.cause = cause
        super().__init__(message)


class CampaignGateFailed(CampaignError):
    """Raised when one or more quality gates report a failing verdict.

    Gates are ordinary terminal tasks that *complete* with a structured
    verdict; a failing verdict fails the campaign as a whole once every
    reachable task has run, so one bad gate never hides another.

    Attributes
    ----------
    gates:
        Task ids of the failed gates, in deterministic (sorted) order.
    details:
        Gate id → human-readable failure detail.
    """

    def __init__(self, message: str, *, gates: tuple[str, ...], details: dict[str, str]):
        self.gates = gates
        self.details = dict(details)
        super().__init__(message)


class EventLogError(CampaignError):
    """Raised when an event violates the event-log schema, or a log is unreadable.

    Attributes
    ----------
    line:
        1-based line number of the offending record when reading a file.
    """

    def __init__(self, message: str, *, line: int | None = None):
        self.line = line
        location = f" (line {line})" if line is not None else ""
        super().__init__(f"{message}{location}")
