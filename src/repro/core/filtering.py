"""Target-handler selection (§4 "Specification generation").

KernelGPT does not generate specifications for every handler: it targets
handlers that are loaded in the fuzzing configuration, skips debug-only and
hardware-gated drivers, and focuses on handlers whose existing Syzkaller
descriptions are missing or incomplete.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kernel import KernelCodebase
from ..syzlang import MissingSpecsReport, SpecCorpus, missing_specs_report


@dataclass(frozen=True)
class TargetSelection:
    """The handlers chosen for specification generation."""

    driver_handlers: tuple[str, ...]
    socket_handlers: tuple[str, ...]
    report: MissingSpecsReport

    @property
    def all_handlers(self) -> tuple[str, ...]:
        return self.driver_handlers + self.socket_handlers


def described_interfaces(corpus: SpecCorpus) -> dict[str, list[str]]:
    """Map each handler in a corpus to the interface keys it describes."""
    described: dict[str, list[str]] = {}
    for handler, suite in corpus:
        keys: list[str] = []
        for syscall in suite:
            if syscall.name in ("ioctl", "setsockopt", "getsockopt"):
                keys.append(f"{syscall.name}${syscall.variant}")
            else:
                keys.append(syscall.name)
        described[handler] = keys
    return described


def scan_missing_specs(kernel: KernelCodebase, corpus: SpecCorpus) -> MissingSpecsReport:
    """Compare the kernel's loaded handlers against an existing spec corpus."""
    ground_truth = kernel.ground_truth_interfaces()
    return missing_specs_report(corpus.name, ground_truth, described_interfaces(corpus))


def select_target_handlers(
    kernel: KernelCodebase,
    corpus: SpecCorpus,
    *,
    only_incomplete: bool = True,
) -> TargetSelection:
    """Select the handlers KernelGPT should generate specifications for.

    ``only_incomplete=True`` (the paper's setting for §5.1) restricts the
    targets to loaded handlers with at least one missing syscall description;
    ``False`` selects every loaded handler (used when regenerating specs for
    the "existing" drivers of §5.2).
    """
    report = scan_missing_specs(kernel, corpus)
    drivers: list[str] = []
    sockets: list[str] = []
    for coverage in report.coverages:
        if only_incomplete and not coverage.is_incomplete:
            continue
        if coverage.kind == "driver":
            drivers.append(coverage.handler)
        else:
            sockets.append(coverage.handler)
    return TargetSelection(
        driver_handlers=tuple(drivers),
        socket_handlers=tuple(sockets),
        report=report,
    )


__all__ = ["TargetSelection", "select_target_handlers", "scan_missing_specs", "described_interfaces"]
