"""KernelGPT: the end-to-end specification generator.

This module implements the paper's two automated phases on top of the
substrates:

* **Specification generation** (§3.1) — the three-stage pipeline (identifier
  deduction, type recovery, dependency analysis), each stage running the
  LLM-guided iterative analysis of Algorithm 1 against the source extractor
  and the analysis backend;
* **Specification validation and repair** (§3.2) — validating the assembled
  suite with the syzlang validator and consulting the backend with the error
  messages until the suite validates or the repair budget is exhausted.

The public entry point is :class:`KernelGPT`; one call to
:meth:`KernelGPT.generate_for_handler` produces a :class:`GenerationResult`
holding the generated suite and full provenance (queries, repairs, validity).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ExtractionError, GenerationError, SyzlangParseError
from ..extractor import HandlerInfo, KernelExtractor
from ..kernel import KernelCodebase
from ..llm import LLMBackend, OracleBackend, ParsedReply, PromptLibrary, UnknownItem
from ..syzlang import (
    ArrayType,
    ConstType,
    ConstantTable,
    IntType,
    LenType,
    Param,
    PtrType,
    ResourceDef,
    ResourceRef,
    SpecSuite,
    SpecValidator,
    StringType,
    Syscall,
    ValidationReport,
    parse_suite,
    serialize_suite,
)
from .iterative import DEFAULT_MAX_ITERATIONS, IterativeAnalyzer

_GENERIC_WITH_VARIANT = ("ioctl", "setsockopt", "getsockopt")
_MESSAGE_SYSCALLS = ("bind", "connect", "accept", "sendto", "recvfrom", "sendmsg", "recvmsg", "poll")


@dataclass
class DiscoveredOp:
    """One operation discovered during identifier deduction."""

    identifier: str
    syscall: str
    handler_fn: str | None = None
    arg_type: str | None = None      # struct name, or "scalar"/"none"
    direction: str = "in"
    produces: str | None = None      # resource name created by this op
    produces_handler: str | None = None
    consumes: str | None = None      # resource (other than the primary fd) required


@dataclass
class GenerationResult:
    """Everything produced while generating one handler's specification."""

    handler_name: str
    kind: str
    name: str
    suite: SpecSuite
    device_path: str | None = None
    socket_family: str | None = None
    valid: bool = False
    initially_valid: bool = False
    repaired: bool = False
    repair_rounds_used: int = 0
    queries: int = 0
    validation_report: ValidationReport | None = None
    ops: list[DiscoveredOp] = field(default_factory=list)
    mode: str = "iterative"

    @property
    def syscall_count(self) -> int:
        return len(self.suite)

    @property
    def type_count(self) -> int:
        return self.suite.stats()["types"]

    def suite_text(self) -> str:
        """The generated specification rendered as syzlang text."""
        return serialize_suite(self.suite)


@dataclass
class GenerationRun:
    """Aggregate of a multi-handler generation campaign."""

    results: dict[str, GenerationResult] = field(default_factory=dict)

    def valid_results(self) -> list[GenerationResult]:
        return [result for result in self.results.values() if result.valid]

    def total_syscalls(self) -> int:
        return sum(result.syscall_count for result in self.valid_results())

    def total_types(self) -> int:
        return sum(result.type_count for result in self.valid_results())

    def merged_suite(self, name: str = "kernelgpt") -> SpecSuite:
        merged = SpecSuite(name)
        for result in self.valid_results():
            merged = merged.merge(result.suite)
        merged.name = name
        return merged


class KernelGPT:
    """The specification generator."""

    def __init__(
        self,
        kernel: KernelCodebase,
        backend: LLMBackend | None = None,
        *,
        extractor: KernelExtractor | None = None,
        prompts: PromptLibrary | None = None,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        repair_rounds: int = 3,
        repair: bool = True,
    ):
        self.kernel = kernel
        self.backend = backend or OracleBackend()
        self.extractor = extractor or KernelExtractor(kernel)
        self.prompts = prompts or PromptLibrary()
        self.max_iterations = max_iterations
        self.repair_rounds = repair_rounds
        self.repair_enabled = repair
        self._constants = self.extractor.constants()
        self._validator = SpecValidator(self._constants, warn_unused=False)
        self._analyzer = IterativeAnalyzer(self.backend, self.extractor, max_iterations=max_iterations)
        # Typedef blocks produced by type-stage replies, keyed by struct name.
        self._pending_typedefs: dict[str, str] = {}

    # ------------------------------------------------------------------ API
    def generate_for_handler(self, handler_name: str) -> GenerationResult:
        """Generate, validate and (if needed) repair the spec for one handler."""
        info = self.extractor.handler(handler_name)
        queries_before = self.backend.usage.queries
        name = self._readable_name(info)
        self._pending_typedefs = {}

        ops, device_path, socket_identity = self._identifier_stage(info)
        self._type_stage(info, ops)
        typedefs = self._collect_typedefs(info, ops)
        self._dependency_stage(info, ops)
        secondary_ops, secondary_typedefs = self._analyze_secondary_handlers(info, ops)
        ops.extend(secondary_ops)
        typedefs.update(secondary_typedefs)

        suite = self._assemble(info, name, ops, device_path, socket_identity, typedefs)
        result = GenerationResult(
            handler_name=handler_name,
            kind=info.kind,
            name=name,
            suite=suite,
            device_path=device_path,
            socket_family=socket_identity[0] if socket_identity else None,
            ops=ops,
        )
        self._validate_and_repair(info, result)
        result.queries = self.backend.usage.queries - queries_before
        return result

    def generate_for_handlers(self, handler_names: list[str]) -> GenerationRun:
        """Generate specifications for many handlers (a full campaign)."""
        run = GenerationRun()
        for handler_name in handler_names:
            try:
                run.results[handler_name] = self.generate_for_handler(handler_name)
            except (ExtractionError, GenerationError):
                continue
        return run

    def generate_all_in_one(self, handler_name: str) -> GenerationResult:
        """Single-prompt generation used by the §5.2.3 ablation."""
        info = self.extractor.handler(handler_name)
        queries_before = self.backend.usage.queries
        name = self._readable_name(info)
        registration = self._registration_text(info)
        code_parts = [registration]
        if info.ioctl_fn and self.extractor.has_definition(info.ioctl_fn):
            code_parts.append(self.extractor.extract_code(info.ioctl_fn))
            # Include directly-referenced sub-handlers and structs, as far as
            # the prompt size allows; the point of the ablation is that this
            # is all the model gets.
            for called in self.extractor.function(info.ioctl_fn).calls():
                if self.extractor.has_definition(called):
                    code_parts.append(self.extractor.extract_code(called))
        for _, fn_name in info.syscall_fns:
            if self.extractor.has_definition(fn_name):
                code_parts.append(self.extractor.extract_code(fn_name))
        prompt = self.prompts.all_in_one_prompt(
            handler_name, kind=info.kind, registration=registration, code="\n\n".join(code_parts)
        )
        from ..llm import parse_reply

        reply = parse_reply(self.backend.query(prompt).text)
        ops: list[DiscoveredOp] = []
        for record in reply.identifiers:
            ops.append(
                DiscoveredOp(
                    identifier=record.get("IDENT", ""),
                    syscall=record.get("SYSCALL", "ioctl"),
                    handler_fn=record.get("HANDLER"),
                )
            )
        for record in reply.argtypes:
            for op in ops:
                if op.identifier == record.get("IDENT"):
                    op.arg_type = record.get("TYPE")
                    op.direction = record.get("DIR", "in")
        typedefs = dict(reply.typedefs)
        device_path = reply.device_path
        socket_identity = None
        if reply.socket_family:
            socket_identity = (reply.socket_family, reply.socket_type or 2, reply.socket_protocol or 0)
        suite = self._assemble(info, name, ops, device_path, socket_identity, typedefs)
        result = GenerationResult(
            handler_name=handler_name,
            kind=info.kind,
            name=name,
            suite=suite,
            device_path=device_path,
            socket_family=reply.socket_family,
            ops=ops,
            mode="all-in-one",
        )
        self._validate_and_repair(info, result)
        result.queries = self.backend.usage.queries - queries_before
        return result

    # ------------------------------------------------------------ stage 1
    def _identifier_stage(self, info: HandlerInfo) -> tuple[list[DiscoveredOp], str | None, tuple | None]:
        registration = self._registration_text(info)
        initial_code = self._dispatch_code(info)
        ops: list[DiscoveredOp] = []
        device_path: str | None = None
        socket_identity: tuple | None = None
        seen: set[tuple[str, str]] = set()

        def on_reply(reply: ParsedReply) -> None:
            nonlocal device_path, socket_identity
            if reply.device_path and device_path is None:
                device_path = reply.device_path
            if reply.socket_family and socket_identity is None:
                socket_identity = (reply.socket_family, reply.socket_type or 2, reply.socket_protocol or 0)
            for record in reply.identifiers:
                identifier = record.get("IDENT", "")
                syscall = record.get("SYSCALL", "ioctl")
                if not identifier or (identifier, syscall) in seen:
                    continue
                seen.add((identifier, syscall))
                ops.append(
                    DiscoveredOp(
                        identifier=identifier,
                        syscall=syscall,
                        handler_fn=record.get("HANDLER"),
                    )
                )

        self._analyzer.run(
            lambda code, unknowns: self.prompts.identifier_prompt(
                info.handler_name,
                kind=info.kind,
                registration=registration,
                code=code,
                unknowns=unknowns,
            ),
            initial_code=initial_code,
            on_reply=on_reply,
        )
        return ops, device_path, socket_identity

    # ------------------------------------------------------------ stage 2
    def _type_stage(self, info: HandlerInfo, ops: list[DiscoveredOp]) -> None:
        for op in ops:
            if op.syscall in ("poll", "accept"):
                op.arg_type = "none"
                continue
            code = self._op_code(info, op)
            if not code:
                op.arg_type = "none"
                continue

            def on_reply(reply: ParsedReply, op=op) -> None:
                for record in reply.argtypes:
                    if record.get("IDENT") in (op.identifier, None):
                        op.arg_type = record.get("TYPE") or op.arg_type
                        op.direction = record.get("DIR", op.direction)
                for struct_name, text in reply.typedefs:
                    self._pending_typedefs[struct_name] = text

            self._analyzer.run(
                lambda code_text, unknowns, op=op: self.prompts.type_prompt(
                    info.handler_name,
                    identifier=op.identifier,
                    code=code_text,
                    unknowns=unknowns,
                ),
                initial_code=code,
                on_reply=on_reply,
            )

    def _collect_typedefs(self, info: HandlerInfo, ops: list[DiscoveredOp]) -> dict[str, str]:
        """Snapshot the typedef blocks accumulated during the type stage."""
        return dict(self._pending_typedefs)

    # ------------------------------------------------------------ stage 3
    def _dependency_stage(self, info: HandlerInfo, ops: list[DiscoveredOp]) -> None:
        blocks: list[str] = []
        for op in ops:
            if not op.handler_fn or not self.extractor.has_definition(op.handler_fn):
                continue
            blocks.append(f"/* operation: {op.identifier} */\n{self.extractor.extract_code(op.handler_fn)}")
        if not blocks:
            return
        from ..llm import parse_reply

        prompt = self.prompts.dependency_prompt(info.handler_name, code="\n\n".join(blocks))
        reply = parse_reply(self.backend.query(prompt).text)
        for record in reply.dependencies:
            identifier = record.get("IDENT", "")
            for op in ops:
                if op.identifier == identifier:
                    op.produces = record.get("PRODUCES")
                    op.produces_handler = record.get("HANDLER")

    def _analyze_secondary_handlers(
        self, info: HandlerInfo, ops: list[DiscoveredOp], *, depth: int = 0
    ) -> tuple[list[DiscoveredOp], dict[str, str]]:
        """Analyse handlers reached through produced resources (e.g. KVM VM fds).

        Recurses (bounded by the iteration limit) so chains like
        ``/dev/kvm → VM fd → VCPU fd`` are fully discovered.
        """
        secondary_ops: list[DiscoveredOp] = []
        typedefs: dict[str, str] = {}
        if depth >= self.max_iterations:
            return secondary_ops, typedefs
        for op in ops:
            if not op.produces or not op.produces_handler:
                continue
            try:
                secondary_info = self.extractor.handler(op.produces_handler)
            except ExtractionError:
                continue
            saved_typedefs = dict(self._pending_typedefs)
            self._pending_typedefs = {}
            new_ops, _, _ = self._identifier_stage(secondary_info)
            self._type_stage(secondary_info, new_ops)
            self._dependency_stage(secondary_info, new_ops)
            typedefs.update(self._pending_typedefs)
            self._pending_typedefs = saved_typedefs
            for new_op in new_ops:
                new_op.consumes = op.produces
            nested_ops, nested_typedefs = self._analyze_secondary_handlers(
                secondary_info, new_ops, depth=depth + 1
            )
            secondary_ops.extend(new_ops)
            secondary_ops.extend(nested_ops)
            typedefs.update(nested_typedefs)
        return secondary_ops, typedefs

    # ------------------------------------------------------------ assembly
    def _assemble(
        self,
        info: HandlerInfo,
        name: str,
        ops: list[DiscoveredOp],
        device_path: str | None,
        socket_identity: tuple | None,
        typedefs: dict[str, str],
    ) -> SpecSuite:
        suite = SpecSuite(f"kernelgpt-{name}")
        for struct_name, text in typedefs.items():
            try:
                parsed = parse_suite(text)
            except SyzlangParseError:
                continue
            for parsed_name, struct in parsed.structs.items():
                suite.add_struct(struct, replace_existing=True)
            for parsed_name, union in parsed.unions.items():
                suite.add_union(union, replace_existing=True)

        if info.kind == "driver":
            self._assemble_driver(suite, info, name, ops, device_path)
        else:
            self._assemble_socket(suite, info, name, ops, socket_identity)
        return suite

    def _assemble_driver(
        self,
        suite: SpecSuite,
        info: HandlerInfo,
        name: str,
        ops: list[DiscoveredOp],
        device_path: str | None,
    ) -> None:
        fd_resource = f"fd_{name}"
        suite.add_resource(ResourceDef(fd_resource, "fd"), replace_existing=True)
        path = device_path or f"/dev/{name}"
        suite.add_syscall(
            Syscall(
                name="openat",
                variant=name,
                params=(
                    Param("fd", ConstType("AT_FDCWD", "int64")),
                    Param("file", PtrType("in", StringType((path,)))),
                    Param("flags", ConstType("O_RDWR", "int32")),
                ),
                returns=ResourceRef(fd_resource),
                comment=f"generated by KernelGPT for {info.handler_name}",
            ),
            replace_existing=True,
        )
        secondary_resources: dict[str, str] = {}
        for op in ops:
            if op.produces:
                resource_name = f"fd_{op.produces}"
                secondary_resources[op.produces] = resource_name
                if resource_name not in suite.resources:
                    suite.add_resource(ResourceDef(resource_name, "fd"), replace_existing=True)
        for op in ops:
            if op.syscall != "ioctl":
                continue
            fd_name = fd_resource
            if op.consumes and op.consumes in secondary_resources:
                fd_name = secondary_resources[op.consumes]
            params = [
                Param("fd", ResourceRef(fd_name)),
                Param("cmd", ConstType(op.identifier, "int32")),
                Param("arg", self._arg_expr(op)),
            ]
            returns = None
            if op.produces:
                returns = ResourceRef(secondary_resources[op.produces])
            suite.add_syscall(
                Syscall(name="ioctl", variant=op.identifier, params=tuple(params), returns=returns),
                replace_existing=True,
            )

    def _assemble_socket(
        self,
        suite: SpecSuite,
        info: HandlerInfo,
        name: str,
        ops: list[DiscoveredOp],
        socket_identity: tuple | None,
    ) -> None:
        sock_resource = f"sock_{name}"
        suite.add_resource(ResourceDef(sock_resource, "sock"), replace_existing=True)
        family, sock_type, protocol = socket_identity or ("AF_UNIX", 2, 0)
        suite.add_syscall(
            Syscall(
                name="socket",
                variant=name,
                params=(
                    Param("domain", ConstType(family, "int32")),
                    Param("type", ConstType(sock_type, "int32")),
                    Param("proto", ConstType(protocol, "int32")),
                ),
                returns=ResourceRef(sock_resource),
                comment=f"generated by KernelGPT for {info.handler_name}",
            ),
            replace_existing=True,
        )
        for op in ops:
            if op.syscall in ("setsockopt", "getsockopt"):
                direction = "in" if op.syscall == "setsockopt" else "out"
                params = (
                    Param("fd", ResourceRef(sock_resource)),
                    Param("level", ConstType(0, "int32")),
                    Param("optname", ConstType(op.identifier, "int32")),
                    Param("optval", PtrType(direction, self._payload_expr(op))),
                    Param("optlen", LenType("optval", "int32")),
                )
                suite.add_syscall(
                    Syscall(name=op.syscall, variant=op.identifier, params=params),
                    replace_existing=True,
                )
            elif op.syscall in ("bind", "connect"):
                params = (
                    Param("fd", ResourceRef(sock_resource)),
                    Param("addr", PtrType("in", self._payload_expr(op))),
                    Param("addrlen", LenType("addr", "int32")),
                )
                suite.add_syscall(Syscall(name=op.syscall, variant=name, params=params), replace_existing=True)
            elif op.syscall in ("sendto", "recvfrom", "sendmsg", "recvmsg"):
                direction = "in" if op.syscall.startswith("send") else "out"
                params = (
                    Param("fd", ResourceRef(sock_resource)),
                    Param("buf", PtrType(direction, self._payload_expr(op))),
                    Param("len", LenType("buf", "int64")),
                    Param("flags", ConstType(0, "int32")),
                )
                suite.add_syscall(Syscall(name=op.syscall, variant=name, params=params), replace_existing=True)
            elif op.syscall in ("accept", "poll"):
                params = (Param("fd", ResourceRef(sock_resource)),)
                suite.add_syscall(Syscall(name=op.syscall, variant=name, params=params), replace_existing=True)

    def _arg_expr(self, op: DiscoveredOp):
        if op.arg_type in (None, "none"):
            return ConstType(0, "int64")
        if op.arg_type == "scalar":
            return IntType("int64")
        from ..syzlang import NamedTypeRef

        direction = op.direction if op.direction in ("in", "out", "inout") else "in"
        return PtrType(direction, NamedTypeRef(op.arg_type))

    def _payload_expr(self, op: DiscoveredOp):
        from ..syzlang import NamedTypeRef

        if op.arg_type in (None, "none", "scalar"):
            return ArrayType(IntType("int8"))
        return NamedTypeRef(op.arg_type)

    # --------------------------------------------------- validation + repair
    def _validate_and_repair(self, info: HandlerInfo, result: GenerationResult) -> None:
        report = self._validator.validate(result.suite)
        result.initially_valid = report.is_valid
        result.validation_report = report
        result.valid = report.is_valid
        if report.is_valid or not self.repair_enabled:
            return

        context = self._repair_context(info)
        for round_index in range(1, self.repair_rounds + 1):
            result.repair_rounds_used = round_index
            changed = False
            for subject in report.subjects_with_errors():
                description = self._describe_subject(result.suite, subject)
                errors = "\n".join(issue.render() for issue in report.issues_for(subject))
                prompt = self.prompts.repair_prompt(
                    info.handler_name, description=description, errors=errors, code=context
                )
                from ..llm import parse_reply

                reply = parse_reply(self.backend.query(prompt).text)
                if not reply.repaired_text:
                    continue
                if self._apply_repair(result.suite, reply.repaired_text, original_subject=subject):
                    changed = True
            report = self._validator.validate(result.suite)
            result.validation_report = report
            if report.is_valid:
                result.valid = True
                result.repaired = True
                return
            if not changed:
                break
        result.valid = report.is_valid

    def _repair_context(self, info: HandlerInfo) -> str:
        """Macro definitions and struct sources from the handler's file."""
        unit = self.extractor.translation_unit(info.file)
        defines = "\n".join(macro.text for macro in unit.macros.values())
        structs = "\n\n".join(struct.text for struct in unit.structs.values())
        return defines + "\n\n" + structs

    @staticmethod
    def _describe_subject(suite: SpecSuite, subject: str) -> str:
        if subject in suite.syscalls:
            return suite.syscalls[subject].render()
        type_def = suite.get_type_def(subject)
        if type_def is not None:
            return type_def.render()
        return subject

    @staticmethod
    def _apply_repair(suite: SpecSuite, repaired_text: str, *, original_subject: str = "") -> bool:
        try:
            parsed = parse_suite(repaired_text)
        except SyzlangParseError:
            return False
        changed = False
        for syscall in parsed:
            suite.add_syscall(syscall, replace_existing=True)
            changed = True
        # A repair frequently renames the offending description (for example
        # when the wrong macro also appeared in the variant suffix); drop the
        # original so the invalid version does not linger in the suite.
        if changed and original_subject and original_subject in suite.syscalls:
            if original_subject not in parsed.syscalls:
                suite.remove_syscall(original_subject)
        for struct in parsed.structs.values():
            suite.add_struct(struct, replace_existing=True)
            changed = True
        for union in parsed.unions.values():
            suite.add_union(union, replace_existing=True)
            changed = True
        for resource in parsed.resources.values():
            suite.add_resource(resource, replace_existing=True)
            changed = True
        return changed

    # --------------------------------------------------------------- helpers
    def _registration_text(self, info: HandlerInfo) -> str:
        parts = [info.initializer_text]
        parts.extend(info.usage_snippets)
        return "\n\n".join(part for part in parts if part)

    def _dispatch_code(self, info: HandlerInfo) -> str:
        parts: list[str] = []
        if info.ioctl_fn and self.extractor.has_definition(info.ioctl_fn):
            parts.append(self.extractor.extract_code(info.ioctl_fn))
        for _, fn_name in info.syscall_fns:
            if self.extractor.has_definition(fn_name):
                parts.append(self.extractor.extract_code(fn_name))
        if info.kind == "socket":
            parts.insert(0, info.initializer_text)
        return "\n\n".join(parts) if parts else info.initializer_text

    def _op_code(self, info: HandlerInfo, op: DiscoveredOp) -> str:
        if op.handler_fn and self.extractor.has_definition(op.handler_fn):
            return self.extractor.extract_code(op.handler_fn)
        # Socket options: the dispatch function contains the per-option logic.
        for member, fn_name in info.syscall_fns:
            if member == op.syscall and self.extractor.has_definition(fn_name):
                return self.extractor.extract_code(fn_name)
        if op.syscall in ("setsockopt", "getsockopt"):
            candidate = f"{info.handler_name.removesuffix('_proto_ops')}_{op.syscall}"
            if self.extractor.has_definition(candidate):
                return self.extractor.extract_code(candidate)
        if info.ioctl_fn and self.extractor.has_definition(info.ioctl_fn):
            return self.extractor.extract_code(info.ioctl_fn)
        return ""

    @staticmethod
    def _readable_name(info: HandlerInfo) -> str:
        name = info.handler_name.lstrip("_")
        for suffix in ("_fops", "_proto_ops", "_ops"):
            name = name.removesuffix(suffix)
        return name or info.handler_name


__all__ = ["KernelGPT", "GenerationResult", "GenerationRun", "DiscoveredOp"]
