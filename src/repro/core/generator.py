"""KernelGPT: the end-to-end specification generator.

This module implements the paper's two automated phases on top of the
substrates:

* **Specification generation** (§3.1) — the three-stage pipeline (identifier
  deduction, type recovery, dependency analysis), each stage running the
  LLM-guided iterative analysis of Algorithm 1 against the source extractor
  and the analysis backend;
* **Specification validation and repair** (§3.2) — validating the assembled
  suite with the syzlang validator and consulting the backend with the error
  messages until the suite validates or the repair budget is exhausted.

The public entry point is :class:`KernelGPT`; one call to
:meth:`KernelGPT.generate_for_handler` produces a :class:`GenerationResult`
holding the generated suite and full provenance (queries, repairs, validity).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine import ExecutionEngine, POOL_PAYLOAD, TaskSpec, resolve_engine
from ..errors import ExtractionError, GenerationError, SyzlangParseError
from ..extractor import HandlerInfo, KernelExtractor
from ..kernel import KernelCodebase
from ..llm import (
    Completion,
    LLMBackend,
    LLMRequest,
    OracleBackend,
    Prompt,
    PromptLibrary,
    parse_reply,
)
from ..syzlang import (
    ArrayType,
    ConstType,
    ConstantTable,
    IntType,
    LenType,
    NamedTypeRef,
    Param,
    PtrType,
    ResourceDef,
    ResourceRef,
    SpecSuite,
    SpecValidator,
    StringType,
    Syscall,
    ValidationReport,
    parse_suite,
    resolve_resource_refs,
    serialize_suite,
)
from .iterative import DEFAULT_MAX_ITERATIONS
from .repair import REPAIR_MODES
from .session import GenerationSession, run_session
from .tasks import GenerationTask, merge_outcome_side_effects, run_generation_task

_GENERIC_WITH_VARIANT = ("ioctl", "setsockopt", "getsockopt")
_MESSAGE_SYSCALLS = ("bind", "connect", "accept", "sendto", "recvfrom", "sendmsg", "recvmsg", "poll")


@dataclass
class DiscoveredOp:
    """One operation discovered during identifier deduction."""

    identifier: str
    syscall: str
    handler_fn: str | None = None
    arg_type: str | None = None      # struct name, or "scalar"/"none"
    direction: str = "in"
    produces: str | None = None      # resource name created by this op
    produces_handler: str | None = None
    consumes: str | None = None      # resource (other than the primary fd) required


@dataclass
class GenerationResult:
    """Everything produced while generating one handler's specification."""

    handler_name: str
    kind: str
    name: str
    suite: SpecSuite
    device_path: str | None = None
    socket_family: str | None = None
    valid: bool = False
    initially_valid: bool = False
    repaired: bool = False
    repair_rounds_used: int = 0
    #: Which repair protocol produced this result ("per-query"/"transactional").
    repair_mode: str = "per-query"
    #: Repair prompts issued (both modes count one per prompt).
    repair_queries: int = 0
    #: Repair LLM round-trips: per-query mode pays one per prompt, the
    #: transactional mode one ``complete_batch`` per round.
    repair_llm_calls: int = 0
    #: Transactional only: items skipped by the conflict rule, and the
    #: issues those losers re-queued onto later rounds.
    repair_conflicts: int = 0
    repair_requeued: int = 0
    queries: int = 0
    input_tokens: int = 0
    output_tokens: int = 0
    validation_report: ValidationReport | None = None
    ops: list[DiscoveredOp] = field(default_factory=list)
    mode: str = "iterative"

    @property
    def syscall_count(self) -> int:
        return len(self.suite)

    @property
    def type_count(self) -> int:
        return self.suite.stats()["types"]

    def suite_text(self) -> str:
        """The generated specification rendered as syzlang text."""
        return serialize_suite(self.suite)


@dataclass
class GenerationRun:
    """Aggregate of a multi-handler generation campaign."""

    results: dict[str, GenerationResult] = field(default_factory=dict)

    def valid_results(self) -> list[GenerationResult]:
        return [result for result in self.results.values() if result.valid]

    def total_syscalls(self) -> int:
        return sum(result.syscall_count for result in self.valid_results())

    def total_types(self) -> int:
        return sum(result.type_count for result in self.valid_results())

    def merged_suite(self, name: str = "kernelgpt") -> SpecSuite:
        merged = SpecSuite(name)
        for result in self.valid_results():
            merged = merged.merge(result.suite)
        merged.name = name
        return merged

    def usage_summary(self) -> dict:
        """Session-attributed LLM usage summed over every result.

        Unlike reading a shared backend's meter, these totals are derived
        from the per-session counters, so they are identical however the run
        was scheduled and whatever else shares the backend.
        """
        from ..llm import UsageMeter

        meter = UsageMeter(
            queries=sum(result.queries for result in self.results.values()),
            input_tokens=sum(result.input_tokens for result in self.results.values()),
            output_tokens=sum(result.output_tokens for result in self.results.values()),
        )
        return meter.summary()


class KernelGPT:
    """The specification generator."""

    def __init__(
        self,
        kernel: KernelCodebase,
        backend: LLMBackend | None = None,
        *,
        extractor: KernelExtractor | None = None,
        prompts: PromptLibrary | None = None,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        repair_rounds: int = 3,
        repair: bool = True,
        engine: ExecutionEngine | None = None,
        batch_queries: bool = True,
        backend_route: str | None = None,
        repair_mode: str = "per-query",
        repair_route: str | None = None,
    ):
        if repair_mode not in REPAIR_MODES:
            raise ValueError(
                f"unknown repair mode {repair_mode!r}; choose from {', '.join(REPAIR_MODES)}"
            )
        self.kernel = kernel
        self.backend = backend or OracleBackend()
        self.extractor = extractor or KernelExtractor(kernel)
        self.prompts = prompts or PromptLibrary()
        self.max_iterations = max_iterations
        self.repair_rounds = repair_rounds
        self.repair_enabled = repair
        self.engine = engine
        #: Submit each pipeline stage's prompts as one batch (the type
        #: stage's per-op loops run as a wavefront).  Byte-identical to
        #: per-query submission; off reproduces the per-query schedule.
        self.batch_queries = batch_queries
        #: Routing tag stamped on every request this generator issues — how
        #: a pool-backed generator selects its member capability profile
        #: (see :class:`~repro.llm.BackendPool`).  None for plain backends.
        self.backend_route = backend_route
        #: Default repair protocol for this generator's sessions: the
        #: historical ``"per-query"`` loop or the snapshot-batched
        #: ``"transactional"`` rounds (repro.core.repair).  Task payloads
        #: may override per session.
        self.repair_mode = repair_mode
        #: Routing tag for transactional repair requests.  None falls back
        #: to ``backend_route`` and then to the generic ``"repair"`` tag,
        #: which is what a kind-route table (``--route repair=gpt-3.5``)
        #: matches on.
        self.repair_route = repair_route
        self._constants = self.extractor.constants()
        self._validator = SpecValidator(self._constants, warn_unused=False)

    def clone(
        self,
        *,
        backend: LLMBackend | None = None,
        engine: ExecutionEngine | None = None,
        repair_mode: str | None = None,
        backend_route: str | None = None,
        repair_route: str | None = None,
    ) -> "KernelGPT":
        """A shallow per-session copy with swapped backend/engine wiring.

        The job service runs many jobs against one shared context: each job
        needs its own backend handle (for tenant/client attribution) and its
        own engine (for an isolated memo namespace), while the expensive
        immutable collaborators — kernel, extractor, constants, validator —
        stay shared.  Cloning instead of reconstructing keeps that sharing
        and skips re-deriving the constant table per job.
        """
        clone = object.__new__(KernelGPT)
        clone.__dict__.update(self.__dict__)
        if backend is not None:
            clone.backend = backend
        clone.engine = engine
        if repair_mode is not None:
            if repair_mode not in REPAIR_MODES:
                raise ValueError(
                    f"unknown repair mode {repair_mode!r}; choose from {', '.join(REPAIR_MODES)}"
                )
            clone.repair_mode = repair_mode
        if backend_route is not None:
            clone.backend_route = backend_route
        if repair_route is not None:
            clone.repair_route = repair_route
        return clone

    def store_profile(self) -> tuple[str, ...]:
        """Everything that shapes this generator's output, as stable strings.

        The persistent-session key material (:func:`repro.store.session_key`):
        the kernel's coverage-space digest pins the substrate, the backend's
        store profile pins the analyst, and the remaining knobs pin the
        pipeline configuration.  Anything process-local (engine, extractor
        instance) is deliberately absent — the extractor is a pure function
        of the kernel, which the digest already covers.

        The scan/fuzz config digest is folded in alongside the coverage-space
        digest: the coverage space pins *what exists*, the config digest pins
        *what is loaded*, and a change to either must miss the store.
        """
        from ..kconfig import kernel_config_digest

        return (
            self.kernel.coverage_space().digest,
            kernel_config_digest(self.kernel.scan_config(), self.kernel.fuzz_config()),
            self.backend.store_profile(),
            self.backend_route or "",
            self.repair_route or "",
            "batched" if self.batch_queries else "per-query",
            str(self.max_iterations),
            str(self.repair_rounds),
            "repair" if self.repair_enabled else "no-repair",
            type(self.prompts).__name__,
        )

    def __getstate__(self) -> dict:
        """Generators are picklable minus the engine.

        Engines own worker pools, locks and memo caches — none of which may
        cross a process boundary.  A worker's unpickled generator therefore
        runs engine-less (plain sessions, no memoization), which changes
        only scheduling and caching, never the generated bytes.
        """
        state = self.__dict__.copy()
        state["engine"] = None
        return state

    # ----------------------------------------------------- engine plumbing
    def query(self, prompt: Prompt) -> Completion:
        """One LLM query, memoized by the engine's single-flight cache if present."""
        if self.engine is not None:
            return self.engine.cached_query(self.backend, prompt, route=self.backend_route)
        return self.backend.complete_batch((LLMRequest(prompt=prompt, route=self.backend_route),))[0]

    def extract_code(self, identifier: str) -> str:
        """One extractor lookup, memoized by the engine cache if present."""
        if self.engine is not None:
            return self.engine.cached_extract(self.extractor, identifier)
        return self.extractor.extract_code(identifier)

    def session(
        self,
        handler_name: str,
        *,
        engine: ExecutionEngine | None = None,
        repair_mode: str | None = None,
    ) -> GenerationSession:
        """A fresh re-entrant per-handler session (see :mod:`repro.core.session`)."""
        return GenerationSession(self, handler_name, engine=engine, repair_mode=repair_mode)

    # ------------------------------------------------------------------ API
    def generate_for_handler(
        self,
        handler_name: str,
        *,
        engine: ExecutionEngine | None = None,
        repair_mode: str | None = None,
    ) -> GenerationResult:
        """Generate, validate and (if needed) repair the spec for one handler.

        With an engine (the instance's, or an explicit override) the whole
        session is memoized: regenerating a handler this generator already
        produced (the table 5/6 and ablation paths after a full generation
        run) returns the cached result, and concurrent requests for the same
        handler collapse into one session.  ``repair_mode`` overrides the
        generator's repair protocol for this handler only; it is part of
        the memo key, so per-query and transactional results of one handler
        never serve each other.
        """
        engine = engine or self.engine
        mode = repair_mode or self.repair_mode
        if engine is None:
            return run_session(self, handler_name, repair_mode=mode)
        return engine.cached_session(
            self,
            "iterative",
            mode,
            handler_name,
            lambda: run_session(self, handler_name, engine=engine, repair_mode=mode),
        )

    def generate_for_handlers(
        self,
        handler_names: list[str],
        *,
        jobs: int = 1,
        engine: ExecutionEngine | None = None,
        executor: str | None = None,
    ) -> GenerationRun:
        """Generate specifications for many handlers (a full campaign).

        Handlers fan out across the engine's executor (``jobs`` workers; an
        explicit ``engine`` overrides both ``jobs`` and the instance engine,
        and ``executor`` names the pool flavour — ``serial``/``thread``/
        ``process`` — when a fresh engine is created for the fan-out).
        Sessions are independent, so any schedule produces the same
        :class:`GenerationRun`: results are keyed in ``handler_names`` order
        and each handler's suite is byte-identical to a serial run.

        Task payloads are picklable (module-level function + dataclass
        args; see :mod:`repro.core.tasks`), so the fan-out works unchanged
        on a process pool: workers run engine-less on their own copy of the
        generator, and their usage meters / recorded exchanges are merged
        back into this generator's backend when the batch joins.
        """
        run = GenerationRun()
        tasks = [GenerationTask(handler_name) for handler_name in handler_names]
        for task, result in zip(
            tasks, self.run_generation_tasks(tasks, jobs=jobs, engine=engine, executor=executor)
        ):
            if result is not None:
                run.results[task.handler_name] = result
        return run

    def run_generation_tasks(
        self,
        tasks: "list[GenerationTask]",
        *,
        jobs: int = 1,
        engine: ExecutionEngine | None = None,
        executor: str | None = None,
    ) -> "list[GenerationResult | None]":
        """Run a batch of generation task payloads, one result per task.

        The generic fan-out behind :meth:`generate_for_handlers` and the
        ablation's mixed iterative/all-in-one batches.  Results come back in
        task order (``None`` where extraction/generation failed); with an
        engine they are memoized in its result cache, so re-requesting a
        handler later is a cache hit.  On executors that do not share
        memory, worker usage/exchanges are merged into this generator's
        backend after the batch, in submission order.
        """
        engine = resolve_engine(engine or self.engine, jobs, kind=executor)
        if engine is None:
            return [run_generation_task(self, task).result for task in tasks]
        shared = engine.shares_memory
        # The generator is the batch's shared payload: in-memory executors
        # pass it by reference, process pools pickle it once per worker via
        # the pool initializer (instead of once per task in every args
        # tuple) and workers resolve the sentinel against their copy.
        specs = [
            TaskSpec(
                key=f"{task.handler_name}@{task.mode}"
                + (f"@{task.repair_mode}" if task.repair_mode else ""),
                fn=run_generation_task,
                args=(POOL_PAYLOAD, task, engine if shared else None),
                kwargs=None if shared else {"collect_side_effects": True},
            )
            for task in tasks
        ]
        outcomes = [
            result.value
            for result in engine.run_tasks("generation", specs, payload=self)
        ]
        if not shared:
            merge_outcome_side_effects(self.backend, outcomes)
        return [outcome.result for outcome in outcomes]

    def generate_all_in_one(
        self,
        handler_name: str,
        *,
        engine: ExecutionEngine | None = None,
        repair_mode: str | None = None,
    ) -> GenerationResult:
        """Single-prompt generation used by the §5.2.3 ablation."""
        engine = engine or self.engine
        mode = repair_mode or self.repair_mode
        if engine is None:
            return self._all_in_one(handler_name, engine, repair_mode=mode)
        return engine.cached_session(
            self,
            "all-in-one",
            mode,
            handler_name,
            lambda: self._all_in_one(handler_name, engine, repair_mode=mode),
        )

    def _all_in_one(
        self,
        handler_name: str,
        engine: ExecutionEngine | None,
        *,
        repair_mode: str | None = None,
    ) -> GenerationResult:
        info = self.extractor.handler(handler_name)
        session = self.session(handler_name, engine=engine, repair_mode=repair_mode)
        name = self._readable_name(info)
        registration = self._registration_text(info)
        code_parts = [registration]
        if info.ioctl_fn and self.extractor.has_definition(info.ioctl_fn):
            code_parts.append(session.extract_code(info.ioctl_fn))
            # Include directly-referenced sub-handlers and structs, as far as
            # the prompt size allows; the point of the ablation is that this
            # is all the model gets.
            for called in self.extractor.function(info.ioctl_fn).calls():
                if self.extractor.has_definition(called):
                    code_parts.append(session.extract_code(called))
        for _, fn_name in info.syscall_fns:
            if self.extractor.has_definition(fn_name):
                code_parts.append(session.extract_code(fn_name))
        prompt = self.prompts.all_in_one_prompt(
            handler_name, kind=info.kind, registration=registration, code="\n\n".join(code_parts)
        )
        reply = parse_reply(session.query(prompt).text)
        ops: list[DiscoveredOp] = []
        for record in reply.identifiers:
            ops.append(
                DiscoveredOp(
                    identifier=record.get("IDENT", ""),
                    syscall=record.get("SYSCALL", "ioctl"),
                    handler_fn=record.get("HANDLER"),
                )
            )
        for record in reply.argtypes:
            for op in ops:
                if op.identifier == record.get("IDENT"):
                    op.arg_type = record.get("TYPE")
                    op.direction = record.get("DIR", "in")
        typedefs = dict(reply.typedefs)
        device_path = reply.device_path
        socket_identity = None
        if reply.socket_family:
            socket_identity = (reply.socket_family, reply.socket_type or 2, reply.socket_protocol or 0)
        suite = self._assemble(info, name, ops, device_path, socket_identity, typedefs)
        result = GenerationResult(
            handler_name=handler_name,
            kind=info.kind,
            name=name,
            suite=suite,
            device_path=device_path,
            socket_family=reply.socket_family,
            ops=ops,
            mode="all-in-one",
        )
        session.validate_and_repair(info, result)
        result.queries = session.queries
        result.input_tokens = session.input_tokens
        result.output_tokens = session.output_tokens
        return result

    # ------------------------------------------------------------ assembly
    def _assemble(
        self,
        info: HandlerInfo,
        name: str,
        ops: list[DiscoveredOp],
        device_path: str | None,
        socket_identity: tuple | None,
        typedefs: dict[str, str],
    ) -> SpecSuite:
        suite = SpecSuite(f"kernelgpt-{name}")
        for struct_name, text in typedefs.items():
            try:
                parsed = parse_suite(text)
            except SyzlangParseError:
                continue
            for parsed_name, struct in parsed.structs.items():
                suite.add_struct(struct, replace_existing=True)
            for parsed_name, union in parsed.unions.items():
                suite.add_union(union, replace_existing=True)

        if info.kind == "driver":
            self._assemble_driver(suite, info, name, ops, device_path)
        else:
            self._assemble_socket(suite, info, name, ops, socket_identity)
        return suite

    def _assemble_driver(
        self,
        suite: SpecSuite,
        info: HandlerInfo,
        name: str,
        ops: list[DiscoveredOp],
        device_path: str | None,
    ) -> None:
        fd_resource = f"fd_{name}"
        suite.add_resource(ResourceDef(fd_resource, "fd"), replace_existing=True)
        path = device_path or f"/dev/{name}"
        suite.add_syscall(
            Syscall(
                name="openat",
                variant=name,
                params=(
                    Param("fd", ConstType("AT_FDCWD", "int64")),
                    Param("file", PtrType("in", StringType((path,)))),
                    Param("flags", ConstType("O_RDWR", "int32")),
                ),
                returns=ResourceRef(fd_resource),
                comment=f"generated by KernelGPT for {info.handler_name}",
            ),
            replace_existing=True,
        )
        secondary_resources: dict[str, str] = {}
        for op in ops:
            if op.produces:
                resource_name = f"fd_{op.produces}"
                secondary_resources[op.produces] = resource_name
                if resource_name not in suite.resources:
                    suite.add_resource(ResourceDef(resource_name, "fd"), replace_existing=True)
        for op in ops:
            if op.syscall != "ioctl":
                continue
            fd_name = fd_resource
            if op.consumes and op.consumes in secondary_resources:
                fd_name = secondary_resources[op.consumes]
            params = [
                Param("fd", ResourceRef(fd_name)),
                Param("cmd", ConstType(op.identifier, "int32")),
                Param("arg", self._arg_expr(op)),
            ]
            returns = None
            if op.produces:
                returns = ResourceRef(secondary_resources[op.produces])
            suite.add_syscall(
                Syscall(name="ioctl", variant=op.identifier, params=tuple(params), returns=returns),
                replace_existing=True,
            )

    def _assemble_socket(
        self,
        suite: SpecSuite,
        info: HandlerInfo,
        name: str,
        ops: list[DiscoveredOp],
        socket_identity: tuple | None,
    ) -> None:
        sock_resource = f"sock_{name}"
        suite.add_resource(ResourceDef(sock_resource, "sock"), replace_existing=True)
        family, sock_type, protocol = socket_identity or ("AF_UNIX", 2, 0)
        suite.add_syscall(
            Syscall(
                name="socket",
                variant=name,
                params=(
                    Param("domain", ConstType(family, "int32")),
                    Param("type", ConstType(sock_type, "int32")),
                    Param("proto", ConstType(protocol, "int32")),
                ),
                returns=ResourceRef(sock_resource),
                comment=f"generated by KernelGPT for {info.handler_name}",
            ),
            replace_existing=True,
        )
        for op in ops:
            if op.syscall in ("setsockopt", "getsockopt"):
                direction = "in" if op.syscall == "setsockopt" else "out"
                params = (
                    Param("fd", ResourceRef(sock_resource)),
                    Param("level", ConstType(0, "int32")),
                    Param("optname", ConstType(op.identifier, "int32")),
                    Param("optval", PtrType(direction, self._payload_expr(op))),
                    Param("optlen", LenType("optval", "int32")),
                )
                suite.add_syscall(
                    Syscall(name=op.syscall, variant=op.identifier, params=params),
                    replace_existing=True,
                )
            elif op.syscall in ("bind", "connect"):
                params = (
                    Param("fd", ResourceRef(sock_resource)),
                    Param("addr", PtrType("in", self._payload_expr(op))),
                    Param("addrlen", LenType("addr", "int32")),
                )
                suite.add_syscall(Syscall(name=op.syscall, variant=name, params=params), replace_existing=True)
            elif op.syscall in ("sendto", "recvfrom", "sendmsg", "recvmsg"):
                direction = "in" if op.syscall.startswith("send") else "out"
                params = (
                    Param("fd", ResourceRef(sock_resource)),
                    Param("buf", PtrType(direction, self._payload_expr(op))),
                    Param("len", LenType("buf", "int64")),
                    Param("flags", ConstType(0, "int32")),
                )
                suite.add_syscall(Syscall(name=op.syscall, variant=name, params=params), replace_existing=True)
            elif op.syscall in ("accept", "poll"):
                params = (Param("fd", ResourceRef(sock_resource)),)
                suite.add_syscall(Syscall(name=op.syscall, variant=name, params=params), replace_existing=True)

    def _arg_expr(self, op: DiscoveredOp):
        if op.arg_type in (None, "none"):
            return ConstType(0, "int64")
        if op.arg_type == "scalar":
            return IntType("int64")
        direction = op.direction if op.direction in ("in", "out", "inout") else "in"
        return PtrType(direction, NamedTypeRef(op.arg_type))

    def _payload_expr(self, op: DiscoveredOp):
        if op.arg_type in (None, "none", "scalar"):
            return ArrayType(IntType("int8"))
        return NamedTypeRef(op.arg_type)

    # --------------------------------------------------- validation + repair
    def _repair_context(self, info: HandlerInfo) -> str:
        """Macro definitions and struct sources from the handler's file."""
        unit = self.extractor.translation_unit(info.file)
        defines = "\n".join(macro.text for macro in unit.macros.values())
        structs = "\n\n".join(struct.text for struct in unit.structs.values())
        return defines + "\n\n" + structs

    @staticmethod
    def _describe_subject(suite: SpecSuite, subject: str) -> str:
        if subject in suite.syscalls:
            return suite.syscalls[subject].render()
        type_def = suite.get_type_def(subject)
        if type_def is not None:
            return type_def.render()
        return subject

    @staticmethod
    def _apply_repair(
        suite: SpecSuite,
        repaired_text: str,
        *,
        original_subject: str = "",
        parsed: SpecSuite | None = None,
    ) -> bool:
        """Apply one repaired fragment; True when the suite changed.

        ``parsed`` lets callers that already parsed ``repaired_text`` (the
        transactional commit, which parses fragments for conflict
        detection) skip the second parse; the text and the parsed suite
        must describe the same fragment.
        """
        if parsed is None:
            try:
                parsed = parse_suite(repaired_text)
            except SyzlangParseError:
                return False
        # The repaired fragment has no resource declarations of its own, so
        # bare resource uses parse as named-type references; resolve them
        # against the destination suite's table so the merged AST is
        # identical to what a whole-document parse would produce.
        resolve_resource_refs(parsed, set(suite.resources) | set(parsed.resources))
        changed = False
        for syscall in parsed:
            suite.add_syscall(syscall, replace_existing=True)
            changed = True
        # A repair frequently renames the offending description (for example
        # when the wrong macro also appeared in the variant suffix); drop the
        # original so the invalid version does not linger in the suite.
        if changed and original_subject and original_subject in suite.syscalls:
            if original_subject not in parsed.syscalls:
                suite.remove_syscall(original_subject)
        for struct in parsed.structs.values():
            suite.add_struct(struct, replace_existing=True)
            changed = True
        for union in parsed.unions.values():
            suite.add_union(union, replace_existing=True)
            changed = True
        for resource in parsed.resources.values():
            suite.add_resource(resource, replace_existing=True)
            changed = True
        for flags in parsed.flags.values():
            suite.add_flags(flags, replace_existing=True)
            changed = True
        return changed

    # --------------------------------------------------------------- helpers
    def _registration_text(self, info: HandlerInfo) -> str:
        parts = [info.initializer_text]
        parts.extend(info.usage_snippets)
        return "\n\n".join(part for part in parts if part)

    def _dispatch_code(self, info: HandlerInfo, *, extract=None) -> str:
        extract = extract or self.extract_code
        parts: list[str] = []
        if info.ioctl_fn and self.extractor.has_definition(info.ioctl_fn):
            parts.append(extract(info.ioctl_fn))
        for _, fn_name in info.syscall_fns:
            if self.extractor.has_definition(fn_name):
                parts.append(extract(fn_name))
        if info.kind == "socket":
            parts.insert(0, info.initializer_text)
        return "\n\n".join(parts) if parts else info.initializer_text

    def _op_code(self, info: HandlerInfo, op: DiscoveredOp, *, extract=None) -> str:
        extract = extract or self.extract_code
        if op.handler_fn and self.extractor.has_definition(op.handler_fn):
            return extract(op.handler_fn)
        # Socket options: the dispatch function contains the per-option logic.
        for member, fn_name in info.syscall_fns:
            if member == op.syscall and self.extractor.has_definition(fn_name):
                return extract(fn_name)
        if op.syscall in ("setsockopt", "getsockopt"):
            candidate = f"{info.handler_name.removesuffix('_proto_ops')}_{op.syscall}"
            if self.extractor.has_definition(candidate):
                return extract(candidate)
        if info.ioctl_fn and self.extractor.has_definition(info.ioctl_fn):
            return extract(info.ioctl_fn)
        return ""

    @staticmethod
    def _readable_name(info: HandlerInfo) -> str:
        name = info.handler_name.lstrip("_")
        for suffix in ("_fops", "_proto_ops", "_ops"):
            name = name.removesuffix(suffix)
        return name or info.handler_name


__all__ = ["KernelGPT", "GenerationResult", "GenerationRun", "DiscoveredOp"]
