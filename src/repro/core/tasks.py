"""Picklable generation task payloads.

PR 1's ``generate_for_handlers`` fanned out by wrapping *bound methods* of
the owning :class:`~repro.core.generator.KernelGPT` in task specs.  Bound
methods tie a task to the parent's address space, which is fine for thread
pools but rules out process sharding.  This module replaces them with the
shape every executor (serial, thread, process) can run:

* a frozen dataclass argument (:class:`GenerationTask`) naming the unit of
  work — never holding live callables or open resources;
* a module-level function (:func:`run_generation_task`) that process pools
  can pickle by qualified name;
* a mutable outcome (:class:`GenerationOutcome`) that carries worker-side
  side effects — LLM usage, recorded exchanges — back across the process
  boundary so the parent can merge them at join time.

Picklability rules (the contract process sharding rests on, also documented
in DESIGN.md):

1. task functions are module-level, referenced by name, never closures or
   bound methods;
2. task arguments are data (dataclasses of strings/numbers/suites) plus the
   generator itself, whose ``__getstate__`` drops the engine — engines own
   pools and locks and never cross process boundaries;
3. anything a worker mutates that the parent must observe travels back in
   the task's return value; the parent merges outcomes in submission order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import ExtractionError, GenerationError
from ..llm import RecordedExchange, RecordingBackend, UsageMeter

if TYPE_CHECKING:
    from ..engine import ExecutionEngine
    from .generator import GenerationResult, KernelGPT


@dataclass(frozen=True)
class GenerationTask:
    """One handler-generation unit of work, as plain picklable data.

    ``repair_mode`` optionally overrides the generator's repair protocol
    (``"per-query"`` / ``"transactional"``) for this task only.  The
    override travels in the task payload and is resolved per *session*,
    never by mutating the (possibly shared) generator — so one generator
    can serve both repair modes concurrently on any executor.  Repair
    transactions themselves (:class:`repro.core.repair.RepairTransaction`)
    are plain data and pickle across process shards like every other part
    of the payload.
    """

    handler_name: str
    mode: str = "iterative"  # or "all-in-one" (the §5.2.3 ablation path)
    repair_mode: str | None = None


@dataclass
class GenerationOutcome:
    """What one generation task hands back at join time.

    ``result`` is ``None`` when the handler could not be extracted or
    generated (the campaign skips it, exactly like the serial path).  In
    process mode the worker also returns its private backend's usage meter
    and any exchanges its recording backend captured, because those side
    effects happened on pickled copies the parent never sees.
    """

    handler_name: str
    result: "GenerationResult | None" = None
    usage: UsageMeter | None = None
    exchanges: list[RecordedExchange] = field(default_factory=list)


def run_generation_task(
    generator: "KernelGPT",
    task: GenerationTask,
    engine: "ExecutionEngine | None" = None,
    *,
    collect_side_effects: bool = False,
) -> GenerationOutcome:
    """Run one handler's generation pipeline; the engine's task entry point.

    Module-level so every executor can schedule it.  With
    ``collect_side_effects`` (process mode) the worker's backend is given a
    fresh usage meter up front and the outcome carries that meter plus any
    recorded exchanges — the parent folds both into its own backend when the
    batch joins, restoring the accounting a shared-memory run gets for free.
    """
    backend = generator.backend
    exchanges_start = 0
    if collect_side_effects:
        backend.usage = UsageMeter()
        if isinstance(backend, RecordingBackend):
            exchanges_start = len(backend.exchanges)

    outcome = GenerationOutcome(handler_name=task.handler_name)
    try:
        if task.mode == "all-in-one":
            outcome.result = generator.generate_all_in_one(
                task.handler_name, engine=engine, repair_mode=task.repair_mode
            )
        else:
            outcome.result = generator.generate_for_handler(
                task.handler_name, engine=engine, repair_mode=task.repair_mode
            )
    except (ExtractionError, GenerationError):
        outcome.result = None

    if collect_side_effects:
        outcome.usage = backend.usage
        if isinstance(backend, RecordingBackend):
            outcome.exchanges = backend.take_exchanges(exchanges_start)
    return outcome


def merge_outcome_side_effects(backend, outcomes: "list[GenerationOutcome]") -> None:
    """Fold worker-side usage and exchanges into the parent backend.

    Called once per batch, with outcomes in task-submission order, so the
    merged usage totals and recorded transcript are identical for any
    process schedule.  Worker queries are also charged against the parent's
    query budget: raising at join (after all usage/exchanges merged) gives
    the same user-visible outcome as a shared-memory run raising mid-batch.
    """
    merged_queries = 0
    for outcome in outcomes:
        if outcome.usage is not None:
            merged_queries += outcome.usage.queries
            backend.usage.merge(outcome.usage)
        if outcome.exchanges and isinstance(backend, RecordingBackend):
            backend.merge_exchanges(outcome.exchanges)
    backend.note_external_queries(merged_queries)


__all__ = [
    "GenerationTask",
    "GenerationOutcome",
    "run_generation_task",
    "merge_outcome_side_effects",
]
