"""Transactional specification repair: snapshot, batch, commit (§3.2).

The paper's validation-and-repair loop was the last stage still serialized
one LLM query at a time: the per-query loop mutates the suite after every
single repair reply, so the prompt for subject N+1 describes a suite that
subject N's repair already changed.  That coupling is what kept repair off
the batched :meth:`~repro.llm.LLMBackend.complete_batch` protocol.

:class:`RepairTransaction` breaks the coupling the way syzkaller batches
corpus triage per round rather than per program:

1. **Snapshot.**  The transaction copies the suite at round start; every
   repair prompt of the round describes that immutable snapshot.
2. **Group.**  The round's error issues are grouped by ``(subject,
   ErrorCode)`` into independent :class:`RepairItem`\\ s — one prompt each,
   carrying *all* of that subject's issues of that error class.
3. **Batch.**  All items' prompts are fanned out as **one** request batch
   (route tag ``repair``), so a :class:`~repro.llm.BackendPool` can steer
   the whole round to a cheap capability profile and a real provider sees
   one round-trip per round instead of one per broken declaration.
4. **Commit.**  The parsed fragments are applied atomically under the
   deterministic conflict rule below; losers re-queue for the next round.

Determinism rule 7 (the conflict rule)
--------------------------------------
Items are ordered by **subject interning order** — each subject's first
appearance among the report's error issues, which is suite declaration
order because :class:`~repro.syzlang.ValidationReport` emits issues in
declaration order — with a subject's error classes in first-appearance
order after that.  At commit time the fragments are considered in item
order; a fragment is applied only if none of the declarations it touches
(its emitted syscalls/structs/unions/resources/flag sets, plus the
original subject it would rename away) was already touched by a
lower-indexed item.  When
two repairs touch the same declaration, the lower-indexed item wins and
the loser's issues re-queue for the next round.  Renames resolve through
the existing ``_apply_repair`` subject matching, applied in commit order.

Re-queue is realized through re-validation: the committed suite is the
next round's snapshot, so a loser's issues reappear in the fresh report if
(and only if) the winning repairs did not incidentally resolve them — and
under the winner's *new* subject name if the winner renamed the
declaration.  The :class:`RepairCommit` still records the re-queued issues
so round accounting (and the tests) can observe the conflicts.

Transactions are plain data — a suite copy, issue tuples, no locks or
callables — so they pickle across process shards exactly like the
generation task payloads in :mod:`repro.core.tasks`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..errors import SyzlangParseError
from ..syzlang import SpecSuite, ValidationIssue, ValidationReport, parse_suite
from ..syzlang.validator import ErrorCode, Severity

#: Valid repair-loop modes: the historical one-query-per-reply loop (the
#: equivalence oracle) and the snapshot-batched transactional protocol.
REPAIR_MODES = ("per-query", "transactional")

#: Routing tag stamped on transactional repair requests when the generator
#: has no explicit repair route — what a kind-route table (``--route
#: repair=gpt-3.5``) keys on.
REPAIR_ROUTE_TAG = "repair"


@dataclass(frozen=True)
class RepairItem:
    """One independent unit of a repair round.

    All of one subject's issues of one error class, to be repaired by a
    single multi-issue prompt.  ``index`` is the item's position in the
    transaction's deterministic order (rule 7) — the priority used to
    resolve commit conflicts.
    """

    index: int
    subject: str
    code: ErrorCode
    issues: tuple[ValidationIssue, ...]

    def render_errors(self) -> str:
        """The item's error messages, one per line, in report order."""
        return "\n".join(issue.render() for issue in self.issues)


@dataclass
class RepairCommit:
    """What one transaction commit did, for accounting and tests.

    ``changed`` mirrors the per-query loop's round-level ``changed`` flag:
    at least one fragment was applied and altered the suite, so another
    round can make progress.
    """

    applied: tuple[RepairItem, ...] = ()
    conflicts: tuple[RepairItem, ...] = ()
    requeued: tuple[ValidationIssue, ...] = ()
    unparsed: tuple[RepairItem, ...] = ()
    empty: tuple[RepairItem, ...] = ()
    touched: tuple[str, ...] = ()
    changed: bool = False


def fragment_declarations(parsed: SpecSuite) -> tuple[str, ...]:
    """Every declaration name a parsed repair fragment would write."""
    names: dict[str, None] = {}
    for syscall in parsed:
        names[syscall.full_name] = None
    for table in (parsed.structs, parsed.unions, parsed.resources, parsed.flags):
        for name in table:
            names[name] = None
    return tuple(names)


class RepairTransaction:
    """One round of snapshot-batched repair over a validation report.

    Construction takes the live suite and the round-start report; the
    transaction copies the suite (the snapshot every prompt of the round
    describes) and builds the deterministic item list.  ``commit`` then
    applies the round's repaired fragments to the *live* suite under the
    conflict rule.  Between snapshot and commit the transaction never
    observes suite mutations — that is what makes the round's prompts
    batchable in one ``complete_batch``.
    """

    def __init__(self, suite: SpecSuite, report: ValidationReport):
        self.snapshot = suite.copy()
        self.suite_name = suite.name
        self.items: tuple[RepairItem, ...] = self._build_items(report)

    @staticmethod
    def _build_items(report: ValidationReport) -> tuple[RepairItem, ...]:
        """Group error issues by ``(subject, code)`` in interning order.

        Subjects come first-appearance ordered straight from
        :meth:`~repro.syzlang.ValidationReport.subjects_with_errors`
        (declaration order — rule 7's interning order); within a subject,
        error classes keep their first-appearance order.  No set or dict
        iteration over hashed content is involved anywhere.  Warnings never
        form items: they do not block validity, and the per-query loop
        never prompts for warning-only subjects either.
        """
        grouped: dict[tuple[str, ErrorCode], list[ValidationIssue]] = {}
        for issue in report.issues:
            if issue.severity is not Severity.ERROR:
                continue
            grouped.setdefault((issue.subject, issue.code), []).append(issue)
        rank = {subject: position for position, subject in enumerate(report.subjects_with_errors())}
        items: list[RepairItem] = []
        # ``sorted`` is stable, so within one subject the error classes keep
        # their first-appearance (insertion) order.
        for subject, code in sorted(grouped, key=lambda key: rank[key[0]]):
            items.append(
                RepairItem(
                    index=len(items),
                    subject=subject,
                    code=code,
                    issues=tuple(grouped[(subject, code)]),
                )
            )
        return tuple(items)

    def __len__(self) -> int:
        return len(self.items)

    # ------------------------------------------------------------- commit
    def commit(
        self,
        fragments: Sequence[str],
        suite: SpecSuite,
        *,
        apply: Callable[..., bool],
    ) -> RepairCommit:
        """Apply the round's repaired fragments atomically to ``suite``.

        ``fragments`` holds one repaired-description text per item, in item
        order (empty string where the backend produced no repair).
        ``apply`` is the fragment applicator —
        ``KernelGPT._apply_repair(suite, text, original_subject=...,
        parsed=...)`` — called in commit order for every winning item
        (handing over the already-parsed fragment, so conflict detection
        and application share one parse), which is what makes renames
        resolve exactly like the per-query loop.

        The conflict rule (determinism rule 7): a fragment's touched
        declarations are its parsed definitions/syscalls plus the item's
        original subject; the first (lowest-indexed) item to touch a
        declaration wins it, later items touching any already-claimed
        declaration are skipped whole and their issues re-queue.
        """
        if len(fragments) != len(self.items):
            raise ValueError(
                f"commit expects {len(self.items)} fragments, got {len(fragments)}"
            )
        touched: dict[str, None] = {}
        applied: list[RepairItem] = []
        conflicts: list[RepairItem] = []
        requeued: list[ValidationIssue] = []
        unparsed: list[RepairItem] = []
        empty: list[RepairItem] = []
        changed = False
        for item, fragment in zip(self.items, fragments):
            if not fragment:
                empty.append(item)
                continue
            try:
                parsed = parse_suite(fragment)
            except SyzlangParseError:
                unparsed.append(item)
                continue
            writes = fragment_declarations(parsed) + (item.subject,)
            if any(name in touched for name in writes):
                conflicts.append(item)
                requeued.extend(item.issues)
                continue
            for name in writes:
                touched[name] = None
            if apply(suite, fragment, original_subject=item.subject, parsed=parsed):
                applied.append(item)
                changed = True
        return RepairCommit(
            applied=tuple(applied),
            conflicts=tuple(conflicts),
            requeued=tuple(requeued),
            unparsed=tuple(unparsed),
            empty=tuple(empty),
            touched=tuple(touched),
            changed=changed,
        )


__all__ = [
    "REPAIR_MODES",
    "REPAIR_ROUTE_TAG",
    "RepairItem",
    "RepairCommit",
    "RepairTransaction",
    "fragment_declarations",
]
