"""Re-entrant per-handler generation sessions.

Historically :class:`~repro.core.generator.KernelGPT` kept the per-handler
mutable state on itself — the ``_pending_typedefs`` accumulator and the
``backend.usage.queries`` before/after delta used to attribute query counts —
which made ``generate_for_handlers`` inherently serial: two in-flight
handlers would trample each other's typedefs and mis-attribute queries.

:class:`GenerationSession` extracts exactly that state.  One session == one
handler's pipeline run: it owns the typedef accumulator, counts the queries
*it* issues (cache hits included, so attribution is independent of whatever
an engine-level memo cache absorbed), and carries its own
:class:`~repro.core.iterative.IterativeAnalyzer`.  The owning
:class:`KernelGPT` keeps only immutable, shareable collaborators (extractor,
prompt library, validator, constants), so any number of sessions can run
concurrently and still produce byte-identical suites.

Sessions never cross process boundaries: what gets pickled into a
process-pool task is the *generator* plus a plain-data
:class:`~repro.core.tasks.GenerationTask`, and the worker builds its
sessions locally through the module-level :func:`run_session` (a named
function, not a bound method, so task specs that reference it stay
picklable).  Everything a session closes over — the analyzer's extract
hook, the per-stage prompt builders — is therefore worker-local by
construction and never needs to serialize.
"""

from __future__ import annotations

from contextlib import nullcontext

from ..errors import ExtractionError
from ..extractor import HandlerInfo
from ..llm import Completion, LLMRequest, ParsedReply, Prompt, parse_reply
from .iterative import IterativeAnalyzer


class GenerationSession:
    """All mutable state for generating one handler's specification.

    ``engine`` overrides the owning generator's engine for this session —
    the fan-out path uses it so that a ``jobs=N`` run on an engine-less
    generator still memoizes through the engine doing the scheduling.

    Queries flow through the **batched** protocol: :meth:`query_batch`
    wraps prompts into routed :class:`~repro.llm.LLMRequest`\\ s and submits
    them as one ``complete_batch`` (memoized per distinct prompt by
    :meth:`~repro.engine.ExecutionEngine.cached_query_batch` when an engine
    is present); :meth:`query` is the one-element case.  With ``batched``
    (the generator's ``batch_queries`` knob, on by default) the pipeline
    stages submit all their per-handler prompts of a stage as one batch —
    the type stage's per-operation loops run as a wavefront — and are
    byte-identical to per-query submission by construction.
    """

    def __init__(
        self,
        gpt,
        handler_name: str,
        *,
        engine=None,
        batched: bool | None = None,
        repair_mode: str | None = None,
    ):
        self.gpt = gpt
        self.engine = engine if engine is not None else gpt.engine
        self.batched = batched if batched is not None else getattr(gpt, "batch_queries", True)
        #: How validation errors are repaired: ``"per-query"`` (one LLM
        #: round-trip per broken declaration) or ``"transactional"`` (one
        #: snapshot-batched round-trip per round; see repro.core.repair).
        #: Validated here — the choke point every override path (generator
        #: default, task payload, explicit session argument) flows through
        #: — so a typo'd mode fails loudly instead of silently running the
        #: per-query fallback under a bogus label.
        from .repair import REPAIR_MODES

        self.repair_mode = repair_mode or getattr(gpt, "repair_mode", "per-query")
        if self.repair_mode not in REPAIR_MODES:
            raise ValueError(
                f"unknown repair mode {self.repair_mode!r}; "
                f"choose from {', '.join(REPAIR_MODES)}"
            )
        self.handler_name = handler_name
        #: Usage issued by this session (the per-result attribution the
        #: old ``usage.queries`` before/after delta provided, made local).
        #: Cache hits count too: attribution reflects what the session asked
        #: for, independent of what an engine-level memo cache absorbed.
        self.queries = 0
        self.input_tokens = 0
        self.output_tokens = 0
        #: Typedef blocks produced by type-stage replies, keyed by struct name.
        self.pending_typedefs: dict[str, str] = {}
        self.analyzer = IterativeAnalyzer(
            self,
            gpt.extractor,
            max_iterations=gpt.max_iterations,
            extract=self.extract_code,
        )

    # ------------------------------------------------------- backend facade
    def query_batch(self, prompts) -> list[Completion]:
        """Issue a batch of LLM queries, attributed to this session.

        Every prompt is wrapped into an :class:`~repro.llm.LLMRequest`
        carrying the generator's routing tag (``backend_route``), so a
        pool-backed generator steers its whole pipeline to one member
        profile.  Attribution counts every request — cache hits included —
        exactly like the serial per-query path.
        """
        requests = [
            item
            if isinstance(item, LLMRequest)
            else LLMRequest(prompt=item, route=self.gpt.backend_route)
            for item in prompts
        ]
        if not requests:
            return []
        self.queries += len(requests)
        self.input_tokens += sum(request.prompt.approximate_tokens() for request in requests)
        if self.engine is not None:
            completions = self.engine.cached_query_batch(self.gpt.backend, requests)
        else:
            completions = self.gpt.backend.complete_batch(requests)
        self.output_tokens += sum(completion.approximate_tokens() for completion in completions)
        return completions

    def query(self, prompt: Prompt) -> Completion:
        """Issue one LLM query (a one-element batch), attributed to this session."""
        return self.query_batch((prompt,))[0]

    def parse_query_batch(self, prompts) -> list[ParsedReply]:
        return [parse_reply(completion.text) for completion in self.query_batch(prompts)]

    def parse_query(self, prompt: Prompt) -> ParsedReply:
        return parse_reply(self.query(prompt).text)

    def extract_code(self, identifier: str) -> str:
        """One extractor lookup, memoized by the session's engine if present."""
        if self.engine is not None:
            return self.engine.cached_extract(self.gpt.extractor, identifier)
        return self.gpt.extractor.extract_code(identifier)

    def _measure(self, stage: str):
        if self.engine is None:
            return nullcontext()
        return self.engine.profile.measure(f"generation/{stage}")

    # ---------------------------------------------------------------- stages
    def run(self):
        """Run the full three-stage pipeline + validation/repair."""
        gpt = self.gpt
        info = gpt.extractor.handler(self.handler_name)
        name = gpt._readable_name(info)

        with self._measure("identifier"):
            ops, device_path, socket_identity = self.identifier_stage(info)
        with self._measure("type"):
            self.type_stage(info, ops)
        typedefs = dict(self.pending_typedefs)
        with self._measure("dependency"):
            self.dependency_stage(info, ops)
        with self._measure("secondary"):
            secondary_ops, secondary_typedefs = self.analyze_secondary_handlers(info, ops)
        ops.extend(secondary_ops)
        typedefs.update(secondary_typedefs)

        suite = gpt._assemble(info, name, ops, device_path, socket_identity, typedefs)
        from .generator import GenerationResult

        result = GenerationResult(
            handler_name=self.handler_name,
            kind=info.kind,
            name=name,
            suite=suite,
            device_path=device_path,
            socket_family=socket_identity[0] if socket_identity else None,
            ops=ops,
        )
        with self._measure("repair"):
            self.validate_and_repair(info, result)
        result.queries = self.queries
        result.input_tokens = self.input_tokens
        result.output_tokens = self.output_tokens
        return result

    # ------------------------------------------------------------ stage 1
    def identifier_stage(self, info: HandlerInfo):
        from .generator import DiscoveredOp

        gpt = self.gpt
        registration = gpt._registration_text(info)
        initial_code = gpt._dispatch_code(info, extract=self.extract_code)
        ops: list[DiscoveredOp] = []
        device_path: str | None = None
        socket_identity: tuple | None = None
        seen: set[tuple[str, str]] = set()

        def on_reply(reply: ParsedReply) -> None:
            nonlocal device_path, socket_identity
            if reply.device_path and device_path is None:
                device_path = reply.device_path
            if reply.socket_family and socket_identity is None:
                socket_identity = (reply.socket_family, reply.socket_type or 2, reply.socket_protocol or 0)
            for record in reply.identifiers:
                identifier = record.get("IDENT", "")
                syscall = record.get("SYSCALL", "ioctl")
                if not identifier or (identifier, syscall) in seen:
                    continue
                seen.add((identifier, syscall))
                ops.append(
                    DiscoveredOp(
                        identifier=identifier,
                        syscall=syscall,
                        handler_fn=record.get("HANDLER"),
                    )
                )

        def build_prompt(code, unknowns):
            return gpt.prompts.identifier_prompt(
                info.handler_name,
                kind=info.kind,
                registration=registration,
                code=code,
                unknowns=unknowns,
            )

        if self.batched:
            # One analysis loop, but routed through the wavefront so each
            # iteration's prompt is submitted as a (one-element) batch.
            self.analyzer.run_many([(build_prompt, initial_code, on_reply)])
        else:
            self.analyzer.run(build_prompt, initial_code=initial_code, on_reply=on_reply)
        return ops, device_path, socket_identity

    # ------------------------------------------------------------ stage 2
    def type_stage(self, info: HandlerInfo, ops) -> None:
        """Recover argument types: one analysis loop per discovered operation.

        The per-operation loops are independent (each prompt is a function
        of that operation's code and unknowns only), so a batched session
        runs them as one wavefront — every round submits all still-active
        operations' prompts as a single batch.  ``run_many`` applies the
        reply callbacks in operation order afterwards, which keeps the
        typedef accumulator's insertion order — and therefore the serialized
        suite bytes — identical to the per-query path.
        """
        gpt = self.gpt
        runs = []
        for op in ops:
            if op.syscall in ("poll", "accept"):
                op.arg_type = "none"
                continue
            code = gpt._op_code(info, op, extract=self.extract_code)
            if not code:
                op.arg_type = "none"
                continue

            def on_reply(reply: ParsedReply, op=op) -> None:
                for record in reply.argtypes:
                    if record.get("IDENT") in (op.identifier, None):
                        op.arg_type = record.get("TYPE") or op.arg_type
                        op.direction = record.get("DIR", op.direction)
                for struct_name, text in reply.typedefs:
                    self.pending_typedefs[struct_name] = text

            def build_prompt(code_text, unknowns, op=op):
                return gpt.prompts.type_prompt(
                    info.handler_name,
                    identifier=op.identifier,
                    code=code_text,
                    unknowns=unknowns,
                )

            runs.append((build_prompt, code, on_reply))
        if not runs:
            return
        if self.batched:
            self.analyzer.run_many(runs)
        else:
            for build_prompt, code, on_reply in runs:
                self.analyzer.run(build_prompt, initial_code=code, on_reply=on_reply)

    # ------------------------------------------------------------ stage 3
    def dependency_stage(self, info: HandlerInfo, ops) -> None:
        gpt = self.gpt
        blocks: list[str] = []
        for op in ops:
            if not op.handler_fn or not gpt.extractor.has_definition(op.handler_fn):
                continue
            blocks.append(f"/* operation: {op.identifier} */\n{self.extract_code(op.handler_fn)}")
        if not blocks:
            return
        prompt = gpt.prompts.dependency_prompt(info.handler_name, code="\n\n".join(blocks))
        # The stage has exactly one prompt per handler; submit it as a batch
        # so the backend sees batch granularity end to end.
        reply = self.parse_query_batch((prompt,))[0]
        for record in reply.dependencies:
            identifier = record.get("IDENT", "")
            for op in ops:
                if op.identifier == identifier:
                    op.produces = record.get("PRODUCES")
                    op.produces_handler = record.get("HANDLER")

    def analyze_secondary_handlers(self, info: HandlerInfo, ops, *, depth: int = 0):
        """Analyse handlers reached through produced resources (e.g. KVM VM fds).

        Recurses (bounded by the iteration limit) so chains like
        ``/dev/kvm → VM fd → VCPU fd`` are fully discovered.
        """
        from .generator import DiscoveredOp

        gpt = self.gpt
        secondary_ops: list[DiscoveredOp] = []
        typedefs: dict[str, str] = {}
        if depth >= gpt.max_iterations:
            return secondary_ops, typedefs
        for op in ops:
            if not op.produces or not op.produces_handler:
                continue
            try:
                secondary_info = gpt.extractor.handler(op.produces_handler)
            except ExtractionError:
                continue
            saved_typedefs = dict(self.pending_typedefs)
            self.pending_typedefs = {}
            new_ops, _, _ = self.identifier_stage(secondary_info)
            self.type_stage(secondary_info, new_ops)
            self.dependency_stage(secondary_info, new_ops)
            typedefs.update(self.pending_typedefs)
            self.pending_typedefs = saved_typedefs
            for new_op in new_ops:
                new_op.consumes = op.produces
            nested_ops, nested_typedefs = self.analyze_secondary_handlers(
                secondary_info, new_ops, depth=depth + 1
            )
            secondary_ops.extend(new_ops)
            secondary_ops.extend(nested_ops)
            typedefs.update(nested_typedefs)
        return secondary_ops, typedefs

    # --------------------------------------------------- validation + repair
    def validate_and_repair(self, info: HandlerInfo, result) -> None:
        """Validate the assembled suite and drive the session's repair mode.

        ``repair_mode="per-query"`` is the historical loop — one LLM
        round-trip per broken declaration per round, each repair applied
        before the next prompt is built — retained as the equivalence
        oracle.  ``"transactional"`` runs each round as one
        :class:`~repro.core.repair.RepairTransaction`: every prompt
        describes the round-start snapshot, the whole round is one request
        batch, and the fragments commit atomically under determinism
        rule 7.  Both modes converge to the same valid-or-exhausted outcome
        on the oracle corpus; the transactional mode issues one LLM
        round-trip per round instead of one per declaration.
        """
        gpt = self.gpt
        report = gpt._validator.validate(result.suite)
        result.initially_valid = report.is_valid
        result.validation_report = report
        result.valid = report.is_valid
        result.repair_mode = self.repair_mode
        if report.is_valid or not gpt.repair_enabled:
            return
        if self.repair_mode == "transactional":
            self._repair_transactional(info, result, report)
        else:
            self._repair_per_query(info, result, report)

    def _repair_per_query(self, info: HandlerInfo, result, report) -> None:
        gpt = self.gpt
        context = gpt._repair_context(info)
        for round_index in range(1, gpt.repair_rounds + 1):
            result.repair_rounds_used = round_index
            changed = False
            for subject in report.subjects_with_errors():
                description = gpt._describe_subject(result.suite, subject)
                errors = "\n".join(issue.render() for issue in report.issues_for(subject))
                prompt = gpt.prompts.repair_prompt(
                    info.handler_name, description=description, errors=errors, code=context
                )
                reply = self.parse_query(prompt)
                result.repair_queries += 1
                result.repair_llm_calls += 1
                if not reply.repaired_text:
                    continue
                if gpt._apply_repair(result.suite, reply.repaired_text, original_subject=subject):
                    changed = True
            report = gpt._validator.validate(result.suite)
            result.validation_report = report
            if report.is_valid:
                result.valid = True
                result.repaired = True
                return
            if not changed:
                break
        result.valid = report.is_valid

    def _repair_transactional(self, info: HandlerInfo, result, report) -> None:
        """One :class:`RepairTransaction` per round, one LLM batch per round."""
        from .repair import REPAIR_ROUTE_TAG, RepairTransaction

        gpt = self.gpt
        context = gpt._repair_context(info)
        route = gpt.repair_route or gpt.backend_route or REPAIR_ROUTE_TAG
        for round_index in range(1, gpt.repair_rounds + 1):
            result.repair_rounds_used = round_index
            transaction = RepairTransaction(result.suite, report)
            if not transaction.items:
                break
            requests = [
                LLMRequest(
                    prompt=gpt.prompts.repair_item_prompt(
                        info.handler_name,
                        subject=item.subject,
                        error_code=item.code.value,
                        description=gpt._describe_subject(transaction.snapshot, item.subject),
                        errors=item.render_errors(),
                        code=context,
                    ),
                    route=route,
                )
                for item in transaction.items
            ]
            replies = self.parse_query_batch(requests)
            result.repair_queries += len(requests)
            result.repair_llm_calls += 1
            commit = transaction.commit(
                [reply.repaired_text for reply in replies],
                result.suite,
                apply=gpt._apply_repair,
            )
            result.repair_conflicts += len(commit.conflicts)
            result.repair_requeued += len(commit.requeued)
            report = gpt._validator.validate(result.suite)
            result.validation_report = report
            if report.is_valid:
                result.valid = True
                result.repaired = True
                return
            if not commit.changed:
                break
        result.valid = report.is_valid


def run_session(gpt, handler_name: str, *, engine=None, repair_mode: str | None = None):
    """Run one handler's full generation session and return its result.

    The module-level session entry point: process-pool workers (and the
    in-process memoized path) reach sessions through this named function
    instead of a bound ``KernelGPT`` method, which is what keeps generation
    task specs picklable end to end.  ``repair_mode`` overrides the
    generator's repair mode for this session only (a task-level knob, so a
    shared generator is never mutated by a scheduled task).
    """
    return GenerationSession(gpt, handler_name, engine=engine, repair_mode=repair_mode).run()


__all__ = ["GenerationSession", "run_session"]
