"""LLM-guided iterative analysis (Algorithm 1 of the paper).

The loop is stage-agnostic: it sends a prompt, parses the reply, resolves
every UNKNOWN item through the extractor (``ExtractCode``), and re-queries
with the accumulated code until no unknowns remain or ``max_iterations`` is
reached.  Already-extracted identifiers are cached so repeated references do
not grow the prompt, mirroring the paper's path-caching implementation note.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..errors import ExtractionError
from ..extractor import KernelExtractor
from ..llm import LLMBackend, ParsedReply, Prompt, UnknownItem, parse_reply

#: Default iteration bound (MAX_ITER in Algorithm 1).
DEFAULT_MAX_ITERATIONS = 5

#: One analysis loop as data: (build_prompt, initial_code, on_reply) — the
#: exact arguments one :meth:`IterativeAnalyzer.run` call takes, so a stage
#: can collect its loops and submit them as one batched wavefront.
AnalysisRun = tuple[
    Callable[[str, "list[UnknownItem]"], Prompt],
    str,
    Callable[[ParsedReply], None],
]


@dataclass
class IterationTrace:
    """Record of one analysis loop, useful for debugging and tests."""

    prompts: list[Prompt] = field(default_factory=list)
    replies: list[ParsedReply] = field(default_factory=list)
    resolved_unknowns: list[str] = field(default_factory=list)
    unresolved_unknowns: list[str] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        return len(self.prompts)


class IterativeAnalyzer:
    """Runs the Analyze() loop of Algorithm 1 for one stage.

    ``backend`` is anything with a ``query(prompt) -> Completion`` method —
    an :class:`~repro.llm.LLMBackend` or a per-handler
    :class:`~repro.core.session.GenerationSession` (which attributes queries
    to itself and routes them through the engine's memo cache).  ``extract``
    optionally overrides the ``ExtractCode`` lookup, e.g. with the engine's
    memoized variant; it must raise :class:`ExtractionError` like the
    extractor does.
    """

    def __init__(
        self,
        backend: "LLMBackend",
        extractor: KernelExtractor,
        *,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        extract: Callable[[str], str] | None = None,
    ):
        self._backend = backend
        self._extractor = extractor
        self._extract = extract or extractor.extract_code
        self._max_iterations = max_iterations

    def run(
        self,
        build_prompt: Callable[[str, list[UnknownItem]], Prompt],
        *,
        initial_code: str,
        on_reply: Callable[[ParsedReply], None],
    ) -> IterationTrace:
        """Run the loop.

        ``build_prompt(code, unknowns)`` renders the stage prompt for the
        current accumulated code; ``on_reply`` consumes each parsed reply (the
        caller accumulates identifiers/typedefs/dependencies across
        iterations).
        """
        trace = IterationTrace()
        code = initial_code
        unknowns: list[UnknownItem] = []
        extracted: set[str] = set()

        for _ in range(self._max_iterations):
            prompt = build_prompt(code, unknowns)
            trace.prompts.append(prompt)
            reply = parse_reply(self._backend.query(prompt).text)
            trace.replies.append(reply)
            on_reply(reply)

            pending = [item for item in reply.unknowns if item.name not in extracted]
            if not pending:
                break
            unknowns = pending
            additions: list[str] = []
            for item in pending:
                extracted.add(item.name)
                try:
                    additions.append(self._extract(item.name))
                    trace.resolved_unknowns.append(item.name)
                except ExtractionError:
                    trace.unresolved_unknowns.append(item.name)
            if not additions:
                break
            code = code + "\n\n" + "\n\n".join(additions)
        return trace

    def run_many(self, runs: "Sequence[AnalysisRun]") -> list[IterationTrace]:
        """Run several analysis loops as one batched wavefront.

        Per wavefront round, every still-active loop builds its prompt and
        the whole round is submitted as **one batch** through the backend's
        ``query_batch`` (per-prompt ``query`` when the backend has none);
        each loop then advances its own Algorithm-1 state exactly as
        :meth:`run` would.  The loops must be independent — prompt
        construction may not read another loop's ``on_reply`` side effects —
        which holds for the pipeline stages by design (prompts are functions
        of the accumulated code and unknowns only).

        To stay byte-identical with running the loops serially, ``on_reply``
        callbacks are deferred and applied after all loops converge, in run
        order (run 0's replies in iteration order, then run 1's, ...): the
        exact mutation order a serial caller produces, even though replies
        arrived round-major.
        """
        states = [
            {
                "build_prompt": build_prompt,
                "code": initial_code,
                "on_reply": on_reply,
                "unknowns": [],
                "extracted": set(),
                "trace": IterationTrace(),
                "done": False,
            }
            for build_prompt, initial_code, on_reply in runs
        ]
        query_batch = getattr(self._backend, "query_batch", None)
        for _ in range(self._max_iterations):
            active = [state for state in states if not state["done"]]
            if not active:
                break
            prompts = [state["build_prompt"](state["code"], state["unknowns"]) for state in active]
            if query_batch is not None:
                completions = query_batch(prompts)
            else:
                completions = [self._backend.query(prompt) for prompt in prompts]
            for state, prompt, completion in zip(active, prompts, completions):
                reply = parse_reply(completion.text)
                state["trace"].prompts.append(prompt)
                state["trace"].replies.append(reply)
                pending = [item for item in reply.unknowns if item.name not in state["extracted"]]
                if not pending:
                    state["done"] = True
                    continue
                state["unknowns"] = pending
                additions: list[str] = []
                for item in pending:
                    state["extracted"].add(item.name)
                    try:
                        additions.append(self._extract(item.name))
                        state["trace"].resolved_unknowns.append(item.name)
                    except ExtractionError:
                        state["trace"].unresolved_unknowns.append(item.name)
                if not additions:
                    state["done"] = True
                    continue
                state["code"] = state["code"] + "\n\n" + "\n\n".join(additions)
        for state in states:
            for reply in state["trace"].replies:
                state["on_reply"](reply)
        return [state["trace"] for state in states]


__all__ = ["IterativeAnalyzer", "IterationTrace", "AnalysisRun", "DEFAULT_MAX_ITERATIONS"]
