"""LLM-guided iterative analysis (Algorithm 1 of the paper).

The loop is stage-agnostic: it sends a prompt, parses the reply, resolves
every UNKNOWN item through the extractor (``ExtractCode``), and re-queries
with the accumulated code until no unknowns remain or ``max_iterations`` is
reached.  Already-extracted identifiers are cached so repeated references do
not grow the prompt, mirroring the paper's path-caching implementation note.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import ExtractionError
from ..extractor import KernelExtractor
from ..llm import LLMBackend, ParsedReply, Prompt, UnknownItem, parse_reply

#: Default iteration bound (MAX_ITER in Algorithm 1).
DEFAULT_MAX_ITERATIONS = 5


@dataclass
class IterationTrace:
    """Record of one analysis loop, useful for debugging and tests."""

    prompts: list[Prompt] = field(default_factory=list)
    replies: list[ParsedReply] = field(default_factory=list)
    resolved_unknowns: list[str] = field(default_factory=list)
    unresolved_unknowns: list[str] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        return len(self.prompts)


class IterativeAnalyzer:
    """Runs the Analyze() loop of Algorithm 1 for one stage.

    ``backend`` is anything with a ``query(prompt) -> Completion`` method —
    an :class:`~repro.llm.LLMBackend` or a per-handler
    :class:`~repro.core.session.GenerationSession` (which attributes queries
    to itself and routes them through the engine's memo cache).  ``extract``
    optionally overrides the ``ExtractCode`` lookup, e.g. with the engine's
    memoized variant; it must raise :class:`ExtractionError` like the
    extractor does.
    """

    def __init__(
        self,
        backend: "LLMBackend",
        extractor: KernelExtractor,
        *,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        extract: Callable[[str], str] | None = None,
    ):
        self._backend = backend
        self._extractor = extractor
        self._extract = extract or extractor.extract_code
        self._max_iterations = max_iterations

    def run(
        self,
        build_prompt: Callable[[str, list[UnknownItem]], Prompt],
        *,
        initial_code: str,
        on_reply: Callable[[ParsedReply], None],
    ) -> IterationTrace:
        """Run the loop.

        ``build_prompt(code, unknowns)`` renders the stage prompt for the
        current accumulated code; ``on_reply`` consumes each parsed reply (the
        caller accumulates identifiers/typedefs/dependencies across
        iterations).
        """
        trace = IterationTrace()
        code = initial_code
        unknowns: list[UnknownItem] = []
        extracted: set[str] = set()

        for _ in range(self._max_iterations):
            prompt = build_prompt(code, unknowns)
            trace.prompts.append(prompt)
            reply = parse_reply(self._backend.query(prompt).text)
            trace.replies.append(reply)
            on_reply(reply)

            pending = [item for item in reply.unknowns if item.name not in extracted]
            if not pending:
                break
            unknowns = pending
            additions: list[str] = []
            for item in pending:
                extracted.add(item.name)
                try:
                    additions.append(self._extract(item.name))
                    trace.resolved_unknowns.append(item.name)
                except ExtractionError:
                    trace.unresolved_unknowns.append(item.name)
            if not additions:
                break
            code = code + "\n\n" + "\n\n".join(additions)
        return trace


__all__ = ["IterativeAnalyzer", "IterationTrace", "DEFAULT_MAX_ITERATIONS"]
