"""KernelGPT's core: iterative analysis, generation, validation and repair."""

from .filtering import TargetSelection, described_interfaces, scan_missing_specs, select_target_handlers
from .generator import DiscoveredOp, GenerationResult, GenerationRun, KernelGPT
from .iterative import DEFAULT_MAX_ITERATIONS, IterationTrace, IterativeAnalyzer
from .repair import (
    REPAIR_MODES,
    REPAIR_ROUTE_TAG,
    RepairCommit,
    RepairItem,
    RepairTransaction,
)
from .session import GenerationSession, run_session
from .tasks import GenerationOutcome, GenerationTask, merge_outcome_side_effects, run_generation_task

__all__ = [
    "KernelGPT",
    "GenerationResult",
    "GenerationRun",
    "GenerationSession",
    "run_session",
    "REPAIR_MODES",
    "REPAIR_ROUTE_TAG",
    "RepairTransaction",
    "RepairItem",
    "RepairCommit",
    "GenerationTask",
    "GenerationOutcome",
    "run_generation_task",
    "merge_outcome_side_effects",
    "DiscoveredOp",
    "IterativeAnalyzer",
    "IterationTrace",
    "DEFAULT_MAX_ITERATIONS",
    "TargetSelection",
    "select_target_handlers",
    "scan_missing_specs",
    "described_interfaces",
]
