"""Ground-truth model of driver/socket operations in the synthetic kernel.

Every synthetic driver and socket in the kernel substrate is *defined* by the
structures in this module: which device node it registers, which ioctl
commands (or socket options / message operations) it implements, which
argument structure each command takes, which semantic guards the handler
checks before descending into deeper code, and which injected bug a command
can trigger.

From one of these ground-truth descriptions the builder derives three
consistent artifacts:

* the C source text placed in the synthetic kernel codebase (what the
  extractor, KernelGPT and SyzDescribe analyse);
* the behavioural model the simulated executor runs programs against
  (coverage blocks, guard evaluation, crash triggers);
* the reference syzlang specification used for the §5.1.3 correctness audit.

Keeping a single source of truth is what makes the reproduction measurable:
"did the generator infer the right command value / type / dependency?" has an
exact answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Mapping

# --------------------------------------------------------------------------
# ioctl command encoding (mirrors include/uapi/asm-generic/ioctl.h)
# --------------------------------------------------------------------------

_IOC_NONE = 0
_IOC_WRITE = 1
_IOC_READ = 2

_IOC_NRBITS = 8
_IOC_TYPEBITS = 8
_IOC_SIZEBITS = 14

_IOC_NRSHIFT = 0
_IOC_TYPESHIFT = _IOC_NRSHIFT + _IOC_NRBITS
_IOC_SIZESHIFT = _IOC_TYPESHIFT + _IOC_TYPEBITS
_IOC_DIRSHIFT = _IOC_SIZESHIFT + _IOC_SIZEBITS


def ioc(direction: str, ioc_type: int, nr: int, size: int) -> int:
    """Encode an ioctl command value the way ``_IOC()`` does in the kernel."""
    dir_bits = {"none": _IOC_NONE, "in": _IOC_WRITE, "out": _IOC_READ, "inout": _IOC_READ | _IOC_WRITE}[
        direction
    ]
    return (
        (dir_bits << _IOC_DIRSHIFT)
        | ((ioc_type & 0xFF) << _IOC_TYPESHIFT)
        | ((nr & 0xFF) << _IOC_NRSHIFT)
        | ((size & 0x3FFF) << _IOC_SIZESHIFT)
    )


def ioc_nr(command: int) -> int:
    """Extract the NR field from an encoded command (``_IOC_NR``)."""
    return command & 0xFF


# --------------------------------------------------------------------------
# Registration / dispatch styles
# --------------------------------------------------------------------------


class RegistrationStyle(str, Enum):
    """How the driver exposes its device node to userspace."""

    MISC_NAME = "misc-name"          # miscdevice{.name}; device at /dev/<name>
    MISC_NODENAME = "misc-nodename"  # miscdevice{.name, .nodename}; device at /dev/<nodename>
    CDEV = "cdev"                    # cdev_add + device_create("<name>%d")
    PROC = "proc"                    # proc_create("<name>")


class DispatchStyle(str, Enum):
    """How the ioctl handler maps command values to per-command logic."""

    DIRECT_SWITCH = "direct-switch"    # switch (cmd) in the registered handler
    DELEGATED = "delegated"            # registered handler calls a helper that switches
    IOC_NR_REWRITE = "ioc-nr-rewrite"  # helper switches on _IOC_NR(cmd), not cmd
    TABLE_LOOKUP = "table-lookup"      # helper looks the command up in a static table


class ArgKind(str, Enum):
    """What the untyped third ioctl argument actually is."""

    NONE = "none"        # argument ignored
    SCALAR = "scalar"    # plain integer
    STRUCT = "struct"    # pointer to a struct copied in/out
    RESOURCE_OUT = "resource-out"  # pointer to an int the kernel fills with a new resource


# --------------------------------------------------------------------------
# Struct / field ground truth
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FieldTruth:
    """One field of a kernel argument struct.

    ``c_type`` is the C spelling (``__u32``, ``__u64``, ``char``), rendered in
    the synthetic source; ``array_len`` > 0 renders ``type name[len]``;
    ``array_len`` == 0 with ``flexible=True`` renders a flexible array member.
    ``len_of`` names a sibling flexible/variable array whose element count this
    field carries — the semantic relationship static analysis misses
    (Figure 5) and KernelGPT expresses with ``len[...]``.
    ``struct_ref`` makes the field an embedded struct (or array of structs).
    ``out`` marks kernel-written fields (e.g. returned identifiers).
    ``resource`` names the abstract resource this field carries, if any.
    """

    name: str
    c_type: str = "__u32"
    array_len: int = 0
    flexible: bool = False
    len_of: str | None = None
    struct_ref: str | None = None
    out: bool = False
    resource: str | None = None
    valid_range: tuple[int, int] | None = None
    comment: str = ""

    def byte_size(self, struct_sizes: Mapping[str, int] | None = None) -> int:
        base = _C_TYPE_SIZES.get(self.c_type, 4)
        if self.struct_ref is not None and struct_sizes is not None:
            base = struct_sizes.get(self.struct_ref, 8)
        if self.flexible:
            return 0
        if self.array_len:
            return base * self.array_len
        return base


_C_TYPE_SIZES = {
    "__u8": 1,
    "__s8": 1,
    "char": 1,
    "__u16": 2,
    "__s16": 2,
    "__u32": 4,
    "__s32": 4,
    "int": 4,
    "unsigned int": 4,
    "__u64": 8,
    "__s64": 8,
    "unsigned long": 8,
}

#: Mapping from C field types to syzlang integer widths.
C_TO_SYZ_WIDTH = {
    "__u8": "int8",
    "__s8": "int8",
    "char": "int8",
    "__u16": "int16",
    "__s16": "int16",
    "__u32": "int32",
    "__s32": "int32",
    "int": "int32",
    "unsigned int": "int32",
    "__u64": "int64",
    "__s64": "int64",
    "unsigned long": "int64",
}


@dataclass(frozen=True)
class StructTruth:
    """Ground truth for a kernel argument struct definition."""

    name: str
    fields: tuple[FieldTruth, ...]
    comment: str = ""

    def field_names(self) -> tuple[str, ...]:
        return tuple(member.name for member in self.fields)

    def byte_size(self, struct_sizes: Mapping[str, int] | None = None) -> int:
        return sum(member.byte_size(struct_sizes) for member in self.fields)


# --------------------------------------------------------------------------
# Guards and bug triggers
# --------------------------------------------------------------------------


class GuardKind(str, Enum):
    """Semantic checks a handler performs before reaching deeper code."""

    MIN_SIZE = "min-size"            # copy_from_user of the full struct must succeed
    FIELD_RANGE = "field-range"      # field value must fall within [lo, hi]
    FIELD_EQUALS = "field-equals"    # field must equal a constant
    LEN_MATCHES = "len-matches"      # count field must match sibling array length
    FLAGS_SUBSET = "flags-subset"    # flags field must only contain known bits
    NEEDS_RESOURCE = "needs-resource"  # a resource from an earlier call is required


@dataclass(frozen=True)
class Guard:
    """One semantic validity check inside a command handler.

    ``bonus_blocks`` is the number of additional basic blocks covered when the
    check passes; programs generated from poor specifications fail guards and
    stay in the shallow error paths.
    """

    kind: GuardKind
    field: str = ""
    low: int = 0
    high: int = 0
    value: int = 0
    target: str = ""
    resource: str = ""
    bonus_blocks: int = 4


@dataclass(frozen=True)
class BugTrigger:
    """Conditions under which a command triggers an injected kernel bug.

    ``requires_typed`` means the trigger field values are only reachable when
    the fuzzer knows the argument's struct layout (i.e. the spec describes the
    type), mirroring how the paper's bugs were unreachable from untyped or
    wrongly-typed descriptions.  ``requires_resource`` additionally demands a
    correctly-ordered earlier syscall that produced the named resource.
    """

    bug_id: str
    field: str = ""
    min_value: int | None = None
    max_value: int | None = None
    equals: int | None = None
    requires_typed: bool = True
    requires_resource: str = ""
    probability: float = 1.0


# --------------------------------------------------------------------------
# Operations
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class IoctlOp:
    """Ground truth for one ioctl command of a driver handler.

    ``macro`` is the userspace-visible command macro (what a correct spec must
    use); ``value`` its encoded value; ``nr_macro``/``nr_value`` the inner
    switch constant when the driver rewrites the command with ``_IOC_NR``.
    """

    macro: str
    value: int
    arg_kind: ArgKind = ArgKind.STRUCT
    arg_struct: str | None = None
    direction: str = "in"
    nr_macro: str | None = None
    nr_value: int | None = None
    base_blocks: int = 6
    guards: tuple[Guard, ...] = ()
    produces: str | None = None
    requires: str | None = None
    bug: BugTrigger | None = None
    handler_fn: str | None = None
    comment: str = ""

    @property
    def interface_name(self) -> str:
        """The canonical interface label (``ioctl$MACRO``) used in accounting."""
        return f"ioctl${self.macro}"


@dataclass(frozen=True)
class SockOp:
    """Ground truth for one socket operation (setsockopt/getsockopt/sendto...).

    ``syscall`` is the generic syscall implementing the operation; for
    ``setsockopt``/``getsockopt`` the ``optname`` macro/value identify it, for
    message syscalls the operation is identified by the syscall itself.
    """

    syscall: str
    macro: str
    value: int = 0
    level_macro: str = "SOL_SOCKET"
    level_value: int = 1
    arg_struct: str | None = None
    direction: str = "in"
    base_blocks: int = 6
    guards: tuple[Guard, ...] = ()
    bug: BugTrigger | None = None
    comment: str = ""

    @property
    def interface_name(self) -> str:
        return f"{self.syscall}${self.macro}" if self.macro else self.syscall


# --------------------------------------------------------------------------
# Handlers (drivers and sockets)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class DriverTruth:
    """Complete ground truth for one driver operation handler.

    ``handler_name`` is the ``file_operations`` variable name (what the
    extractor discovers); ``device_path`` the node a correct spec must open.
    ``resources`` lists secondary resources produced by ops (e.g. the KVM VM
    and VCPU file descriptors) together with the ops available on them.
    """

    name: str
    handler_name: str
    device_path: str
    registration: RegistrationStyle
    dispatch: DispatchStyle
    ioctl_handler_fn: str
    ops: tuple[IoctlOp, ...]
    structs: tuple[StructTruth, ...] = ()
    source_file: str = ""
    open_blocks: int = 8
    ioctl_entry_blocks: int = 4
    misc_name: str = ""
    config_option: str = ""
    hardware_gated: bool = False
    debug_only: bool = False
    secondary_handlers: tuple["SecondaryHandlerTruth", ...] = ()
    comment: str = ""

    def op_by_macro(self, macro: str) -> IoctlOp | None:
        for op in self.ops:
            if op.macro == macro:
                return op
        for secondary in self.secondary_handlers:
            for op in secondary.ops:
                if op.macro == macro:
                    return op
        return None

    def all_ops(self) -> tuple[IoctlOp, ...]:
        """Every op including those registered on secondary handlers."""
        ops = list(self.ops)
        for secondary in self.secondary_handlers:
            ops.extend(secondary.ops)
        return tuple(ops)

    def interface_names(self) -> tuple[str, ...]:
        """Ground-truth syscall interface labels, openat first.

        Generic syscalls are keyed by their command macro (``ioctl$DM_VERSION``)
        while the device-open interface is keyed simply as ``openat`` — variant
        suffixes for openat differ between generators and carry no semantics.
        """
        names = ["openat"]
        names.extend(op.interface_name for op in self.all_ops())
        return tuple(names)

    def struct_by_name(self, name: str) -> StructTruth | None:
        for struct in self.structs:
            if struct.name == name:
                return struct
        return None


@dataclass(frozen=True)
class SecondaryHandlerTruth:
    """A dependent operation handler reached through a produced resource.

    Example: KVM's ``kvm_vm_fops``/``kvm_vcpu_fops`` — file descriptors
    returned by ``KVM_CREATE_VM``/``KVM_CREATE_VCPU`` expose further ioctls.
    Discovering these is what gives KernelGPT its large coverage win on kvm
    (§5.2.1).
    """

    name: str
    handler_name: str
    resource: str
    ioctl_handler_fn: str
    ops: tuple[IoctlOp, ...]
    ioctl_entry_blocks: int = 4


@dataclass(frozen=True)
class SocketTruth:
    """Complete ground truth for one socket protocol handler."""

    name: str
    handler_name: str
    family_macro: str
    family_value: int
    sock_type: int
    protocol: int
    ops: tuple[SockOp, ...]
    structs: tuple[StructTruth, ...] = ()
    source_file: str = ""
    create_blocks: int = 10
    config_option: str = ""
    hardware_gated: bool = False
    comment: str = ""

    def interface_names(self) -> tuple[str, ...]:
        names = ["socket"]
        names.extend(op.interface_name for op in self.ops)
        return tuple(names)

    def op_by_interface(self, interface: str) -> SockOp | None:
        for op in self.ops:
            if op.interface_name == interface:
                return op
        return None

    def struct_by_name(self, name: str) -> StructTruth | None:
        for struct in self.structs:
            if struct.name == name:
                return struct
        return None


__all__ = [
    "ioc",
    "ioc_nr",
    "RegistrationStyle",
    "DispatchStyle",
    "ArgKind",
    "FieldTruth",
    "StructTruth",
    "C_TO_SYZ_WIDTH",
    "GuardKind",
    "Guard",
    "BugTrigger",
    "IoctlOp",
    "SockOp",
    "DriverTruth",
    "SecondaryHandlerTruth",
    "SocketTruth",
]
