"""Primitive C source constructs of the synthetic kernel codebase.

The synthetic kernel is stored as *text* — real-looking C source files — so
that the extractor genuinely has to parse it and the LLM backends genuinely
receive code in their prompts.  This module provides the structured building
blocks a source file is assembled from (macro defines, struct definitions,
functions, struct-variable initializers) and renders them with a consistent
formatting style, which is what makes the downstream parsing tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True)
class CDefine:
    """A ``#define NAME value`` line; ``value`` may be an int or raw C text."""

    name: str
    value: int | str
    comment: str = ""

    def render(self) -> str:
        if isinstance(self.value, int):
            text = f"#define {self.name} {hex(self.value) if self.value > 9 else self.value}"
        else:
            text = f"#define {self.name} {self.value}"
        if self.comment:
            text += f" /* {self.comment} */"
        return text


@dataclass(frozen=True)
class CStructField:
    """One member of a C struct definition."""

    c_type: str
    name: str
    array: str = ""
    comment: str = ""

    def render(self) -> str:
        suffix = f"[{self.array}]" if self.array != "" else ""
        text = f"\t{self.c_type} {self.name}{suffix};"
        if self.comment:
            text += f"\t/* {self.comment} */"
        return text


@dataclass(frozen=True)
class CStruct:
    """A C struct definition."""

    name: str
    fields: tuple[CStructField, ...]
    comment: str = ""

    def render(self) -> str:
        lines = []
        if self.comment:
            lines.append(f"/* {self.comment} */")
        lines.append(f"struct {self.name} {{")
        lines.extend(member.render() for member in self.fields)
        lines.append("};")
        return "\n".join(lines)


@dataclass(frozen=True)
class CFunction:
    """A C function with its full (synthetic) body."""

    name: str
    return_type: str
    params: str
    body: str
    static: bool = True
    comment: str = ""

    def render(self) -> str:
        lines = []
        if self.comment:
            lines.append(f"/* {self.comment} */")
        qualifier = "static " if self.static else ""
        lines.append(f"{qualifier}{self.return_type} {self.name}({self.params})")
        lines.append("{")
        lines.append(self.body.rstrip("\n"))
        lines.append("}")
        return "\n".join(lines)


@dataclass(frozen=True)
class CInitializer:
    """A designated-initializer global, e.g. a ``file_operations`` instance.

    ``struct_type`` is the struct tag (``file_operations``, ``miscdevice``,
    ``proto_ops``); ``fields`` maps member names to raw C initializer text.
    """

    struct_type: str
    var_name: str
    fields: tuple[tuple[str, str], ...]
    const: bool = True
    comment: str = ""

    def render(self) -> str:
        lines = []
        if self.comment:
            lines.append(f"/* {self.comment} */")
        qualifiers = "static const" if self.const else "static"
        lines.append(f"{qualifiers} struct {self.struct_type} {self.var_name} = {{")
        lines.extend(f"\t.{name} = {value}," for name, value in self.fields)
        lines.append("};")
        return "\n".join(lines)

    def field_value(self, name: str) -> str | None:
        for field_name, value in self.fields:
            if field_name == name:
                return value
        return None


@dataclass(frozen=True)
class CStatement:
    """A free-standing top-level statement or call (e.g. module init bodies)."""

    text: str

    def render(self) -> str:
        return self.text


@dataclass
class CSourceFile:
    """One file of the synthetic kernel codebase.

    Items are rendered in insertion order; the file also keeps an index of
    its defines, structs, functions and initializers so the codebase can build
    fast lookup tables without re-parsing its own output.
    """

    path: str
    items: list[object] = field(default_factory=list)
    header_comment: str = ""

    def add(self, item) -> None:
        self.items.append(item)

    def extend(self, items: Iterable[object]) -> None:
        self.items.extend(items)

    def render(self) -> str:
        parts = [f"// SPDX-License-Identifier: GPL-2.0", f"/* {self.path} */"]
        if self.header_comment:
            parts.append(f"/* {self.header_comment} */")
        for item in self.items:
            parts.append(item.render())
        return "\n\n".join(parts) + "\n"

    # Convenience indexed views -------------------------------------------------
    def defines(self) -> list[CDefine]:
        return [item for item in self.items if isinstance(item, CDefine)]

    def structs(self) -> list[CStruct]:
        return [item for item in self.items if isinstance(item, CStruct)]

    def functions(self) -> list[CFunction]:
        return [item for item in self.items if isinstance(item, CFunction)]

    def initializers(self) -> list[CInitializer]:
        return [item for item in self.items if isinstance(item, CInitializer)]


__all__ = [
    "CDefine",
    "CStructField",
    "CStruct",
    "CFunction",
    "CInitializer",
    "CStatement",
    "CSourceFile",
]
