"""Socket protocol handlers: the Table 6 evaluation set and the scan population.

Table 6 compares socket specification generation between the existing
Syzkaller descriptions and KernelGPT on ten protocol handlers.  SyzDescribe
cannot analyse sockets at all, so it does not appear.  Two of the Table 4
bugs live in sockets (the RDS out-of-bounds read reached through the missing
``sendto`` description and the IPv6 append-data leak in ``l2tp_ip6``), which
is why those profiles carry bug sites on message operations the existing
corpus does not describe.

As with drivers, a deterministic filler population brings the socket scan to
the paper's scale (85 handlers under ``allyesconfig``, 81 loaded, 66 with
missing descriptions, 22 of them missing more than 80% of their syscalls).
"""

from __future__ import annotations

import random

from .factory import BugSite, SocketProfile

#: Profiles for the ten Table 6 socket handlers.
TABLE6_SOCKET_PROFILES: tuple[SocketProfile, ...] = (
    SocketProfile(
        name="caif_stream", family_macro="AF_CAIF", family_value=37, sock_type=1,
        num_setsockopt=2, num_getsockopt=1,
        message_ops=("bind", "connect", "sendto", "recvfrom"),
        config_option="CONFIG_CAIF", comment="CAIF stream sockets",
    ),
    SocketProfile(
        name="l2tp_ip6", family_macro="AF_INET6", family_value=10, sock_type=2, protocol=115,
        num_setsockopt=45, num_getsockopt=40,
        message_ops=("bind", "connect", "sendto", "recvfrom", "sendmsg", "recvmsg"),
        config_option="CONFIG_L2TP",
        bugs=(BugSite("ipv6-leak-append-data", op_index=3, field_name="payload_len", min_value=0x10000),),
        comment="L2TP over IPv6 sockets (one Syzkaller syscall hides 45 option values)",
    ),
    SocketProfile(
        name="llc_ui", family_macro="AF_LLC", family_value=26, sock_type=2,
        num_setsockopt=10, num_getsockopt=6,
        message_ops=("bind", "connect", "sendto", "recvfrom", "sendmsg"),
        config_option="CONFIG_LLC2", comment="IEEE 802.2 LLC sockets",
    ),
    SocketProfile(
        name="mptcp", family_macro="AF_INET", family_value=2, sock_type=1, protocol=262,
        num_setsockopt=32, num_getsockopt=28,
        message_ops=("bind", "connect", "sendto", "recvfrom", "sendmsg", "recvmsg"),
        config_option="CONFIG_MPTCP", comment="multipath TCP sockets",
    ),
    SocketProfile(
        name="packet", family_macro="AF_PACKET", family_value=17, sock_type=3,
        num_setsockopt=12, num_getsockopt=6,
        message_ops=("bind", "sendto", "recvfrom", "sendmsg"),
        config_option="CONFIG_PACKET", blocks_scale=1.8, comment="raw packet sockets",
    ),
    SocketProfile(
        name="phonet_dgram", family_macro="AF_PHONET", family_value=35, sock_type=2,
        num_setsockopt=4, num_getsockopt=2,
        message_ops=("bind", "connect", "sendto", "recvfrom"),
        config_option="CONFIG_PHONET", comment="Phonet datagram sockets",
    ),
    SocketProfile(
        name="pppol2tp", family_macro="AF_PPPOX", family_value=24, sock_type=2,
        num_setsockopt=6, num_getsockopt=3,
        message_ops=("connect", "sendto", "recvfrom"),
        config_option="CONFIG_PPPOL2TP", blocks_scale=1.5, comment="PPP over L2TP sockets",
    ),
    SocketProfile(
        name="rds", family_macro="AF_RDS", family_value=21, sock_type=5,
        num_setsockopt=8, num_getsockopt=4,
        message_ops=("bind", "connect", "sendto", "recvfrom", "recvmsg"),
        config_option="CONFIG_RDS", blocks_scale=1.4,
        bugs=(BugSite("rds-oob-cmsg-recv", op_index=3, field_name="cmsg_type", min_value=0x40),),
        comment="reliable datagram sockets; the sendto description is missing upstream",
    ),
    SocketProfile(
        name="rfcomm_sock", family_macro="AF_BLUETOOTH", family_value=31, sock_type=1, protocol=3,
        num_setsockopt=7, num_getsockopt=4,
        message_ops=("bind", "connect", "sendto", "recvfrom"),
        config_option="CONFIG_BT_RFCOMM", comment="Bluetooth RFCOMM sockets",
    ),
    SocketProfile(
        name="sco_sock", family_macro="AF_BLUETOOTH", family_value=31, sock_type=5, protocol=2,
        num_setsockopt=6, num_getsockopt=4,
        message_ops=("bind", "connect", "sendto", "recvfrom"),
        config_option="CONFIG_BT_SCO", comment="Bluetooth SCO audio sockets",
    ),
)

#: Number of each Table 6 socket's operations the existing Syzkaller corpus
#: describes (the paper's Table 6 ``# Sys`` column for Syzkaller, minus the
#: ``socket`` call itself).
SYZKALLER_SOCKET_DESCRIBED: dict[str, int | None] = {
    "caif_stream": 3,
    "l2tp_ip6": 37,
    "llc_ui": 9,
    "mptcp": 21,
    "packet": 21,
    "phonet_dgram": 6,
    "pppol2tp": 9,
    "rds": 10,
    "rfcomm_sock": 15,
    "sco_sock": 14,
}

#: Paper Table 6 values used for shape comparison in EXPERIMENTS.md.
PAPER_TABLE6 = {
    "caif_stream": {"syzkaller": (4, 8947, 0.7), "kernelgpt": (6, 11902, 0.7)},
    "l2tp_ip6": {"syzkaller": (38, 18350, 0.7), "kernelgpt": (99, 18080, 0.7)},
    "llc_ui": {"syzkaller": (10, 7648, 0.3), "kernelgpt": (24, 16437, 0.0)},
    "mptcp": {"syzkaller": (22, 10480, 1.3), "kernelgpt": (70, 13942, 0.7)},
    "packet": {"syzkaller": (22, 22082, 0.3), "kernelgpt": (25, 21363, 0.3)},
    "phonet_dgram": {"syzkaller": (7, 11426, 1.0), "kernelgpt": (12, 15202, 0.7)},
    "pppol2tp": {"syzkaller": (10, 18789, 0.3), "kernelgpt": (14, 12379, 0.7)},
    "rds": {"syzkaller": (11, 13693, 0.3), "kernelgpt": (19, 17462, 1.0)},
    "rfcomm_sock": {"syzkaller": (22, 7263, 1.0), "kernelgpt": (16, 10893, 0.7)},
    "sco_sock": {"syzkaller": (20, 11349, 1.0), "kernelgpt": (19, 16527, 0.7)},
}

#: Scan-scale targets for sockets (paper §5.1).
SOCKET_SCAN_TARGETS = {
    "socket_total": 85,
    "socket_loaded": 81,
    "socket_incomplete": 66,
    "socket_mostly_missing": 22,  # handlers missing more than 80% of their syscalls
}

_FAMILIES = (
    ("AF_INET", 2), ("AF_INET6", 10), ("AF_UNIX", 1), ("AF_PACKET", 17),
    ("AF_BLUETOOTH", 31), ("AF_NETLINK", 16), ("AF_CAN", 29), ("AF_TIPC", 30),
    ("AF_XDP", 44), ("AF_VSOCK", 40), ("AF_KCM", 41), ("AF_QIPCRTR", 42),
)


def _filler_socket(index: int, *, loaded: bool) -> SocketProfile:
    rng = random.Random(f"filler-socket:{index}")
    family_macro, family_value = _FAMILIES[index % len(_FAMILIES)]
    name = f"synthsock{index:02d}"
    message_pool = ("bind", "connect", "sendto", "recvfrom", "sendmsg", "recvmsg", "accept")
    message_ops = tuple(rng.sample(message_pool, rng.randint(2, 5)))
    return SocketProfile(
        name=name,
        family_macro=family_macro,
        family_value=family_value,
        sock_type=rng.choice((1, 2, 3, 5)),
        protocol=rng.randint(0, 20),
        num_setsockopt=rng.randint(2, 12),
        num_getsockopt=rng.randint(1, 6),
        message_ops=message_ops,
        opt_prefix=name.upper(),
        config_option=f"CONFIG_{name.upper()}",
        hardware_gated=not loaded,
        comment=f"synthetic filler socket protocol #{index}",
    )


def socket_population() -> list[tuple[SocketProfile, int | None]]:
    """Return every socket profile with its existing-corpus coverage.

    Coverage values follow the same convention as the driver population:
    ``None`` = fully described, ``0`` = undescribed, otherwise the count of
    described operations.
    """
    population: list[tuple[SocketProfile, int | None]] = []
    for profile in TABLE6_SOCKET_PROFILES:
        population.append((profile, SYZKALLER_SOCKET_DESCRIBED[profile.name]))

    targets = SOCKET_SCAN_TARGETS
    table6_count = len(TABLE6_SOCKET_PROFILES)
    filler_total = targets["socket_total"] - table6_count
    filler_loaded = targets["socket_loaded"] - table6_count
    filler_incomplete = targets["socket_incomplete"] - table6_count
    filler_mostly_missing = targets["socket_mostly_missing"]

    rng = random.Random("filler-socket-coverage")
    index = 0
    # Loaded handlers missing more than 80% of their syscalls.
    for _ in range(filler_mostly_missing):
        profile = _filler_socket(index, loaded=True)
        total_ops = profile.num_setsockopt + profile.num_getsockopt + len(profile.message_ops) + 1
        described = rng.randint(0, max(0, int(total_ops * 0.18)))
        population.append((profile, described))
        index += 1
    # Loaded handlers with a smaller fraction missing.
    for _ in range(filler_incomplete - filler_mostly_missing):
        profile = _filler_socket(index, loaded=True)
        total_ops = profile.num_setsockopt + profile.num_getsockopt + len(profile.message_ops) + 1
        described = max(1, int(total_ops * rng.uniform(0.3, 0.9)))
        population.append((profile, described))
        index += 1
    # Loaded and fully described.
    for _ in range(filler_loaded - filler_incomplete):
        population.append((_filler_socket(index, loaded=True), None))
        index += 1
    # Compiled but not loaded.
    for _ in range(filler_total - filler_loaded):
        population.append((_filler_socket(index, loaded=False), None))
        index += 1
    return population


__all__ = [
    "TABLE6_SOCKET_PROFILES",
    "SYZKALLER_SOCKET_DESCRIBED",
    "PAPER_TABLE6",
    "SOCKET_SCAN_TARGETS",
    "socket_population",
]
