"""Kernel build configurations.

The paper scans the kernel under ``allyesconfig`` (every driver compiled in)
but fuzzes a kernel built with the ``syzbot`` configuration (the bootable
subset Google's syzbot uses).  The reproduction models a configuration as a
predicate over config option names: a handler whose ``config_option`` is not
enabled in the active configuration is compiled in (visible to the scan) but
not loaded (not fuzzable / not counted in Table 1's "loaded" columns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True)
class KernelConfig:
    """A named kernel configuration.

    ``enable_all`` makes every option enabled (allyesconfig); otherwise only
    options in ``enabled`` are on.  ``exclude_hardware_gated`` and
    ``exclude_debug`` model the paper's filtering of drivers that need real
    hardware or exist purely for testing (e.g. ``/dev/gup_test``).
    """

    name: str
    enable_all: bool = False
    enabled: frozenset[str] = frozenset()
    exclude_hardware_gated: bool = False
    exclude_debug: bool = False

    def option_enabled(self, option: str) -> bool:
        """Return True if the named config option is on in this configuration."""
        if not option:
            return True
        if self.enable_all:
            return True
        return option in self.enabled

    def loads(self, *, config_option: str, hardware_gated: bool, debug_only: bool) -> bool:
        """Return True if a handler with these attributes is loaded/bootable."""
        if self.exclude_hardware_gated and hardware_gated:
            return False
        if self.exclude_debug and debug_only:
            return False
        return self.option_enabled(config_option)


def allyesconfig() -> KernelConfig:
    """The scan configuration: everything compiled in, nothing filtered."""
    return KernelConfig(name="allyesconfig", enable_all=True)


def syzbot_config(enabled_options: Iterable[str]) -> KernelConfig:
    """The fuzzing configuration: bootable modules only, debug/hw drivers excluded."""
    return KernelConfig(
        name="syzbot",
        enable_all=False,
        enabled=frozenset(enabled_options),
        exclude_hardware_gated=True,
        exclude_debug=True,
    )


__all__ = ["KernelConfig", "allyesconfig", "syzbot_config"]
