"""Kernel build configurations.

The paper scans the kernel under ``allyesconfig`` (every driver compiled in)
but fuzzes a kernel built with the ``syzbot`` configuration (the bootable
subset Google's syzbot uses).  The reproduction models a configuration as a
predicate over config option names: a handler whose ``config_option`` is not
enabled in the active configuration is compiled in (visible to the scan) but
not loaded (not fuzzable / not counted in Table 1's "loaded" columns).

A handler that is genuinely unconditional — no ``CONFIG_*`` guard in its
source — must say so explicitly with :data:`ALWAYS_BUILT_IN`.  An *empty*
option is "unconfigured", which a selective configuration never loads:
before the sentinel existed, ``option_enabled("")`` returned True
unconditionally, so config pruning silently enabled every handler whose
truth forgot to name its option.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

#: Explicit marker for handlers compiled unconditionally (no CONFIG_ guard).
#: Distinct from the empty string, which means "option unknown/unconfigured"
#: and is loaded only under ``enable_all`` configurations.
ALWAYS_BUILT_IN = "<always-built-in>"


@dataclass(frozen=True)
class KernelConfig:
    """A named kernel configuration.

    ``enable_all`` makes every option enabled (allyesconfig); otherwise only
    options in ``enabled`` are on.  ``exclude_hardware_gated`` and
    ``exclude_debug`` model the paper's filtering of drivers that need real
    hardware or exist purely for testing (e.g. ``/dev/gup_test``).
    """

    name: str
    enable_all: bool = False
    enabled: frozenset[str] = frozenset()
    exclude_hardware_gated: bool = False
    exclude_debug: bool = False

    def option_enabled(self, option: str | None) -> bool:
        """Return True if the named config option is on in this configuration.

        ``enable_all`` enables everything compiled in, including handlers
        with an empty (unconfigured) option — the scan must see the whole
        tree.  A selective configuration enables :data:`ALWAYS_BUILT_IN`
        handlers and its ``enabled`` options; an empty/None option is *not*
        treated as always-on.
        """
        if self.enable_all:
            return True
        if option == ALWAYS_BUILT_IN:
            return True
        if not option:
            return False
        return option in self.enabled

    def loads(self, *, config_option: str, hardware_gated: bool, debug_only: bool) -> bool:
        """Return True if a handler with these attributes is loaded/bootable."""
        if self.exclude_hardware_gated and hardware_gated:
            return False
        if self.exclude_debug and debug_only:
            return False
        return self.option_enabled(config_option)


def allyesconfig() -> KernelConfig:
    """The scan configuration: everything compiled in, nothing filtered."""
    return KernelConfig(name="allyesconfig", enable_all=True)


def syzbot_config(enabled_options: Iterable[str]) -> KernelConfig:
    """The fuzzing configuration: bootable modules only, debug/hw drivers excluded."""
    return KernelConfig(
        name="syzbot",
        enable_all=False,
        enabled=frozenset(enabled_options),
        exclude_hardware_gated=True,
        exclude_debug=True,
    )


__all__ = ["ALWAYS_BUILT_IN", "KernelConfig", "allyesconfig", "syzbot_config"]
