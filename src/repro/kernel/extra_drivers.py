"""Drivers beyond Table 5: the Table 4 bug drivers and the scan population.

The paper's §5.1 scans 666 driver operation handlers under ``allyesconfig``
(278 of them loaded under the syzbot configuration) and finds 75 loaded
handlers with missing syscall descriptions, 45 of which have no description
at all.  This module provides:

* profiles for the drivers in which Table 4's bugs live (device mapper, CEC,
  UBI, DVB, ...), all absent from the existing Syzkaller corpus — these are
  the handlers whose new KernelGPT specifications find the injected bugs;
* a deterministic filler population of additional driver handlers that brings
  the scan totals and the missing-specification distribution (Figure 7) to
  the paper's scale.

``driver_population()`` returns every extra profile along with the number of
its operations the existing Syzkaller corpus describes (``None`` = fully
described, ``0`` = not described at all).
"""

from __future__ import annotations

import random

from .factory import BugSite, DriverProfile
from .ops import DispatchStyle, RegistrationStyle
from .table5_drivers import SYZKALLER_DESCRIBED, TABLE5_DRIVER_PROFILES

_MISC = RegistrationStyle.MISC_NAME
_NODENAME = RegistrationStyle.MISC_NODENAME
_CDEV = RegistrationStyle.CDEV
_PROC = RegistrationStyle.PROC

_DIRECT = DispatchStyle.DIRECT_SWITCH
_DELEG = DispatchStyle.DELEGATED
_REWRITE = DispatchStyle.IOC_NR_REWRITE
_TABLE = DispatchStyle.TABLE_LOOKUP


#: Drivers hosting the Table 4 bugs.  None of them is described by the
#: existing Syzkaller corpus, mirroring §5.1.4 ("17 bugs are detected from the
#: drivers/sockets ... Syzkaller lacks specifications for them").
BUG_DRIVER_PROFILES: tuple[DriverProfile, ...] = (
    DriverProfile(
        name="device-mapper",
        device_path="/dev/mapper/control",
        registration=_NODENAME,
        dispatch=_TABLE,
        num_ops=18,
        op_prefix="DM",
        misc_name="device-mapper",
        handler_name="dm_ctl_fops",
        ioctl_handler_fn="dm_ctl_ioctl",
        source_file="drivers/md/dm-ioctl.c",
        config_option="CONFIG_BLK_DEV_DM",
        op_names=(
            "DM_VERSION", "DM_REMOVE_ALL", "DM_LIST_DEVICES", "DM_DEV_CREATE",
            "DM_DEV_REMOVE", "DM_DEV_RENAME", "DM_DEV_SUSPEND", "DM_DEV_STATUS",
            "DM_DEV_WAIT", "DM_TABLE_LOAD", "DM_TABLE_CLEAR", "DM_TABLE_DEPS",
            "DM_TABLE_STATUS", "DM_LIST_VERSIONS", "DM_TARGET_MSG",
            "DM_DEV_SET_GEOMETRY", "DM_DEV_ARM_POLL", "DM_GET_TARGET_VERSION",
        ),
        bugs=(
            BugSite("dm-kmalloc-ctl-ioctl", macro="DM_TABLE_LOAD", field_name="data_size", min_value=0x10000000),
            BugSite("dm-kmalloc-table-create", macro="DM_DEV_CREATE", field_name="data_size", min_value=0x20000000),
            BugSite("dm-gpf-cleanup-mapped-device", macro="DM_DEV_REMOVE", field_name="event_nr", min_value=0x40000000),
        ),
        comment="device mapper control device (Figure 2 running example)",
    ),
    DriverProfile(
        name="cec",
        device_path="/dev/cec#",
        registration=_CDEV,
        dispatch=_DELEG,
        num_ops=12,
        op_prefix="CEC",
        handler_name="cec_devnode_fops",
        ioctl_handler_fn="cec_ioctl",
        source_file="drivers/media/cec/core/cec-api.c",
        config_option="CONFIG_CEC_CORE",
        op_names=(
            "CEC_ADAP_G_CAPS", "CEC_ADAP_G_PHYS_ADDR", "CEC_ADAP_S_PHYS_ADDR",
            "CEC_ADAP_G_LOG_ADDRS", "CEC_ADAP_S_LOG_ADDRS", "CEC_TRANSMIT",
            "CEC_RECEIVE", "CEC_DQEVENT", "CEC_G_MODE", "CEC_S_MODE",
            "CEC_ADAP_G_CONNECTOR_INFO", "CEC_ADAP_G_MONITOR",
        ),
        bugs=(
            BugSite("cec-uaf-queue-msg", macro="CEC_RECEIVE", field_name="timeout", min_value=0x7f000000),
            BugSite("cec-odebug-transmit", macro="CEC_TRANSMIT", field_name="len", min_value=0x1000),
            BugSite("cec-warning-cancel", macro="CEC_S_MODE", field_name="mode", min_value=0x80),
            BugSite("cec-hang-claim-log-addrs", macro="CEC_ADAP_S_LOG_ADDRS", field_name="num_log_addrs", min_value=0x10),
            BugSite("cec-gpf-transmit-done", macro="CEC_DQEVENT", field_name="event", min_value=0x100),
        ),
        comment="HDMI CEC adapter devices (spec later upstreamed to Syzkaller)",
    ),
    DriverProfile(
        name="btrfs",
        device_path="/dev/btrfs#",
        registration=_CDEV,
        dispatch=_DELEG,
        num_ops=20,
        op_prefix="BTRFS_IOC",
        handler_name="btrfs_ctl_fops_full",
        ioctl_handler_fn="btrfs_full_ioctl",
        source_file="fs/btrfs/ioctl.c",
        config_option="CONFIG_BTRFS_FS",
        bugs=(
            BugSite("btrfs-bug-get-root-ref", op_index=3, field_name="objectid", min_value=0x80000000),
            BugSite("btrfs-gpf-update-reloc-root", op_index=7, field_name="flags", min_value=0x40000000),
        ),
        comment="btrfs filesystem ioctl surface",
    ),
    DriverProfile(
        name="ubi",
        device_path="/dev/ubi_ctrl",
        registration=_MISC,
        dispatch=_REWRITE,
        num_ops=10,
        op_prefix="UBI_IOC",
        handler_name="ubi_ctrl_fops",
        ioctl_handler_fn="ubi_cdev_ioctl",
        source_file="drivers/mtd/ubi/cdev.c",
        config_option="CONFIG_MTD_UBI",
        bugs=(
            BugSite("ubi-zero-size-vmalloc", op_index=1, field_name="bytes", min_value=0x10000000),
            BugSite("ubi-leak-attach", op_index=2, field_name="mtd_num", min_value=0x1000),
            BugSite("blk-hang-rq-qos-throttle", op_index=4, field_name="vol_id", min_value=0x7f000000),
        ),
        comment="unsorted block images volume management",
    ),
    DriverProfile(
        name="posix-clock",
        device_path="/dev/ptp#",
        registration=_CDEV,
        dispatch=_DIRECT,
        num_ops=8,
        op_prefix="PTP",
        handler_name="posix_clock_fops",
        ioctl_handler_fn="posix_clock_ioctl",
        source_file="kernel/time/posix-clock.c",
        config_option="CONFIG_PTP_1588_CLOCK",
        bugs=(
            BugSite("posix-clock-leak-open", op_index=0, field_name="index", min_value=0x100),
        ),
        comment="PTP hardware clock character devices",
    ),
    DriverProfile(
        name="dvb-demux",
        device_path="/dev/dvb/adapter0/demux0",
        registration=_CDEV,
        dispatch=_DELEG,
        num_ops=14,
        op_prefix="DMX",
        misc_name="dvb-demux",
        handler_name="dvb_demux_fops",
        ioctl_handler_fn="dvb_demux_ioctl",
        source_file="drivers/media/dvb-core/dmxdev.c",
        config_option="CONFIG_DVB_CORE",
        bugs=(
            BugSite("dvb-deadlock-demux-release", op_index=2, field_name="pid", min_value=0x1fff),
            BugSite("dvb-leak-dmxdev-add-pid", op_index=5, field_name="pid", min_value=0x1000),
        ),
        comment="DVB demultiplexer device",
    ),
    DriverProfile(
        name="dvb-dvr",
        device_path="/dev/dvb/adapter0/dvr0",
        registration=_CDEV,
        dispatch=_DELEG,
        num_ops=8,
        op_prefix="DVR",
        misc_name="dvb-dvr",
        handler_name="dvb_dvr_fops",
        ioctl_handler_fn="dvb_dvr_ioctl",
        source_file="drivers/media/dvb-core/dvr.c",
        config_option="CONFIG_DVB_CORE",
        bugs=(
            BugSite("dvb-leak-dvr-do-ioctl", op_index=1, field_name="size", min_value=0x8000000),
            BugSite("dvb-gpf-vb2-expbuf", op_index=3, field_name="index", min_value=0x1000),
        ),
        comment="DVB digital video recorder device",
    ),
    DriverProfile(
        name="raw-gadget",
        device_path="/dev/raw-gadget",
        registration=_MISC,
        dispatch=_DIRECT,
        num_ops=12,
        op_prefix="USB_RAW_IOCTL",
        handler_name="raw_gadget_fops",
        ioctl_handler_fn="raw_ioctl",
        source_file="drivers/usb/gadget/legacy/raw_gadget.c",
        config_option="CONFIG_USB_RAW_GADGET",
        bugs=(
            BugSite("usb-warning-ep-queue", op_index=4, field_name="length", min_value=0x10000),
            BugSite("usb-corrupted-list-vep-queue", op_index=6, field_name="ep", min_value=0x20),
        ),
        comment="USB raw gadget interface",
    ),
    DriverProfile(
        name="uvc-video",
        device_path="/dev/video#",
        registration=_CDEV,
        dispatch=_DELEG,
        num_ops=16,
        op_prefix="VIDIOC",
        misc_name="uvcvideo",
        handler_name="uvc_queue_fops",
        ioctl_handler_fn="uvc_v4l2_ioctl",
        source_file="drivers/media/usb/uvc/uvc_v4l2.c",
        config_option="CONFIG_USB_VIDEO_CLASS",
        bugs=(
            BugSite("media-warning-vb2-core-reqbufs", op_index=2, field_name="count", min_value=0x10000),
            BugSite("media-divide-error-uvc-queue-setup", op_index=5, field_name="sizeimage", min_value=0x7fffff00),
        ),
        comment="USB video class V4L2 device",
    ),
)


#: Scan-scale targets (paper §5.1): handlers seen under allyesconfig, handlers
#: loaded under the syzbot config, loaded handlers with missing specs, and
#: loaded handlers with no specs at all.
SCAN_TARGETS = {
    "driver_total": 666,
    "driver_loaded": 278,
    "driver_incomplete": 75,
    "driver_undescribed": 45,
}

_FILLER_STYLES = (
    (_MISC, _DIRECT),
    (_MISC, _DELEG),
    (_CDEV, _DIRECT),
    (_CDEV, _DELEG),
    (_NODENAME, _DELEG),
    (_MISC, _REWRITE),
    (_CDEV, _TABLE),
    (_PROC, _DIRECT),
)

#: Styles SyzDescribe's static rules handle correctly (simple registration and
#: direct/delegated switch dispatch).  Used to apportion the incomplete filler
#: population so that SyzDescribe's Table 1 success rate lands near the paper's.
_EASY_STYLES = {(_MISC, _DIRECT), (_MISC, _DELEG), (_CDEV, _DIRECT), (_CDEV, _DELEG)}


def _table5_partial_incomplete() -> int:
    """Count Table 5 drivers whose existing descriptions are partial."""
    count = 0
    for profile in TABLE5_DRIVER_PROFILES:
        described = SYZKALLER_DESCRIBED.get(profile.name)
        total_ops = profile.num_ops + sum(sec.num_ops for sec in profile.secondary) + 1
        if described is not None and 0 < described < total_ops:
            count += 1
    return count


#: Patterns the undescribed population is biased toward: handlers are usually
#: undescribed precisely because their registration/dispatch is unconventional.
_HARD_STYLES = (
    (_CDEV, _TABLE),
    (_MISC, _TABLE),
    (_NODENAME, _TABLE),
    (_PROC, _DIRECT),
    (_MISC, _REWRITE),
)


def _filler_profile(index: int, *, loaded: bool, easy: bool | None = None) -> DriverProfile:
    rng = random.Random(f"filler-driver:{index}")
    if easy is None:
        styles = list(_FILLER_STYLES)
    elif easy:
        styles = [style for style in _FILLER_STYLES if style in _EASY_STYLES]
    else:
        styles = list(_HARD_STYLES)
    registration, dispatch = styles[rng.randrange(len(styles))]
    num_ops = rng.randint(3, 14)
    name = f"synth{index:03d}"
    prefix = f"SYN{index:03d}"
    device = f"/dev/{name}"
    if registration is _PROC:
        device = f"/proc/driver/{name}"
    elif registration is _NODENAME:
        device = f"/dev/{name}/ctl"
    elif registration is _CDEV and rng.random() < 0.4:
        device = f"/dev/{name}#"
    hardware_gated = not loaded and rng.random() < 0.8
    debug_only = not loaded and not hardware_gated
    return DriverProfile(
        name=name,
        device_path=device,
        registration=registration,
        dispatch=dispatch,
        num_ops=num_ops,
        op_prefix=prefix,
        config_option=f"CONFIG_{prefix}" if loaded else f"CONFIG_{prefix}_HW",
        hardware_gated=hardware_gated,
        debug_only=debug_only,
        comment=f"synthetic filler driver #{index}",
    )


def driver_population() -> list[tuple[DriverProfile, int | None]]:
    """Return every extra driver profile with its existing-corpus coverage.

    The returned coverage value is the number of operations described by the
    existing Syzkaller corpus: ``None`` = fully described, ``0`` = not
    described at all, other values = partially described.
    """
    population: list[tuple[DriverProfile, int | None]] = []
    for profile in BUG_DRIVER_PROFILES:
        population.append((profile, 0))

    targets = SCAN_TARGETS
    table5_count = len(TABLE5_DRIVER_PROFILES)
    bug_count = len(BUG_DRIVER_PROFILES)

    filler_total = targets["driver_total"] - table5_count - bug_count
    filler_loaded = targets["driver_loaded"] - table5_count - bug_count
    filler_undescribed = targets["driver_undescribed"] - bug_count
    filler_partial = max(
        0, targets["driver_incomplete"] - targets["driver_undescribed"] - _table5_partial_incomplete()
    )

    rng = random.Random("filler-driver-coverage")
    index = 0
    # Loaded, with no existing descriptions (mostly hard analysis patterns).
    for _ in range(filler_undescribed):
        easy = rng.random() < 0.2
        profile = _filler_profile(index, loaded=True, easy=easy)
        population.append((profile, 0))
        index += 1
    # Loaded, partially described.
    for _ in range(filler_partial):
        easy = rng.random() < 0.3
        profile = _filler_profile(index, loaded=True, easy=easy)
        described = max(1, int(profile.num_ops * rng.uniform(0.1, 0.8)))
        population.append((profile, described))
        index += 1
    # Loaded and fully described.
    remaining_loaded = filler_loaded - filler_undescribed - filler_partial
    for _ in range(max(0, remaining_loaded)):
        profile = _filler_profile(index, loaded=True)
        population.append((profile, None))
        index += 1
    # Compiled under allyesconfig but not loaded under syzbot.
    for _ in range(max(0, filler_total - filler_loaded)):
        profile = _filler_profile(index, loaded=False)
        population.append((profile, None))
        index += 1
    return population


__all__ = ["BUG_DRIVER_PROFILES", "SCAN_TARGETS", "driver_population"]
