"""The synthetic Linux-like kernel substrate.

This package replaces the real Linux 6.7 source tree the paper analyses: it
provides a deterministic, ground-truth-known population of driver and socket
operation handlers rendered as C source text, the constant (macro) table, the
kernel configurations, and the injected bug catalog of Table 4.
"""

from .bugs import DEFAULT_BUG_CATALOG, BugCatalog, KernelBug, TABLE4_BUGS
from .codebase import HandlerRecord, KernelCodebase, build_default_kernel, cached_default_kernel
from .coverage import COMMON_SOCKCALLS, CoverageBitmap, CoverageSpace, enumerate_kernel_labels
from .configs import ALWAYS_BUILT_IN, KernelConfig, allyesconfig, syzbot_config
from .factory import BugSite, DriverProfile, SecondaryProfile, SocketProfile, make_driver, make_socket
from .ops import (
    ArgKind,
    BugTrigger,
    DispatchStyle,
    DriverTruth,
    FieldTruth,
    Guard,
    GuardKind,
    IoctlOp,
    RegistrationStyle,
    SecondaryHandlerTruth,
    SockOp,
    SocketTruth,
    StructTruth,
    ioc,
    ioc_nr,
)
from .builder import (
    build_driver_source,
    build_socket_source,
    driver_constants,
    reference_suite_for_driver,
    reference_suite_for_socket,
    socket_constants,
)
from .table5_drivers import PAPER_TABLE5, SYZKALLER_DESCRIBED, TABLE5_DRIVER_NAMES, TABLE5_DRIVER_PROFILES
from .table6_sockets import (
    PAPER_TABLE6,
    SOCKET_SCAN_TARGETS,
    SYZKALLER_SOCKET_DESCRIBED,
    TABLE6_SOCKET_PROFILES,
)
from .extra_drivers import BUG_DRIVER_PROFILES, SCAN_TARGETS

__all__ = [
    "KernelCodebase",
    "HandlerRecord",
    "build_default_kernel",
    "cached_default_kernel",
    "CoverageSpace",
    "CoverageBitmap",
    "COMMON_SOCKCALLS",
    "enumerate_kernel_labels",
    "ALWAYS_BUILT_IN",
    "KernelConfig",
    "allyesconfig",
    "syzbot_config",
    "KernelBug",
    "BugCatalog",
    "DEFAULT_BUG_CATALOG",
    "TABLE4_BUGS",
    "DriverProfile",
    "SocketProfile",
    "SecondaryProfile",
    "BugSite",
    "make_driver",
    "make_socket",
    "DriverTruth",
    "SocketTruth",
    "SecondaryHandlerTruth",
    "IoctlOp",
    "SockOp",
    "StructTruth",
    "FieldTruth",
    "Guard",
    "GuardKind",
    "BugTrigger",
    "ArgKind",
    "DispatchStyle",
    "RegistrationStyle",
    "ioc",
    "ioc_nr",
    "build_driver_source",
    "build_socket_source",
    "driver_constants",
    "socket_constants",
    "reference_suite_for_driver",
    "reference_suite_for_socket",
    "TABLE5_DRIVER_PROFILES",
    "TABLE5_DRIVER_NAMES",
    "SYZKALLER_DESCRIBED",
    "PAPER_TABLE5",
    "TABLE6_SOCKET_PROFILES",
    "SYZKALLER_SOCKET_DESCRIBED",
    "PAPER_TABLE6",
    "SCAN_TARGETS",
    "SOCKET_SCAN_TARGETS",
    "BUG_DRIVER_PROFILES",
]
