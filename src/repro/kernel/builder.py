"""Builds consistent artifacts from driver/socket ground truth.

Given a :class:`~repro.kernel.ops.DriverTruth` or
:class:`~repro.kernel.ops.SocketTruth`, the builder produces:

* the C source file placed into the synthetic kernel codebase (the text the
  extractor, KernelGPT and SyzDescribe analyse);
* the ``#define`` constant contributions for the kernel-wide constant table;
* the *reference* syzlang suite — the specification a perfect generator would
  produce — used for the §5.1.3 correctness audit and as the interface ground
  truth behind Table 1 / Figure 7.

The C output follows a small set of idiomatic kernel patterns (miscdevice
vs. nodename registration, direct vs. delegated vs. ``_IOC_NR``-rewritten
dispatch, copy_from_user argument handling, flexible arrays with count
fields, ``anon_inode_getfd`` secondary handlers) so that the strengths and
weaknesses the paper describes for each analysis technique are exercised for
real rather than hard-coded.
"""

from __future__ import annotations

from ..syzlang import (
    ConstType,
    Field,
    FlagsDef,
    IntType,
    LenType,
    Param,
    PtrType,
    ResourceDef,
    ResourceRef,
    SpecSuite,
    StringType,
    StructDef,
    Syscall,
    ArrayType,
    NamedTypeRef,
)
from .ops import (
    ArgKind,
    C_TO_SYZ_WIDTH,
    DispatchStyle,
    DriverTruth,
    FieldTruth,
    Guard,
    GuardKind,
    IoctlOp,
    RegistrationStyle,
    SecondaryHandlerTruth,
    SockOp,
    SocketTruth,
    StructTruth,
    ioc_nr,
)
from .source import CDefine, CFunction, CInitializer, CSourceFile, CStruct, CStructField

# ---------------------------------------------------------------------------
# C source generation — drivers
# ---------------------------------------------------------------------------


def build_driver_source(truth: DriverTruth) -> CSourceFile:
    """Render the full C source file for a driver handler."""
    path = truth.source_file or f"drivers/{truth.name}/{truth.name}-main.c"
    source = CSourceFile(path=path, header_comment=truth.comment or f"{truth.name} driver")

    _emit_command_defines(source, truth)
    for struct in truth.structs:
        source.add(_render_struct(struct))

    source.add(_render_open_fn(truth))

    _emit_handler_group(source, truth, truth.ops, truth.ioctl_handler_fn, truth.dispatch, primary=True)

    for secondary in truth.secondary_handlers:
        _emit_secondary_handler(source, truth, secondary)

    source.add(_render_fops(truth))
    _emit_registration(source, truth)
    return source


def _emit_command_defines(source: CSourceFile, truth: DriverTruth) -> None:
    for op in truth.all_ops():
        if op.nr_macro is not None and op.nr_value is not None:
            source.add(CDefine(op.nr_macro, op.nr_value))
        source.add(CDefine(op.macro, op.value, comment=op.comment))


def _render_struct(struct: StructTruth) -> CStruct:
    members: list[CStructField] = []
    for member in struct.fields:
        c_type = f"struct {member.struct_ref}" if member.struct_ref else member.c_type
        array = ""
        if member.flexible:
            array = " "  # rendered as []
        elif member.array_len:
            array = str(member.array_len)
        comment = member.comment
        if member.len_of and not comment:
            comment = f"number of entries in {member.len_of}"
        if member.out and not comment:
            comment = "written by the kernel"
        members.append(CStructField(c_type=c_type, name=member.name, array=array.strip() if array == " " else array, comment=comment))
    # Flexible arrays render with empty brackets.
    rendered: list[CStructField] = []
    for member, member_truth in zip(members, struct.fields):
        if member_truth.flexible:
            rendered.append(CStructField(member.c_type, member.name, array="", comment=member.comment))
            rendered[-1] = CStructField(member.c_type, member.name + "[]", array="", comment=member.comment)
        else:
            rendered.append(member)
    return CStruct(name=struct.name, fields=tuple(rendered), comment=struct.comment)


def _render_open_fn(truth: DriverTruth) -> CFunction:
    body = "\n".join(
        [
            f"\tstruct {truth.name.replace('-', '_')}_ctx *ctx;",
            "\tctx = kzalloc(sizeof(*ctx), GFP_KERNEL);",
            "\tif (!ctx)",
            "\t\treturn -ENOMEM;",
            "\tfile->private_data = ctx;",
            "\treturn 0;",
        ]
    )
    return CFunction(
        name=f"{_c_ident(truth.name)}_open",
        return_type="int",
        params="struct inode *inode, struct file *file",
        body=body,
    )


def _sub_handler_name(owner: str, op: IoctlOp) -> str:
    return op.handler_fn or f"{_c_ident(owner)}_{op.macro.lower()}"


def _c_ident(name: str) -> str:
    return name.replace("-", "_").replace("#", "n").replace("/", "_")


def _render_sub_handler(owner: str, op: IoctlOp, truth_structs: dict[str, StructTruth]) -> CFunction:
    """Render the per-command handler with guard checks and the bug site."""
    lines: list[str] = []
    if op.arg_kind is ArgKind.STRUCT and op.arg_struct:
        lines.append(f"\tstruct {op.arg_struct} params;")
        lines.append("")
        lines.append(f"\tif (copy_from_user(&params, argp, sizeof(struct {op.arg_struct})))")
        lines.append("\t\treturn -EFAULT;")
    elif op.arg_kind is ArgKind.RESOURCE_OUT:
        lines.append("\tint new_fd;")
    for guard in op.guards:
        lines.extend(_render_guard(guard))
    if op.bug is not None:
        trigger = op.bug
        condition = None
        if trigger.min_value is not None:
            condition = f"params.{trigger.field} > {hex(trigger.min_value)}"
        elif trigger.equals is not None:
            condition = f"params.{trigger.field} == {trigger.equals}"
        if condition:
            lines.append(f"\tif ({condition}) {{")
            lines.append(f"\t\t/* BUG: {trigger.bug_id} */")
            lines.append(f"\t\tbuf = kvmalloc(params.{trigger.field}, GFP_KERNEL);")
            lines.append("\t}")
    if op.produces:
        lines.append(
            f"\treturn anon_inode_getfd(\"{op.produces}\", &{op.produces}_fops, ctx, O_RDWR | O_CLOEXEC);"
        )
    else:
        if op.direction in ("out", "inout") and op.arg_kind is ArgKind.STRUCT and op.arg_struct:
            lines.append(f"\tif (copy_to_user(argp, &params, sizeof(struct {op.arg_struct})))")
            lines.append("\t\treturn -EFAULT;")
        lines.append("\treturn 0;")
    params = "struct file *file, void __user *argp"
    if op.arg_kind is ArgKind.SCALAR:
        params = "struct file *file, unsigned long arg"
    return CFunction(
        name=_sub_handler_name(owner, op),
        return_type="int",
        params=params,
        body="\n".join(lines),
        comment=op.comment,
    )


def _render_guard(guard: Guard) -> list[str]:
    if guard.kind is GuardKind.FIELD_RANGE:
        return [
            f"\tif (params.{guard.field} < {guard.low} || params.{guard.field} > {guard.high})",
            "\t\treturn -EINVAL;",
        ]
    if guard.kind is GuardKind.FIELD_EQUALS:
        return [
            f"\tif (params.{guard.field} != {guard.value})",
            "\t\treturn -EINVAL;",
        ]
    if guard.kind is GuardKind.LEN_MATCHES:
        return [
            f"\tif (params.{guard.field} != array_size(params.{guard.target}))",
            "\t\treturn -EINVAL;",
        ]
    if guard.kind is GuardKind.FLAGS_SUBSET:
        return [
            f"\tif (params.{guard.field} & ~{hex(guard.value)})",
            "\t\treturn -EINVAL;",
        ]
    if guard.kind is GuardKind.MIN_SIZE:
        return [
            f"\tif (_IOC_SIZE(cmd) < {guard.value})",
            "\t\treturn -EINVAL;",
        ]
    if guard.kind is GuardKind.NEEDS_RESOURCE:
        return [
            f"\tif (!file->private_data || !ctx->{_c_ident(guard.resource)})",
            "\t\treturn -EBADF;",
        ]
    return []


def _emit_handler_group(
    source: CSourceFile,
    truth: DriverTruth,
    ops: tuple[IoctlOp, ...],
    registered_fn: str,
    dispatch: DispatchStyle,
    *,
    primary: bool,
    owner: str | None = None,
) -> None:
    """Emit sub-handlers plus the dispatcher(s) for one group of ioctl ops."""
    owner_name = owner or truth.name
    structs = {struct.name: struct for struct in truth.structs}
    for op in ops:
        source.add(_render_sub_handler(owner_name, op, structs))

    if dispatch is DispatchStyle.DIRECT_SWITCH:
        source.add(_render_switch_dispatcher(registered_fn, ops, owner_name, rewrite=False))
        return

    helper_name = f"{_c_ident(owner_name)}_do_ioctl"
    if dispatch is DispatchStyle.DELEGATED:
        source.add(_render_switch_dispatcher(helper_name, ops, owner_name, rewrite=False))
    elif dispatch is DispatchStyle.IOC_NR_REWRITE:
        source.add(_render_switch_dispatcher(helper_name, ops, owner_name, rewrite=True))
    elif dispatch is DispatchStyle.TABLE_LOOKUP:
        source.add(_render_lookup_table(helper_name, ops, owner_name))
        source.add(_render_table_dispatcher(helper_name, owner_name))
    source.add(_render_delegating_handler(registered_fn, helper_name))


def _render_switch_dispatcher(
    fn_name: str, ops: tuple[IoctlOp, ...], owner: str, *, rewrite: bool
) -> CFunction:
    lines = ["\tvoid __user *argp = (void __user *)arg;"]
    switch_var = "cmd"
    if rewrite:
        lines.append("\tunsigned int nr = _IOC_NR(cmd);")
        switch_var = "nr"
    lines.append("")
    lines.append(f"\tswitch ({switch_var}) {{")
    for op in ops:
        case_macro = op.nr_macro if (rewrite and op.nr_macro) else op.macro
        lines.append(f"\tcase {case_macro}:")
        if op.arg_kind is ArgKind.SCALAR:
            lines.append(f"\t\treturn {_sub_handler_name(owner, op)}(file, arg);")
        else:
            lines.append(f"\t\treturn {_sub_handler_name(owner, op)}(file, argp);")
    lines.append("\tdefault:")
    lines.append("\t\treturn -ENOTTY;")
    lines.append("\t}")
    return CFunction(
        name=fn_name,
        return_type="long",
        params="struct file *file, unsigned int cmd, unsigned long arg",
        body="\n".join(lines),
    )


def _render_lookup_table(helper_name: str, ops: tuple[IoctlOp, ...], owner: str) -> CInitializer:
    entries = []
    for op in ops:
        case_macro = op.nr_macro or op.macro
        entries.append(("{ " + case_macro, f"{_sub_handler_name(owner, op)} }}"))
    return CInitializer(
        struct_type=f"{_c_ident(owner)}_ioctl_entry",
        var_name=f"_{_c_ident(owner)}_ioctl_table[]",
        fields=tuple(entries),
        comment="command number to handler mapping",
    )


def _render_table_dispatcher(helper_name: str, owner: str) -> CFunction:
    table = f"_{_c_ident(owner)}_ioctl_table"
    lines = [
        "\tvoid __user *argp = (void __user *)arg;",
        "\tunsigned int nr = _IOC_NR(cmd);",
        "\tint i;",
        "",
        f"\tfor (i = 0; i < ARRAY_SIZE({table}); i++) {{",
        f"\t\tif ({table}[i].cmd == nr)",
        f"\t\t\treturn {table}[i].fn(file, argp);",
        "\t}",
        "\treturn -ENOTTY;",
    ]
    return CFunction(
        name=helper_name,
        return_type="long",
        params="struct file *file, unsigned int cmd, unsigned long arg",
        body="\n".join(lines),
    )


def _render_delegating_handler(registered_fn: str, helper_name: str) -> CFunction:
    return CFunction(
        name=registered_fn,
        return_type="long",
        params="struct file *file, unsigned int command, unsigned long u",
        body=f"\treturn {helper_name}(file, command, u);",
    )


def _emit_secondary_handler(source: CSourceFile, truth: DriverTruth, secondary: SecondaryHandlerTruth) -> None:
    """Emit the fops + dispatcher for a handler reached via a produced resource."""
    _emit_handler_group(
        source,
        truth,
        secondary.ops,
        secondary.ioctl_handler_fn,
        DispatchStyle.DIRECT_SWITCH,
        primary=False,
        owner=secondary.name,
    )
    source.add(
        CInitializer(
            struct_type="file_operations",
            var_name=secondary.handler_name,
            fields=(
                ("owner", "THIS_MODULE"),
                ("unlocked_ioctl", secondary.ioctl_handler_fn),
                ("llseek", "noop_llseek"),
            ),
            comment=f"operations for {secondary.resource} file descriptors",
        )
    )


def _render_fops(truth: DriverTruth) -> CInitializer:
    fields = [
        ("owner", "THIS_MODULE"),
        ("open", f"{_c_ident(truth.name)}_open"),
        ("unlocked_ioctl", truth.ioctl_handler_fn),
        ("compat_ioctl", truth.ioctl_handler_fn),
        ("llseek", "noop_llseek"),
    ]
    return CInitializer(
        struct_type="file_operations",
        var_name=truth.handler_name,
        fields=tuple(fields),
        comment=f"{truth.name} device operations",
    )


def _emit_registration(source: CSourceFile, truth: DriverTruth) -> None:
    ident = _c_ident(truth.name)
    if truth.registration in (RegistrationStyle.MISC_NAME, RegistrationStyle.MISC_NODENAME):
        fields = [("minor", "MISC_DYNAMIC_MINOR"), ("name", f'"{truth.misc_name or truth.name}"')]
        if truth.registration is RegistrationStyle.MISC_NODENAME:
            nodename = truth.device_path.removeprefix("/dev/")
            fields.append(("nodename", f'"{nodename}"'))
        fields.append(("fops", f"&{truth.handler_name}"))
        source.add(
            CInitializer(
                struct_type="miscdevice",
                var_name=f"_{ident}_misc",
                fields=tuple(fields),
                const=False,
            )
        )
        source.add(
            CFunction(
                name=f"{ident}_module_init",
                return_type="int",
                params="void",
                body=f"\treturn misc_register(&_{ident}_misc);",
            )
        )
    elif truth.registration is RegistrationStyle.CDEV:
        node = truth.device_path.removeprefix("/dev/")
        template = node.replace("#", "%d")
        body = "\n".join(
            [
                f"\tint rc = alloc_chrdev_region(&{ident}_devt, 0, {ident.upper()}_MAX, \"{truth.name}\");",
                "\tif (rc)",
                "\t\treturn rc;",
                f"\tcdev_init(&{ident}_cdev, &{truth.handler_name});",
                f"\tcdev_add(&{ident}_cdev, {ident}_devt, {ident.upper()}_MAX);",
                f"\tdevice_create({ident}_class, NULL, {ident}_devt, NULL, \"{template}\", minor);",
                "\treturn 0;",
            ]
        )
        source.add(CFunction(name=f"{ident}_module_init", return_type="int", params="void", body=body))
    elif truth.registration is RegistrationStyle.PROC:
        node = truth.device_path.removeprefix("/proc/")
        source.add(
            CFunction(
                name=f"{ident}_module_init",
                return_type="int",
                params="void",
                body=f"\tproc_create(\"{node}\", 0644, NULL, &{truth.handler_name});\n\treturn 0;",
            )
        )


# ---------------------------------------------------------------------------
# C source generation — sockets
# ---------------------------------------------------------------------------


def build_socket_source(truth: SocketTruth) -> CSourceFile:
    """Render the full C source file for a socket protocol handler."""
    path = truth.source_file or f"net/{truth.name}/af_{_c_ident(truth.name)}.c"
    source = CSourceFile(path=path, header_comment=truth.comment or f"{truth.name} protocol")
    ident = _c_ident(truth.name)

    for op in truth.ops:
        if op.macro and op.value:
            source.add(CDefine(op.macro, op.value, comment=op.comment))
    for struct in truth.structs:
        source.add(_render_struct(struct))

    setsockopts = [op for op in truth.ops if op.syscall == "setsockopt"]
    getsockopts = [op for op in truth.ops if op.syscall == "getsockopt"]
    msg_ops = [op for op in truth.ops if op.syscall not in ("setsockopt", "getsockopt")]

    if setsockopts:
        source.add(_render_sockopt_dispatcher(ident, "setsockopt", setsockopts))
    if getsockopts:
        source.add(_render_sockopt_dispatcher(ident, "getsockopt", getsockopts))
    for op in msg_ops:
        source.add(_render_msg_handler(ident, op))

    source.add(_render_proto_ops(truth, setsockopts, getsockopts, msg_ops))
    source.add(_render_socket_create(truth))
    source.add(
        CInitializer(
            struct_type="net_proto_family",
            var_name=f"{ident}_family_ops",
            fields=(
                ("family", truth.family_macro),
                ("create", f"{ident}_create"),
                ("owner", "THIS_MODULE"),
            ),
        )
    )
    return source


def _render_sockopt_dispatcher(ident: str, syscall: str, ops: list[SockOp]) -> CFunction:
    lines = [
        "\tstruct sock *sk = sock->sk;",
        "",
        "\tswitch (optname) {",
    ]
    for op in ops:
        lines.append(f"\tcase {op.macro}:")
        if op.arg_struct:
            lines.append(f"\t\tif (optlen < sizeof(struct {op.arg_struct}))")
            lines.append("\t\t\treturn -EINVAL;")
            lines.append(f"\t\tif (copy_from_sockptr(&opt_{op.macro.lower()}, optval, sizeof(struct {op.arg_struct})))")
            lines.append("\t\t\treturn -EFAULT;")
        for guard in op.guards:
            lines.extend("\t" + line for line in _render_guard(guard))
        if op.bug is not None and op.bug.field:
            condition = None
            if op.bug.min_value is not None:
                condition = f"opt_{op.macro.lower()}.{op.bug.field} > {hex(op.bug.min_value)}"
            elif op.bug.equals is not None:
                condition = f"opt_{op.macro.lower()}.{op.bug.field} == {op.bug.equals}"
            if condition:
                lines.append(f"\t\tif ({condition})")
                lines.append(f"\t\t\tgoto corrupt; /* BUG: {op.bug.bug_id} */")
        lines.append("\t\tbreak;")
    lines.append("\tdefault:")
    lines.append("\t\treturn -ENOPROTOOPT;")
    lines.append("\t}")
    lines.append("\treturn 0;")
    params = "struct socket *sock, int level, int optname, sockptr_t optval, unsigned int optlen"
    if syscall == "getsockopt":
        params = "struct socket *sock, int level, int optname, char __user *optval, int __user *optlen"
    return CFunction(name=f"{ident}_{syscall}", return_type="int", params=params, body="\n".join(lines))


def _render_msg_handler(ident: str, op: SockOp) -> CFunction:
    lines = ["\tstruct sock *sk = sock->sk;"]
    if op.arg_struct:
        lines.append(f"\tstruct {op.arg_struct} req;")
        lines.append(f"\tif (msg_len < sizeof(struct {op.arg_struct}))")
        lines.append("\t\treturn -EINVAL;")
        lines.append(f"\tif (memcpy_from_msg(&req, m, sizeof(struct {op.arg_struct})))")
        lines.append("\t\treturn -EFAULT;")
    for guard in op.guards:
        lines.extend(_render_guard(guard))
    if op.bug is not None and op.bug.field:
        condition = None
        if op.bug.min_value is not None:
            condition = f"req.{op.bug.field} > {hex(op.bug.min_value)}"
        elif op.bug.equals is not None:
            condition = f"req.{op.bug.field} == {op.bug.equals}"
        if condition:
            lines.append(f"\tif ({condition})")
            lines.append(f"\t\tgoto oob; /* BUG: {op.bug.bug_id} */")
    lines.append("\treturn 0;")
    return CFunction(
        name=f"{ident}_{op.syscall}",
        return_type="int",
        params="struct socket *sock, struct msghdr *m, size_t msg_len",
        body="\n".join(lines),
    )


def _render_proto_ops(
    truth: SocketTruth,
    setsockopts: list[SockOp],
    getsockopts: list[SockOp],
    msg_ops: list[SockOp],
) -> CInitializer:
    ident = _c_ident(truth.name)
    fields: list[tuple[str, str]] = [("family", truth.family_macro), ("owner", "THIS_MODULE")]
    if setsockopts:
        fields.append(("setsockopt", f"{ident}_setsockopt"))
    if getsockopts:
        fields.append(("getsockopt", f"{ident}_getsockopt"))
    seen = set()
    for op in msg_ops:
        if op.syscall not in seen:
            fields.append((op.syscall, f"{ident}_{op.syscall}"))
            seen.add(op.syscall)
    return CInitializer(
        struct_type="proto_ops",
        var_name=truth.handler_name,
        fields=tuple(fields),
        comment=f"{truth.name} socket operations",
    )


def _render_socket_create(truth: SocketTruth) -> CFunction:
    ident = _c_ident(truth.name)
    body = "\n".join(
        [
            "\tstruct sock *sk;",
            "",
            f"\tif (protocol != {truth.protocol} && protocol != 0)",
            "\t\treturn -EPROTONOSUPPORT;",
            f"\tif (sock->type != {truth.sock_type})",
            "\t\treturn -ESOCKTNOSUPPORT;",
            f"\tsock->ops = &{truth.handler_name};",
            "\tsk = sk_alloc(net, PF_MAX, GFP_KERNEL, &prot, kern);",
            "\tif (!sk)",
            "\t\treturn -ENOMEM;",
            "\treturn 0;",
        ]
    )
    return CFunction(name=f"{ident}_create", return_type="int", params="struct net *net, struct socket *sock, int protocol, int kern", body=body)


# ---------------------------------------------------------------------------
# Constants
# ---------------------------------------------------------------------------


def driver_constants(truth: DriverTruth) -> dict[str, int]:
    """Return the macro → value table the driver contributes to the kernel."""
    constants: dict[str, int] = {}
    for op in truth.all_ops():
        constants[op.macro] = op.value
        if op.nr_macro is not None and op.nr_value is not None:
            constants[op.nr_macro] = op.nr_value
    return constants


def socket_constants(truth: SocketTruth) -> dict[str, int]:
    constants: dict[str, int] = {truth.family_macro: truth.family_value}
    for op in truth.ops:
        if op.macro:
            constants[op.macro] = op.value
        constants[op.level_macro] = op.level_value
    return constants


# ---------------------------------------------------------------------------
# Reference (ground-truth) syzlang suites
# ---------------------------------------------------------------------------


def _syz_type_for_field(member: FieldTruth) -> Field:
    width = C_TO_SYZ_WIDTH.get(member.c_type, "int32")
    attrs = ("out",) if member.out else ()
    if member.resource:
        expr = NamedTypeRef(f"{member.resource}")
        return Field(member.name, expr, attrs)
    if member.len_of:
        return Field(member.name, LenType(member.len_of, width), attrs)
    if member.struct_ref:
        if member.flexible or member.array_len:
            length = member.array_len or None
            return Field(member.name, ArrayType(NamedTypeRef(member.struct_ref), length), attrs)
        return Field(member.name, NamedTypeRef(member.struct_ref), attrs)
    if member.flexible:
        return Field(member.name, ArrayType(IntType(width)), attrs)
    if member.array_len and member.c_type == "char":
        return Field(member.name, ArrayType(IntType("int8"), member.array_len), attrs)
    if member.array_len:
        return Field(member.name, ArrayType(IntType(width), member.array_len), attrs)
    if member.valid_range:
        return Field(member.name, IntType(width, member.valid_range[0], member.valid_range[1]), attrs)
    return Field(member.name, IntType(width), attrs)


def _reference_struct(struct: StructTruth) -> StructDef:
    return StructDef(struct.name, tuple(_syz_type_for_field(member) for member in struct.fields))


def reference_suite_for_driver(truth: DriverTruth) -> SpecSuite:
    """Build the specification a perfect generator would emit for this driver."""
    suite = SpecSuite(f"reference-{truth.name}")
    fd_resource = f"fd_{_c_ident(truth.name)}"
    suite.add_resource(ResourceDef(fd_resource, "fd"))

    suite.add_syscall(
        Syscall(
            name="openat",
            variant=_c_ident(truth.name),
            params=(
                Param("fd", ConstType("AT_FDCWD", "int64")),
                Param("file", PtrType("in", StringType((truth.device_path,)))),
                Param("flags", ConstType("O_RDWR", "int32")),
            ),
            returns=ResourceRef(fd_resource),
            comment=f"reference spec for {truth.name}",
        )
    )

    secondary_resources: dict[str, str] = {}
    for secondary in truth.secondary_handlers:
        res_name = f"fd_{_c_ident(secondary.resource)}"
        secondary_resources[secondary.resource] = res_name
        suite.add_resource(ResourceDef(res_name, "fd"))

    for struct in truth.structs:
        suite.add_struct(_reference_struct(struct))

    for op in truth.ops:
        suite.add_syscall(_reference_ioctl(op, fd_resource, secondary_resources))
    for secondary in truth.secondary_handlers:
        consumer_fd = secondary_resources[secondary.resource]
        for op in secondary.ops:
            suite.add_syscall(_reference_ioctl(op, consumer_fd, secondary_resources))
    return suite


def _reference_ioctl(op: IoctlOp, fd_resource: str, secondary_resources: dict[str, str]) -> Syscall:
    params: list[Param] = [
        Param("fd", ResourceRef(fd_resource)),
        Param("cmd", ConstType(op.macro, "int32")),
    ]
    if op.arg_kind is ArgKind.STRUCT and op.arg_struct:
        params.append(Param("arg", PtrType(op.direction, NamedTypeRef(op.arg_struct))))
    elif op.arg_kind is ArgKind.SCALAR:
        params.append(Param("arg", IntType("int64")))
    elif op.arg_kind is ArgKind.RESOURCE_OUT and op.produces:
        params.append(Param("arg", PtrType("out", IntType("int32"))))
    else:
        params.append(Param("arg", ConstType(0, "int64")))
    returns = None
    if op.produces:
        returns = ResourceRef(secondary_resources.get(op.produces, f"fd_{_c_ident(op.produces)}"))
    return Syscall(name="ioctl", variant=op.macro, params=tuple(params), returns=returns)


def reference_suite_for_socket(truth: SocketTruth) -> SpecSuite:
    """Build the specification a perfect generator would emit for this socket."""
    suite = SpecSuite(f"reference-{truth.name}")
    ident = _c_ident(truth.name)
    sock_resource = f"sock_{ident}"
    suite.add_resource(ResourceDef(sock_resource, "sock"))
    for struct in truth.structs:
        suite.add_struct(_reference_struct(struct))
    suite.add_syscall(
        Syscall(
            name="socket",
            variant=ident,
            params=(
                Param("domain", ConstType(truth.family_macro, "int32")),
                Param("type", ConstType(truth.sock_type, "int32")),
                Param("proto", ConstType(truth.protocol, "int32")),
            ),
            returns=ResourceRef(sock_resource),
        )
    )
    for op in truth.ops:
        suite.add_syscall(_reference_sockop(op, sock_resource, ident))
    return suite


def _reference_sockop(op: SockOp, sock_resource: str, ident: str) -> Syscall:
    if op.syscall in ("setsockopt", "getsockopt"):
        direction = "in" if op.syscall == "setsockopt" else "out"
        val_type: PtrType
        if op.arg_struct:
            val_type = PtrType(direction, NamedTypeRef(op.arg_struct))
        else:
            val_type = PtrType(direction, IntType("int32"))
        params = (
            Param("fd", ResourceRef(sock_resource)),
            Param("level", ConstType(op.level_macro, "int32")),
            Param("optname", ConstType(op.macro, "int32")),
            Param("optval", val_type),
            Param("optlen", LenType("optval", "int32")),
        )
        return Syscall(name=op.syscall, variant=op.macro, params=params)
    if op.syscall in ("sendto", "recvfrom", "sendmsg", "recvmsg"):
        payload = NamedTypeRef(op.arg_struct) if op.arg_struct else ArrayType(IntType("int8"))
        direction = "in" if op.syscall.startswith("send") else "out"
        params = (
            Param("fd", ResourceRef(sock_resource)),
            Param("buf", PtrType(direction, payload)),
            Param("len", LenType("buf", "int64")),
            Param("flags", ConstType(0, "int32")),
        )
        return Syscall(name=op.syscall, variant=op.macro or ident, params=params)
    if op.syscall in ("bind", "connect", "accept"):
        addr = NamedTypeRef(op.arg_struct) if op.arg_struct else ArrayType(IntType("int8"), 16)
        params = (
            Param("fd", ResourceRef(sock_resource)),
            Param("addr", PtrType("in", addr)),
            Param("addrlen", LenType("addr", "int32")),
        )
        return Syscall(name=op.syscall, variant=op.macro or ident, params=params)
    params = (Param("fd", ResourceRef(sock_resource)),)
    return Syscall(name=op.syscall, variant=op.macro or ident, params=params)


__all__ = [
    "build_driver_source",
    "build_socket_source",
    "driver_constants",
    "socket_constants",
    "reference_suite_for_driver",
    "reference_suite_for_socket",
]
