"""Profiles for the 28 valid drivers of the paper's Table 5.

Table 5 compares driver specification generation between existing Syzkaller
descriptions, SyzDescribe and KernelGPT on 30 drivers taken from the
SyzDescribe evaluation; two of them (``ashmem``, ``fd#``) no longer exist in
Linux 6.x and are therefore not modelled.  Each profile records the
registration and dispatch pattern that drives how hard the driver is for the
different generators (e.g. ``kvm``'s secondary VM/VCPU handlers, the sound
drivers' unusual device naming that trips SyzDescribe), plus the number of
ioctl operations, scaled to the paper's per-driver syscall counts.

``SYZKALLER_DESCRIBED`` records how many of each driver's operations the
"existing Syzkaller corpus" baseline describes (None = all of them), which is
what makes the #Sys columns of Table 5 diverge between suites.
"""

from __future__ import annotations

from .factory import DriverProfile, SecondaryProfile
from .ops import DispatchStyle, RegistrationStyle

_MISC = RegistrationStyle.MISC_NAME
_NODENAME = RegistrationStyle.MISC_NODENAME
_CDEV = RegistrationStyle.CDEV
_PROC = RegistrationStyle.PROC

_DIRECT = DispatchStyle.DIRECT_SWITCH
_DELEG = DispatchStyle.DELEGATED
_REWRITE = DispatchStyle.IOC_NR_REWRITE
_TABLE = DispatchStyle.TABLE_LOOKUP


#: Profiles for the Table 5 drivers, keyed by the paper's driver label.
TABLE5_DRIVER_PROFILES: tuple[DriverProfile, ...] = (
    DriverProfile(
        name="btrfs-control", device_path="/dev/btrfs-control", registration=_MISC,
        dispatch=_DIRECT, num_ops=5, op_prefix="BTRFS_IOC", config_option="CONFIG_BTRFS_FS",
        comment="btrfs volume management control device",
    ),
    DriverProfile(
        name="capi20", device_path="/dev/capi20", registration=_MISC, dispatch=_DELEG,
        num_ops=18, op_prefix="CAPI", config_option="CONFIG_ISDN_CAPI",
        comment="ISDN CAPI 2.0 interface",
    ),
    DriverProfile(
        name="controlC#", device_path="/dev/snd/controlC#", registration=_CDEV,
        dispatch=_DELEG, num_ops=21, op_prefix="SNDRV_CTL_IOCTL",
        misc_name="snd-control", config_option="CONFIG_SND",
        comment="ALSA control device; device node name differs from the chrdev region name",
    ),
    DriverProfile(
        name="fuse", device_path="/dev/fuse", registration=_MISC, dispatch=_DIRECT,
        num_ops=2, op_prefix="FUSE_DEV_IOC", config_option="CONFIG_FUSE_FS",
        comment="filesystem in userspace device",
    ),
    DriverProfile(
        name="hpet", device_path="/dev/hpet", registration=_MISC, dispatch=_DELEG,
        num_ops=7, op_prefix="HPET", config_option="CONFIG_HPET",
        comment="high precision event timer",
    ),
    DriverProfile(
        name="i2c-#", device_path="/dev/i2c-#", registration=_CDEV, dispatch=_DIRECT,
        num_ops=10, op_prefix="I2C", config_option="CONFIG_I2C_CHARDEV",
        comment="i2c adapter character device",
    ),
    DriverProfile(
        name="kvm", device_path="/dev/kvm", registration=_MISC, dispatch=_DIRECT,
        num_ops=16, op_prefix="KVM", config_option="CONFIG_KVM", blocks_scale=2.2,
        secondary=(
            SecondaryProfile(name="kvm-vm", resource="kvm_vm", num_ops=28, producer_macro="KVM_CREATE_VM", op_prefix="KVM_VM"),
            SecondaryProfile(name="kvm-vcpu", resource="kvm_vcpu", num_ops=26, producer_macro="KVM_VM_CREATE_VCPU", op_prefix="KVM_VCPU"),
        ),
        op_names=("KVM_CREATE_VM", "KVM_GET_API_VERSION", "KVM_CHECK_EXTENSION", "KVM_GET_VCPU_MMAP_SIZE"),
        comment="kernel virtual machine hypervisor interface with VM/VCPU secondary handlers",
    ),
    DriverProfile(
        name="loop-control", device_path="/dev/loop-control", registration=_MISC,
        dispatch=_DIRECT, num_ops=4, op_prefix="LOOP_CTL", config_option="CONFIG_BLK_DEV_LOOP",
        comment="loop device allocation control",
    ),
    DriverProfile(
        name="loop#", device_path="/dev/loop#", registration=_CDEV, dispatch=_DELEG,
        num_ops=12, op_prefix="LOOP", config_option="CONFIG_BLK_DEV_LOOP", blocks_scale=1.6,
        comment="loop block device",
    ),
    DriverProfile(
        name="mISDNtimer", device_path="/dev/mISDNtimer", registration=_MISC,
        dispatch=_DIRECT, num_ops=3, op_prefix="MISDN_TIMER", config_option="CONFIG_MISDN",
        comment="modular ISDN timer device",
    ),
    DriverProfile(
        name="nbd#", device_path="/dev/nbd#", registration=_CDEV, dispatch=_DELEG,
        num_ops=12, op_prefix="NBD", config_option="CONFIG_BLK_DEV_NBD",
        comment="network block device",
    ),
    DriverProfile(
        name="nvram", device_path="/dev/nvram", registration=_MISC, dispatch=_DIRECT,
        num_ops=6, op_prefix="NVRAM", config_option="CONFIG_NVRAM",
        comment="non-volatile RAM access",
    ),
    DriverProfile(
        name="ppp", device_path="/dev/ppp", registration=_MISC, dispatch=_DELEG,
        num_ops=34, op_prefix="PPPIOC", config_option="CONFIG_PPP", blocks_scale=1.3,
        comment="point-to-point protocol channel device",
    ),
    DriverProfile(
        name="ptmx", device_path="/dev/ptmx", registration=_CDEV, dispatch=_DELEG,
        num_ops=30, op_prefix="TIOC", config_option="CONFIG_UNIX98_PTYS", blocks_scale=1.8,
        comment="pseudo-terminal multiplexer",
    ),
    DriverProfile(
        name="qat_adf_ctl", device_path="/dev/qat_adf_ctl", registration=_MISC,
        dispatch=_REWRITE, num_ops=6, op_prefix="IOCTL_ADF", config_option="CONFIG_CRYPTO_DEV_QAT",
        comment="Intel QuickAssist control device; rewrites the command with _IOC_NR",
    ),
    DriverProfile(
        name="rfkill", device_path="/dev/rfkill", registration=_MISC, dispatch=_DIRECT,
        num_ops=3, op_prefix="RFKILL_IOCTL", config_option="CONFIG_RFKILL",
        comment="radio kill switch",
    ),
    DriverProfile(
        name="rtc#", device_path="/dev/rtc#", registration=_CDEV, dispatch=_DELEG,
        num_ops=17, op_prefix="RTC", config_option="CONFIG_RTC_CLASS",
        comment="real time clock",
    ),
    DriverProfile(
        name="sg#", device_path="/dev/sg#", registration=_CDEV, dispatch=_DELEG,
        num_ops=42, op_prefix="SG", config_option="CONFIG_CHR_DEV_SG", blocks_scale=1.2,
        comment="SCSI generic device",
    ),
    DriverProfile(
        name="snapshot", device_path="/dev/snapshot", registration=_MISC, dispatch=_REWRITE,
        num_ops=15, op_prefix="SNAPSHOT", config_option="CONFIG_HIBERNATION",
        comment="hibernation snapshot device; switches on _IOC_NR of the command",
    ),
    DriverProfile(
        name="sr#", device_path="/dev/sr#", registration=_CDEV, dispatch=_DELEG,
        num_ops=57, op_prefix="CDROM", config_option="CONFIG_BLK_DEV_SR", blocks_scale=1.1,
        comment="SCSI CD-ROM device",
    ),
    DriverProfile(
        name="timer", device_path="/dev/snd/timer", registration=_CDEV, dispatch=_DELEG,
        num_ops=17, op_prefix="SNDRV_TIMER_IOCTL", misc_name="snd-timer",
        config_option="CONFIG_SND_TIMER",
        comment="ALSA timer device; device node name differs from the chrdev region name",
    ),
    DriverProfile(
        name="udmabuf", device_path="/dev/udmabuf", registration=_MISC, dispatch=_DIRECT,
        num_ops=4, op_prefix="UDMABUF", config_option="CONFIG_UDMABUF",
        comment="userspace dma-buf allocator",
    ),
    DriverProfile(
        name="uinput", device_path="/dev/uinput", registration=_MISC, dispatch=_DELEG,
        num_ops=21, op_prefix="UI", config_option="CONFIG_INPUT_UINPUT",
        comment="userspace input device",
    ),
    DriverProfile(
        name="usbmon#", device_path="/dev/usbmon#", registration=_CDEV, dispatch=_DIRECT,
        num_ops=9, op_prefix="MON_IOC", config_option="CONFIG_USB_MON",
        comment="USB traffic monitor",
    ),
    DriverProfile(
        name="vhost-net", device_path="/dev/vhost-net", registration=_NODENAME,
        dispatch=_DELEG, num_ops=22, op_prefix="VHOST", config_option="CONFIG_VHOST_NET",
        comment="vhost network acceleration; registered via miscdevice nodename",
    ),
    DriverProfile(
        name="vhost-vsock", device_path="/dev/vhost-vsock", registration=_NODENAME,
        dispatch=_DELEG, num_ops=22, op_prefix="VHOST_VSOCK", config_option="CONFIG_VHOST_VSOCK",
        comment="vhost vsock transport; registered via miscdevice nodename",
    ),
    DriverProfile(
        name="vmci", device_path="/dev/vmci", registration=_MISC, dispatch=_TABLE,
        num_ops=18, op_prefix="IOCTL_VMCI", config_option="CONFIG_VMWARE_VMCI",
        comment="VMware VMCI device; dispatches through a command lookup table",
    ),
    DriverProfile(
        name="vsock", device_path="/dev/vsock", registration=_MISC, dispatch=_DIRECT,
        num_ops=2, op_prefix="VSOCK_IOCTL", config_option="CONFIG_VSOCKETS",
        comment="vsock address family control device",
    ),
)

#: Number of each driver's operations described by the existing Syzkaller
#: corpus (``None`` means every operation is described).  Scaled from the
#: paper's Table 5 ``# Sys`` column for Syzkaller.
SYZKALLER_DESCRIBED: dict[str, int | None] = {
    "btrfs-control": 1,
    "capi20": 12,
    "controlC#": 21,
    "fuse": 2,
    "hpet": 1,
    "i2c-#": 9,
    "kvm": 40,
    "loop-control": 3,
    "loop#": 11,
    "mISDNtimer": 3,
    "nbd#": 10,
    "nvram": 1,
    "ppp": 23,
    "ptmx": 30,
    "qat_adf_ctl": 5,
    "rfkill": 3,
    "rtc#": 17,
    "sg#": 38,
    "snapshot": 12,
    "sr#": 1,
    "timer": 15,
    "udmabuf": 4,
    "uinput": 21,
    "usbmon#": 8,
    "vhost-net": 22,
    "vhost-vsock": 3,
    "vmci": 17,
    "vsock": 1,
}

#: Paper Table 5 values used for shape comparison in EXPERIMENTS.md.
PAPER_TABLE5 = {
    "btrfs-control": {"syzkaller": (1, 1523), "syzdescribe": (5, 2848), "kernelgpt": (5, 2786)},
    "capi20": {"syzkaller": (13, 2818), "syzdescribe": (19, 3011), "kernelgpt": (14, 3138)},
    "controlC#": {"syzkaller": (22, 4666), "syzdescribe": (None, None), "kernelgpt": (15, 4703)},
    "fuse": {"syzkaller": (2, 1719), "syzdescribe": (2, 2315), "kernelgpt": (2, 2425)},
    "hpet": {"syzkaller": (1, 1591), "syzdescribe": (7, 2289), "kernelgpt": (7, 2493)},
    "i2c-#": {"syzkaller": (10, 4168), "syzdescribe": (10, 4024), "kernelgpt": (10, 4475)},
    "kvm": {"syzkaller": (118, 10948), "syzdescribe": (165, 9444), "kernelgpt": (71, 15605)},
    "loop-control": {"syzkaller": (4, 7042), "syzdescribe": (4, 8211), "kernelgpt": (4, 8537)},
    "loop#": {"syzkaller": (12, 8498), "syzdescribe": (12, 8519), "kernelgpt": (12, 8518)},
    "mISDNtimer": {"syzkaller": (3, 1992), "syzdescribe": (3, 1965), "kernelgpt": (3, 1960)},
    "nbd#": {"syzkaller": (11, 4103), "syzdescribe": (13, 5311), "kernelgpt": (12, 5475)},
    "nvram": {"syzkaller": (1, 1618), "syzdescribe": (3, 2329), "kernelgpt": (6, 2341)},
    "ppp": {"syzkaller": (24, 5710), "syzdescribe": (41, 6102), "kernelgpt": (34, 7509)},
    "ptmx": {"syzkaller": (49, 11598), "syzdescribe": (41, 10870), "kernelgpt": (30, 11344)},
    "qat_adf_ctl": {"syzkaller": (6, 2788), "syzdescribe": (6, 2651), "kernelgpt": (6, 2883)},
    "rfkill": {"syzkaller": (3, 2117), "syzdescribe": (4, 2388), "kernelgpt": (3, 2301)},
    "rtc#": {"syzkaller": (24, 4458), "syzdescribe": (33, 4596), "kernelgpt": (17, 5513)},
    "sg#": {"syzkaller": (39, 7412), "syzdescribe": (30, 6414), "kernelgpt": (43, 7392)},
    "snapshot": {"syzkaller": (13, 3076), "syzdescribe": (16, 3260), "kernelgpt": (15, 3470)},
    "sr#": {"syzkaller": (1, 2882), "syzdescribe": (68, 3725), "kernelgpt": (58, 5091)},
    "timer": {"syzkaller": (16, 3328), "syzdescribe": (None, None), "kernelgpt": (17, 3621)},
    "udmabuf": {"syzkaller": (4, 2771), "syzdescribe": (25, 2115), "kernelgpt": (4, 2921)},
    "uinput": {"syzkaller": (22, 5470), "syzdescribe": (24, 4714), "kernelgpt": (21, 6397)},
    "usbmon#": {"syzkaller": (9, 3646), "syzdescribe": (16, 3806), "kernelgpt": (9, 4332)},
    "vhost-net": {"syzkaller": (34, 3615), "syzdescribe": (25, 3435), "kernelgpt": (22, 3541)},
    "vhost-vsock": {"syzkaller": (3, 2911), "syzdescribe": (25, 3448), "kernelgpt": (22, 3803)},
    "vmci": {"syzkaller": (18, 3760), "syzdescribe": (26, 4316), "kernelgpt": (18, 4674)},
    "vsock": {"syzkaller": (1, 1541), "syzdescribe": (2, 1821), "kernelgpt": (2, 1744)},
}

TABLE5_DRIVER_NAMES: tuple[str, ...] = tuple(profile.name for profile in TABLE5_DRIVER_PROFILES)

__all__ = [
    "TABLE5_DRIVER_PROFILES",
    "TABLE5_DRIVER_NAMES",
    "SYZKALLER_DESCRIBED",
    "PAPER_TABLE5",
]
