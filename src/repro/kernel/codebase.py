"""The synthetic kernel codebase: source tree, constants, ground truth.

:class:`KernelCodebase` is the object every other subsystem works against:

* the **extractor** reads its rendered C source files;
* **KernelGPT** and **SyzDescribe** analyse those files (through the
  extractor) and are audited against its reference specifications;
* the **fuzzer's executor** interprets syscall programs against its ground
  truth (device registry, command values, guards, bug triggers);
* the **experiment harness** scans it to compute Table 1 / Figure 7.

``build_default_kernel()`` assembles the standard kernel used throughout the
evaluation: the Table 5 drivers, the Table 4 bug drivers, the Table 6 sockets
and a deterministic filler population that brings the handler counts to the
paper's scan scale.  ``scale="small"`` builds a reduced kernel for fast unit
tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Mapping

from ..errors import KernelModelError
from ..syzlang import ConstantTable, SpecSuite
from .builder import (
    build_driver_source,
    build_socket_source,
    driver_constants,
    reference_suite_for_driver,
    reference_suite_for_socket,
    socket_constants,
)
from .bugs import DEFAULT_BUG_CATALOG, BugCatalog
from .configs import KernelConfig, allyesconfig, syzbot_config
from .extra_drivers import BUG_DRIVER_PROFILES, driver_population
from .factory import DriverProfile, SocketProfile, make_driver, make_socket
from .ops import DriverTruth, SocketTruth
from .source import CSourceFile
from .table5_drivers import SYZKALLER_DESCRIBED, TABLE5_DRIVER_PROFILES
from .table6_sockets import TABLE6_SOCKET_PROFILES, socket_population


@dataclass(frozen=True)
class HandlerRecord:
    """One operation handler known to the codebase."""

    name: str            # human label (driver or socket name)
    handler_name: str    # the fops / proto_ops variable name
    kind: str            # "driver" or "socket"
    truth: DriverTruth | SocketTruth
    existing_described: int | None  # ops described by the existing Syzkaller corpus

    @property
    def loaded_attrs(self) -> dict:
        truth = self.truth
        if isinstance(truth, DriverTruth):
            return {
                "config_option": truth.config_option,
                "hardware_gated": truth.hardware_gated,
                "debug_only": truth.debug_only,
            }
        return {
            "config_option": truth.config_option,
            "hardware_gated": truth.hardware_gated,
            "debug_only": False,
        }


class KernelCodebase:
    """A fully-assembled synthetic kernel."""

    def __init__(
        self,
        *,
        drivers: Iterable[tuple[DriverTruth, int | None]],
        sockets: Iterable[tuple[SocketTruth, int | None]],
        bug_catalog: BugCatalog | None = None,
        version: str = "6.7.0-synthetic",
    ):
        self.version = version
        self.bug_catalog = bug_catalog or DEFAULT_BUG_CATALOG
        self._drivers: dict[str, DriverTruth] = {}
        self._sockets: dict[str, SocketTruth] = {}
        self._records: dict[str, HandlerRecord] = {}
        self._constants = ConstantTable()
        self._device_registry: dict[str, DriverTruth] = {}
        self._family_registry: dict[tuple[int, int, int], SocketTruth] = {}

        for truth, described in drivers:
            self._add_driver(truth, described)
        for truth, described in sockets:
            self._add_socket(truth, described)

    # ------------------------------------------------------------ assembly
    def _add_driver(self, truth: DriverTruth, described: int | None) -> None:
        if truth.name in self._drivers:
            raise KernelModelError(f"duplicate driver {truth.name!r}")
        if truth.handler_name in self._records:
            raise KernelModelError(f"duplicate handler name {truth.handler_name!r}")
        self._drivers[truth.name] = truth
        self._records[truth.handler_name] = HandlerRecord(
            name=truth.name, handler_name=truth.handler_name, kind="driver",
            truth=truth, existing_described=described,
        )
        self._constants.update(ConstantTable(driver_constants(truth)))
        self._device_registry[truth.device_path] = truth

    def _add_socket(self, truth: SocketTruth, described: int | None) -> None:
        if truth.name in self._sockets:
            raise KernelModelError(f"duplicate socket {truth.name!r}")
        if truth.handler_name in self._records:
            raise KernelModelError(f"duplicate handler name {truth.handler_name!r}")
        self._sockets[truth.name] = truth
        self._records[truth.handler_name] = HandlerRecord(
            name=truth.name, handler_name=truth.handler_name, kind="socket",
            truth=truth, existing_described=described,
        )
        self._constants.update(ConstantTable(socket_constants(truth)))
        self._family_registry[(truth.family_value, truth.sock_type, truth.protocol)] = truth

    # ------------------------------------------------------------- lookups
    @property
    def drivers(self) -> Mapping[str, DriverTruth]:
        return dict(self._drivers)

    @property
    def sockets(self) -> Mapping[str, SocketTruth]:
        return dict(self._sockets)

    @property
    def constants(self) -> ConstantTable:
        return self._constants

    def handler_records(self, kind: str | None = None) -> list[HandlerRecord]:
        records = list(self._records.values())
        if kind is not None:
            records = [record for record in records if record.kind == kind]
        return records

    def record_for_handler(self, handler_name: str) -> HandlerRecord:
        try:
            return self._records[handler_name]
        except KeyError:
            raise KernelModelError(f"unknown operation handler {handler_name!r}") from None

    def record_for_name(self, name: str) -> HandlerRecord:
        for record in self._records.values():
            if record.name == name:
                return record
        raise KernelModelError(f"no driver or socket named {name!r}")

    def driver(self, name: str) -> DriverTruth:
        try:
            return self._drivers[name]
        except KeyError:
            raise KernelModelError(f"unknown driver {name!r}") from None

    def socket(self, name: str) -> SocketTruth:
        try:
            return self._sockets[name]
        except KeyError:
            raise KernelModelError(f"unknown socket {name!r}") from None

    def resolve_device(self, path: str) -> DriverTruth | None:
        """Resolve an opened device path against the device registry.

        Numbered device nodes (``/dev/loop#``) match any trailing digit
        (``/dev/loop0``).
        """
        if path in self._device_registry:
            return self._device_registry[path]
        for registered, truth in self._device_registry.items():
            if "#" in registered:
                prefix = registered.split("#", 1)[0]
                if path.startswith(prefix) and path[len(prefix):].isdigit():
                    return truth
        return None

    def resolve_socket(self, family: int, sock_type: int, protocol: int) -> SocketTruth | None:
        exact = self._family_registry.get((family, sock_type, protocol))
        if exact is not None:
            return exact
        for (fam, typ, proto), truth in self._family_registry.items():
            if fam == family and typ == sock_type and protocol == 0:
                return truth
        return None

    # ------------------------------------------------------------- configs
    def scan_config(self) -> KernelConfig:
        return allyesconfig()

    def fuzz_config(self) -> KernelConfig:
        """The syzbot-like configuration: every non-gated handler's option on."""
        options = []
        for record in self._records.values():
            attrs = record.loaded_attrs
            if not attrs["hardware_gated"] and not attrs["debug_only"]:
                options.append(attrs["config_option"])
        return syzbot_config(options)

    def loaded_records(self, config: KernelConfig | None = None, kind: str | None = None) -> list[HandlerRecord]:
        config = config or self.fuzz_config()
        loaded = []
        for record in self.handler_records(kind):
            if config.loads(**record.loaded_attrs):
                loaded.append(record)
        return loaded

    # ---------------------------------------------------------------- source
    @lru_cache(maxsize=None)
    def source_file_for(self, handler_name: str) -> CSourceFile:
        """Render (and cache) the C source file defining the given handler."""
        record = self.record_for_handler(handler_name)
        if record.kind == "driver":
            return build_driver_source(record.truth)  # type: ignore[arg-type]
        return build_socket_source(record.truth)  # type: ignore[arg-type]

    def source_text_for(self, handler_name: str) -> str:
        return self.source_file_for(handler_name).render()

    def source_files(self) -> dict[str, str]:
        """Render the whole tree: path → file text (used by the extractor)."""
        files: dict[str, str] = {}
        for record in self._records.values():
            source = self.source_file_for(record.handler_name)
            files[source.path] = source.render()
        return files

    # ------------------------------------------------------------ reference
    @lru_cache(maxsize=None)
    def reference_suite(self, name: str) -> SpecSuite:
        """The ground-truth specification for a driver or socket by name."""
        if name in self._drivers:
            return reference_suite_for_driver(self._drivers[name])
        if name in self._sockets:
            return reference_suite_for_socket(self._sockets[name])
        raise KernelModelError(f"no driver or socket named {name!r}")

    def ground_truth_interfaces(self, config: KernelConfig | None = None) -> dict[str, tuple[str, tuple[str, ...]]]:
        """Handler → (kind, implemented interface names) for loaded handlers."""
        interfaces: dict[str, tuple[str, tuple[str, ...]]] = {}
        for record in self.loaded_records(config):
            interfaces[record.handler_name] = (record.kind, record.truth.interface_names())
        return interfaces

    # ------------------------------------------------------------- coverage
    def coverage_space(self) -> "CoverageSpace":
        """The interned coverage-block label space of this codebase.

        Built once per kernel (weak-cached by the coverage module) in
        construction order, so every process that assembles the same kernel
        assigns identical block indices — the invariant that lets campaign
        bitmaps cross process boundaries as plain integers.
        """
        from .coverage import CoverageSpace

        return CoverageSpace.for_kernel(self)

    # ------------------------------------------------------------------ misc
    def stats(self) -> dict[str, int]:
        loaded = self.loaded_records()
        return {
            "drivers": len(self._drivers),
            "sockets": len(self._sockets),
            "handlers": len(self._records),
            "loaded_drivers": sum(1 for record in loaded if record.kind == "driver"),
            "loaded_sockets": sum(1 for record in loaded if record.kind == "socket"),
            "constants": len(self._constants),
            "bugs": len(self.bug_catalog),
        }


# ---------------------------------------------------------------------------
# Default kernels
# ---------------------------------------------------------------------------


def _expand_driver(profile: DriverProfile, described: int | None) -> tuple[DriverTruth, int | None]:
    return make_driver(profile), described


def _expand_socket(profile: SocketProfile, described: int | None) -> tuple[SocketTruth, int | None]:
    return make_socket(profile), described


def build_default_kernel(scale: str = "full") -> KernelCodebase:
    """Assemble the synthetic kernel used by the evaluation.

    ``scale="full"`` builds the complete scan-scale population (666 driver and
    85 socket handlers); ``scale="small"`` builds only the Table 5 / Table 4 /
    Table 6 handlers plus a handful of fillers, which is fast enough for unit
    tests while exercising every code pattern.
    """
    if scale not in ("full", "small"):
        raise ValueError("scale must be 'full' or 'small'")

    drivers: list[tuple[DriverTruth, int | None]] = []
    sockets: list[tuple[SocketTruth, int | None]] = []

    for profile in TABLE5_DRIVER_PROFILES:
        drivers.append(_expand_driver(profile, SYZKALLER_DESCRIBED.get(profile.name)))

    if scale == "full":
        for profile, described in driver_population():
            drivers.append(_expand_driver(profile, described))
        for profile, described in socket_population():
            sockets.append(_expand_socket(profile, described))
    else:
        for profile in BUG_DRIVER_PROFILES:
            drivers.append(_expand_driver(profile, 0))
        from .table6_sockets import SYZKALLER_SOCKET_DESCRIBED

        for profile in TABLE6_SOCKET_PROFILES:
            sockets.append(_expand_socket(profile, SYZKALLER_SOCKET_DESCRIBED[profile.name]))

    return KernelCodebase(drivers=drivers, sockets=sockets)


@lru_cache(maxsize=2)
def cached_default_kernel(scale: str = "full") -> KernelCodebase:
    """Memoised :func:`build_default_kernel` for tests and benchmarks."""
    return build_default_kernel(scale)


__all__ = [
    "HandlerRecord",
    "KernelCodebase",
    "build_default_kernel",
    "cached_default_kernel",
]
