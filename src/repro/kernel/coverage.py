"""Interned coverage-block label space and integer-backed coverage bitmaps.

The fuzz hot loop used to report coverage as a Python set of label strings
(``"dm:DM_DEV_CREATE:base:3"``), which meant every executed program formatted
f-strings, hashed them, and unioned string sets — the dominant interpreter
cost of a campaign once LLM queries are memoized.  This module replaces that
representation with dense integer indices:

* :class:`CoverageSpace` enumerates every block label the executor can ever
  report for one :class:`~repro.kernel.codebase.KernelCodebase` — driver open
  blocks, socket create blocks, ioctl entry/default blocks, per-op base /
  copy-in / guard-bonus / requires-missing blocks, and sockcall entry blocks
  — and interns each label to a dense index.  **Indices are assigned in
  codebase construction order** (drivers, then sockets, each in registration
  order; never from iteration over sets), so two processes that build the
  same kernel assign identical indices and bitmaps can cross process
  boundaries as plain integers.
* :class:`CoverageBitmap` is an immutable bitset over one space (one big
  ``int`` plus an overflow set for labels outside the space — e.g. a
  wrong-spec sockcall name) with the set-algebra the paper's comparisons
  need: ``count``, ``union``, ``difference_count``, and a lazy
  :meth:`~CoverageBitmap.labels` that recovers the human-readable label set
  for reporting and equivalence tests.

A bitmap pickles as its bits plus the space *digest*, not the thousands of
label strings, which keeps engine task results small.  Unpickling re-binds
the space through a process-wide registry keyed by digest; campaign drivers
register the space before fanning out (see
:func:`repro.fuzzer.fuzzer.run_repeated_campaigns`), so worker results always
resolve in the parent.
"""

from __future__ import annotations

import hashlib
import weakref
from typing import TYPE_CHECKING, Iterable, Iterator

from ..errors import CoverageSpaceMismatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .codebase import KernelCodebase
    from .configs import KernelConfig
    from .ops import DriverTruth, IoctlOp, SecondaryHandlerTruth, SockOp, SocketTruth

#: Sockcall syscalls interned for every socket in addition to those its op
#: table names: programs generated from wrong specifications can issue any of
#: these against a socket fd, and the executor reports the entry label whether
#: or not an op matches.  Labels outside this union fall back to the bitmap's
#: overflow set, so the enumeration is a fast path, not a correctness bound.
COMMON_SOCKCALLS: tuple[str, ...] = (
    "setsockopt", "getsockopt", "bind", "connect", "sendto", "recvfrom",
    "sendmsg", "recvmsg", "accept", "listen", "write", "read",
)

#: Process-wide digest → space registry used to re-bind unpickled bitmaps.
_SPACES_BY_DIGEST: "weakref.WeakValueDictionary[str, CoverageSpace]" = weakref.WeakValueDictionary()

#: Per-kernel space cache (weak keys: spaces die with their kernel).
_SPACES_BY_KERNEL: "weakref.WeakKeyDictionary[KernelCodebase, CoverageSpace]" = weakref.WeakKeyDictionary()


def _op_labels(
    owner: str,
    op_label: str,
    op: "IoctlOp | SockOp",
    *,
    requires: bool,
    include_guards: bool = True,
) -> Iterator[str]:
    """Every label :meth:`KernelExecutor._cover_op` can emit for one op."""
    if requires:
        yield f"{owner}:{op_label}:requires-missing"
    for block in range(op.base_blocks):
        yield f"{owner}:{op_label}:base:{block}"
    if op.arg_struct is not None:
        yield f"{owner}:{op_label}:copy-in"
    if include_guards:
        for guard_index, guard in enumerate(op.guards):
            for bonus in range(guard.bonus_blocks):
                yield f"{owner}:{op_label}:guard{guard_index}:{bonus}"


def _ioctl_surface_labels(
    owner: str,
    entry_blocks: int,
    ops: "tuple[IoctlOp, ...]",
    *,
    include_guards: bool = True,
    include_requires: bool = True,
) -> Iterator[str]:
    for block in range(entry_blocks):
        yield f"{owner}:ioctl-entry:{block}"
    yield f"{owner}:ioctl-entry:default"
    for op in ops:
        yield from _op_labels(
            owner, op.macro, op, requires=include_requires, include_guards=include_guards
        )


def enumerate_kernel_labels(
    kernel: "KernelCodebase",
    config: "KernelConfig | None" = None,
    *,
    include_guards: bool = True,
    include_requires: bool = True,
) -> Iterator[str]:
    """Every coverage label reachable in ``kernel``, in construction order.

    With a ``config``, only handlers the configuration loads contribute
    (secondary handlers ride their parent driver), and the
    ``include_guards`` / ``include_requires`` flags drop the guard-bonus /
    requires-missing block families — the enumeration the config-pruned
    spaces of :func:`repro.kconfig.prune_coverage_space` are built from.
    Filtering never reorders: surviving labels keep their relative
    construction order, which is what keeps pruned spaces determinism-rule-6
    compliant.
    """
    for driver in kernel.drivers.values():
        if config is not None and not config.loads(
            config_option=driver.config_option,
            hardware_gated=driver.hardware_gated,
            debug_only=driver.debug_only,
        ):
            continue
        for block in range(driver.open_blocks):
            yield f"{driver.name}:open:{block}"
        yield from _ioctl_surface_labels(
            driver.name, driver.ioctl_entry_blocks, driver.ops,
            include_guards=include_guards, include_requires=include_requires,
        )
        for secondary in driver.secondary_handlers:
            yield from _ioctl_surface_labels(
                secondary.name, secondary.ioctl_entry_blocks, secondary.ops,
                include_guards=include_guards, include_requires=include_requires,
            )
    for socket in kernel.sockets.values():
        if config is not None and not config.loads(
            config_option=socket.config_option,
            hardware_gated=socket.hardware_gated,
            debug_only=False,
        ):
            continue
        for block in range(socket.create_blocks):
            yield f"{socket.name}:create:{block}"
        sockcalls = list(dict.fromkeys(op.syscall for op in socket.ops))
        sockcalls.extend(name for name in COMMON_SOCKCALLS if name not in sockcalls)
        for syscall in sockcalls:
            yield f"{socket.name}:{syscall}:entry"
        for op in socket.ops:
            yield from _op_labels(
                socket.name, op.interface_name, op,
                requires=False, include_guards=include_guards,
            )


class CoverageSpace:
    """A dense label ↔ index interning table for one kernel codebase."""

    __slots__ = ("_labels", "_index", "_digest", "__weakref__")

    def __init__(self, labels: Iterable[str]):
        # Dedupe preserving first appearance: enumeration order is the
        # contract, and a duplicate label simply maps to its first index.
        index: dict[str, int] = {}
        for label in labels:
            if label not in index:
                index[label] = len(index)
        self._index = index
        self._labels = tuple(index)
        self._digest = hashlib.sha256("\n".join(self._labels).encode("utf-8")).hexdigest()
        _SPACES_BY_DIGEST.setdefault(self._digest, self)

    # ------------------------------------------------------------- factories
    @classmethod
    def for_kernel(cls, kernel: "KernelCodebase") -> "CoverageSpace":
        """The (cached) coverage space of ``kernel``.

        Building the space walks the whole ground truth once; every executor,
        campaign driver and report for the same kernel object shares the one
        instance.  The cache is weak, so spaces die with their kernel.
        """
        space = _SPACES_BY_KERNEL.get(kernel)
        if space is None:
            space = cls(enumerate_kernel_labels(kernel))
            _SPACES_BY_KERNEL[kernel] = space
        return space

    @staticmethod
    def by_digest(digest: str) -> "CoverageSpace | None":
        """Resolve a space by digest (how unpickled bitmaps re-bind)."""
        return _SPACES_BY_DIGEST.get(digest)

    # --------------------------------------------------------------- lookups
    @property
    def size(self) -> int:
        return len(self._labels)

    @property
    def digest(self) -> str:
        return self._digest

    def index_of(self, label: str) -> int:
        return self._index[label]

    def get(self, label: str) -> int | None:
        return self._index.get(label)

    def label_of(self, index: int) -> str:
        return self._labels[index]

    def indices_of(self, labels: Iterable[str]) -> tuple[int, ...]:
        """Intern a label sequence to its index tuple (plan precomputation)."""
        return tuple(self._index[label] for label in labels)

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: str) -> bool:
        return label in self._index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CoverageSpace(size={len(self._labels)}, digest={self._digest[:12]}...)"


class CoverageBitmap:
    """An immutable coverage bitset over one :class:`CoverageSpace`.

    ``bits`` is one arbitrary-precision integer — bit *i* set means block
    label *i* of the space was covered.  ``extras`` holds the rare labels
    outside the space (a sockcall entry from a syscall no ground-truth op
    names); they participate in every count and set operation so the bitmap
    is *exactly* equivalent to the legacy string set, not approximately.

    The empty bitmap ``CoverageBitmap()`` is space-less and acts as the
    identity for union/difference against any space (campaign defaults,
    ``merge_campaigns([])``).
    """

    __slots__ = ("_bits", "_extras", "_space", "_digest")

    def __init__(
        self,
        space: CoverageSpace | None = None,
        bits: int = 0,
        extras: Iterable[str] = (),
    ):
        self._space = space
        self._digest = space.digest if space is not None else None
        self._bits = bits
        self._extras = frozenset(extras)

    @classmethod
    def from_indices(
        cls,
        space: CoverageSpace,
        indices: Iterable[int],
        extras: Iterable[str] = (),
    ) -> "CoverageBitmap":
        """Build a bitmap from covered indices (one byte-buffer pass)."""
        buffer = bytearray((space.size + 7) >> 3)
        for index in indices:
            buffer[index >> 3] |= 1 << (index & 7)
        return cls(space, int.from_bytes(buffer, "little"), extras)

    @classmethod
    def from_labels(cls, space: CoverageSpace, labels: Iterable[str]) -> "CoverageBitmap":
        """Build a bitmap from label strings (reporting/test convenience)."""
        indices: list[int] = []
        extras: list[str] = []
        for label in labels:
            index = space.get(label)
            if index is None:
                extras.append(label)
            else:
                indices.append(index)
        return cls.from_indices(space, indices, extras)

    # ------------------------------------------------------------ accessors
    @property
    def bits(self) -> int:
        return self._bits

    @property
    def extras(self) -> frozenset[str]:
        return self._extras

    @property
    def digest(self) -> str | None:
        return self._digest

    @property
    def count(self) -> int:
        """Number of covered blocks (the paper's ``Cov`` numbers)."""
        return self._bits.bit_count() + len(self._extras)

    def __len__(self) -> int:
        return self.count

    def __bool__(self) -> bool:
        return bool(self._bits) or bool(self._extras)

    # ---------------------------------------------------------- set algebra
    def _aligned(self, other: "CoverageBitmap") -> tuple[CoverageSpace | None, str | None]:
        if (
            self._digest is not None
            and other._digest is not None
            and self._digest != other._digest
        ):
            raise CoverageSpaceMismatch(
                "cannot combine coverage bitmaps from different coverage spaces "
                f"({self._digest[:12]}… vs {other._digest[:12]}…); bitmaps from "
                "different kernel configs must be diffed through their labels",
                left_digest=self._digest,
                right_digest=other._digest,
            )
        if self._space is not None:
            return self._space, self._digest
        return other._space, other._digest

    def union(self, other: "CoverageBitmap") -> "CoverageBitmap":
        space, digest = self._aligned(other)
        merged = CoverageBitmap(space, self._bits | other._bits, self._extras | other._extras)
        if merged._digest is None:
            merged._digest = digest
        return merged

    __or__ = union

    def difference_count(self, other: "CoverageBitmap") -> int:
        """``len(self - other)`` without materialising the difference."""
        self._aligned(other)
        return (self._bits & ~other._bits).bit_count() + len(self._extras - other._extras)

    def __sub__(self, other: "CoverageBitmap") -> "CoverageBitmap":
        space, digest = self._aligned(other)
        result = CoverageBitmap(space, self._bits & ~other._bits, self._extras - other._extras)
        if result._digest is None:
            result._digest = digest
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CoverageBitmap):
            return NotImplemented
        if self._bits != other._bits or self._extras != other._extras:
            return False
        # Two empty bitmaps are equal regardless of space binding; non-empty
        # bitmaps must agree on the space they index into.
        if not self._bits:
            return True
        return (
            self._digest == other._digest
            or self._digest is None
            or other._digest is None
        )

    def __hash__(self) -> int:
        return hash((self._bits, self._extras))

    # ------------------------------------------------------------ reporting
    def _resolve_space(self) -> CoverageSpace:
        if self._space is not None:
            return self._space
        if self._digest is not None:
            space = _SPACES_BY_DIGEST.get(self._digest)
            if space is not None:
                self._space = space
                return space
        raise RuntimeError(
            "coverage space unavailable: build it in this process first "
            "(CoverageSpace.for_kernel(kernel)) so unpickled bitmaps can re-bind"
        )

    def indices(self) -> Iterator[int]:
        """Set bit indices, ascending."""
        bits = self._bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def labels(self) -> set[str]:
        """The covered block labels as a plain string set (lazy, for reports
        and the legacy-equivalence tests; never touched by the hot loop)."""
        if not self._bits:
            return set(self._extras)
        space = self._resolve_space()
        covered = {space.label_of(index) for index in self.indices()}
        covered.update(self._extras)
        return covered

    def __iter__(self) -> Iterator[str]:
        """Iterate labels deterministically: index order, then sorted extras."""
        if self._bits:
            space = self._resolve_space()
            for index in self.indices():
                yield space.label_of(index)
        yield from sorted(self._extras)

    def __contains__(self, label: str) -> bool:
        if label in self._extras:
            return True
        if not self._bits:
            return False
        index = self._resolve_space().get(label)
        return index is not None and bool(self._bits >> index & 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CoverageBitmap(count={self.count}, extras={len(self._extras)})"

    # -------------------------------------------------------------- pickling
    def __getstate__(self) -> tuple:
        # Bits + digest, never the label strings: a campaign's coverage
        # pickles in a few kilobytes instead of shipping thousands of labels
        # per engine task result.
        return (self._bits, self._extras, self._digest)

    def __setstate__(self, state: tuple) -> None:
        self._bits, self._extras, self._digest = state
        self._space = _SPACES_BY_DIGEST.get(self._digest) if self._digest else None


__all__ = [
    "COMMON_SOCKCALLS",
    "CoverageBitmap",
    "CoverageSpace",
    "enumerate_kernel_labels",
]
