"""Compact factories that expand driver/socket profiles into full ground truth.

Writing the ground truth for hundreds of synthetic handlers field-by-field
would be impractical, so the dataset modules describe each handler with a
small profile (name, device node, registration/dispatch pattern, number of
operations, special cases) and this module expands the profile into a
complete :class:`~repro.kernel.ops.DriverTruth` / ``SocketTruth`` —
deterministically, seeded by the handler name, so every run of the library
sees the same synthetic kernel.

The expansion takes care of:

* realistic command macro names (``VERB`` x ``NOUN`` combinations under the
  driver's prefix) and properly encoded ``_IOC`` command values;
* argument struct definitions with ranged fields, flag fields, fixed arrays
  and flexible arrays carrying ``count``/``len`` relationships;
* semantic guards derived from those fields;
* bug triggers attached to the operations named in the profile;
* secondary handlers reached through resources produced by primary ops.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .ops import (
    ArgKind,
    BugTrigger,
    DispatchStyle,
    DriverTruth,
    FieldTruth,
    Guard,
    GuardKind,
    IoctlOp,
    RegistrationStyle,
    SecondaryHandlerTruth,
    SockOp,
    SocketTruth,
    StructTruth,
    ioc,
)

_VERBS = (
    "GET", "SET", "CREATE", "DESTROY", "START", "STOP", "QUERY", "ENABLE",
    "DISABLE", "RESET", "ATTACH", "DETACH", "READ", "WRITE", "MAP", "UNMAP",
    "ADD", "REMOVE", "LIST", "INFO", "WAIT", "CLEAR", "LOAD", "FLUSH",
)

_NOUNS = (
    "DEVICE", "QUEUE", "BUFFER", "REGS", "IRQ", "TIMER", "MEM", "TABLE",
    "STATE", "PARAMS", "FLAGS", "ADDR", "MODE", "CHANNEL", "STREAM", "FORMAT",
    "CLOCK", "EVENT", "FILTER", "PORT", "RING", "VOLUME", "KEY", "SESSION",
    "STATS", "CAPS", "LAYOUT", "CONFIG", "TARGET", "VERSION", "FEATURES", "STATUS",
)

_FIELD_NAMES = (
    "flags", "size", "offset", "index", "count", "id", "mode", "level",
    "mask", "value", "addr", "length", "type", "status", "priority", "timeout",
    "channel", "unit", "version", "reserved", "capacity", "threshold",
)

_FIELD_TYPES = ("__u8", "__u16", "__u32", "__u32", "__u32", "__u64")


@dataclass(frozen=True)
class BugSite:
    """Where a profile wants a bug injected.

    ``op_index`` selects the operation (negative indexes count from the end);
    when ``macro`` is set it takes precedence and must match an op macro after
    expansion.
    """

    bug_id: str
    op_index: int = 0
    macro: str = ""
    field_name: str = "size"
    min_value: int = 0x10000000
    requires_resource: str = ""


@dataclass(frozen=True)
class SecondaryProfile:
    """A dependent handler reachable through a resource-producing op."""

    name: str
    resource: str
    num_ops: int
    producer_macro: str = ""
    op_prefix: str = ""


@dataclass(frozen=True)
class DriverProfile:
    """Compact description of one synthetic driver handler."""

    name: str
    device_path: str
    registration: RegistrationStyle = RegistrationStyle.MISC_NAME
    dispatch: DispatchStyle = DispatchStyle.DIRECT_SWITCH
    num_ops: int = 8
    op_prefix: str = ""
    op_names: tuple[str, ...] = ()
    ioc_type: int = 0
    misc_name: str = ""
    handler_name: str = ""
    ioctl_handler_fn: str = ""
    source_file: str = ""
    config_option: str = ""
    hardware_gated: bool = False
    debug_only: bool = False
    struct_fraction: float = 0.7
    guard_density: float = 0.6
    blocks_scale: float = 1.0
    secondary: tuple[SecondaryProfile, ...] = ()
    bugs: tuple[BugSite, ...] = ()
    comment: str = ""


@dataclass(frozen=True)
class SocketProfile:
    """Compact description of one synthetic socket protocol handler."""

    name: str
    family_macro: str
    family_value: int
    sock_type: int = 2  # SOCK_DGRAM
    protocol: int = 0
    num_setsockopt: int = 6
    num_getsockopt: int = 3
    message_ops: tuple[str, ...] = ("bind", "connect", "sendto", "recvfrom")
    opt_prefix: str = ""
    handler_name: str = ""
    source_file: str = ""
    config_option: str = ""
    hardware_gated: bool = False
    struct_fraction: float = 0.6
    guard_density: float = 0.5
    blocks_scale: float = 1.0
    bugs: tuple[BugSite, ...] = ()
    comment: str = ""


# ---------------------------------------------------------------------------
# Driver expansion
# ---------------------------------------------------------------------------


def _c_ident(name: str) -> str:
    return name.replace("-", "_").replace("#", "n").replace("/", "_")


def _op_macro_names(prefix: str, count: int, rng: random.Random, explicit: tuple[str, ...]) -> list[str]:
    names = list(explicit[:count])
    seen = set(names)
    verbs = list(_VERBS)
    nouns = list(_NOUNS)
    rng.shuffle(verbs)
    rng.shuffle(nouns)
    for verb in verbs:
        for noun in nouns:
            if len(names) >= count:
                return names
            candidate = f"{prefix}_{verb}_{noun}"
            if candidate not in seen:
                names.append(candidate)
                seen.add(candidate)
    index = 0
    while len(names) < count:
        candidate = f"{prefix}_OP_{index}"
        if candidate not in seen:
            names.append(candidate)
            seen.add(candidate)
        index += 1
    return names


def _make_struct(owner: str, macro: str, rng: random.Random, *, guard_density: float,
                 bug: BugSite | None) -> tuple[StructTruth, tuple[Guard, ...], BugTrigger | None]:
    """Generate an argument struct plus the guards/bug trigger tied to it."""
    struct_name = f"{_c_ident(owner)}_{macro.split('_', 1)[-1].lower()}_args"
    num_fields = rng.randint(3, 7)
    field_names = rng.sample(_FIELD_NAMES, num_fields)
    fields: list[FieldTruth] = []
    guards: list[Guard] = []
    # Optional flexible array + count pair exercising len[] inference.
    has_flex = rng.random() < 0.35
    for index, field_name in enumerate(field_names):
        c_type = rng.choice(_FIELD_TYPES)
        valid_range = None
        if rng.random() < guard_density * 0.5:
            high = rng.choice((3, 7, 15, 31, 63))
            valid_range = (0, high)
            guards.append(Guard(GuardKind.FIELD_RANGE, field=field_name, low=0, high=high, bonus_blocks=4))
        fields.append(FieldTruth(name=field_name, c_type=c_type, valid_range=valid_range))
    if has_flex:
        elem_struct = None
        fields.append(FieldTruth(name="entries", c_type="__u64", flexible=True))
        fields.insert(
            0,
            FieldTruth(name="nr_entries", c_type="__u32", len_of="entries",
                       comment="number of entries that follow"),
        )
        guards.append(Guard(GuardKind.LEN_MATCHES, field="nr_entries", target="entries", bonus_blocks=6))
    bug_trigger = None
    if bug is not None:
        trigger_field = bug.field_name
        if all(member.name != trigger_field for member in fields):
            fields.append(FieldTruth(name=trigger_field, c_type="__u32",
                                     comment="size of the payload to allocate"))
        bug_trigger = BugTrigger(
            bug_id=bug.bug_id,
            field=trigger_field,
            min_value=bug.min_value,
            requires_typed=True,
            requires_resource=bug.requires_resource,
        )
    return StructTruth(struct_name, tuple(fields)), tuple(guards), bug_trigger


def _expand_ops(
    owner: str,
    macros: list[str],
    rng: random.Random,
    *,
    ioc_type: int,
    dispatch: DispatchStyle,
    struct_fraction: float,
    guard_density: float,
    blocks_scale: float,
    bug_by_macro: dict[str, BugSite],
    producers: dict[str, str],
) -> tuple[list[IoctlOp], list[StructTruth]]:
    ops: list[IoctlOp] = []
    structs: list[StructTruth] = []
    rewrite = dispatch in (DispatchStyle.IOC_NR_REWRITE, DispatchStyle.TABLE_LOOKUP)
    for nr, macro in enumerate(macros, start=1):
        bug_site = bug_by_macro.get(macro)
        produces = producers.get(macro)
        arg_roll = rng.random()
        if produces is not None:
            arg_kind = ArgKind.NONE
        elif bug_site is not None or arg_roll < struct_fraction:
            arg_kind = ArgKind.STRUCT
        elif arg_roll < struct_fraction + 0.15:
            arg_kind = ArgKind.SCALAR
        else:
            arg_kind = ArgKind.NONE
        arg_struct = None
        guards: tuple[Guard, ...] = ()
        bug_trigger = None
        direction = "in"
        size = 8
        if arg_kind is ArgKind.STRUCT:
            struct_truth, guards, bug_trigger = _make_struct(
                owner, macro, rng, guard_density=guard_density, bug=bug_site
            )
            structs.append(struct_truth)
            arg_struct = struct_truth.name
            direction = rng.choice(("in", "in", "inout", "out"))
            size = max(8, min(struct_truth.byte_size(), 0x3FFF))
        value = ioc(direction if arg_kind is ArgKind.STRUCT else "none", ioc_type, nr, size)
        nr_macro = f"{macro}_CMD" if rewrite else None
        nr_value = nr if rewrite else None
        base_blocks = max(3, int(rng.randint(4, 10) * blocks_scale))
        ops.append(
            IoctlOp(
                macro=macro,
                value=value,
                arg_kind=arg_kind,
                arg_struct=arg_struct,
                direction=direction,
                nr_macro=nr_macro,
                nr_value=nr_value,
                base_blocks=base_blocks,
                guards=guards,
                produces=produces,
                bug=bug_trigger,
            )
        )
    return ops, structs


def _wire_producer(op_groups: list[list[IoctlOp]], producer_macro: str, resource: str, ioc_type: int) -> None:
    """Mark the op named ``producer_macro`` as producing ``resource``.

    The op is looked up across the primary handler and every
    already-expanded secondary handler; if it does not exist yet it is added
    to the group whose macros share its prefix (falling back to the primary
    handler), so profiles can name producers like ``KVM_VM_CREATE_VCPU`` that
    belong to a secondary handler.
    """
    import dataclasses

    for group in op_groups:
        for index, op in enumerate(group):
            if op.macro == producer_macro:
                group[index] = dataclasses.replace(op, produces=resource, bug=None)
                return
    target = op_groups[0]
    for group in op_groups[1:]:
        if group and producer_macro.startswith(group[0].macro.rsplit("_", 2)[0]):
            target = group
            break
    nr = 0x80 + sum(len(group) for group in op_groups)
    target.append(
        IoctlOp(
            macro=producer_macro,
            value=ioc("none", ioc_type, nr, 8),
            arg_kind=ArgKind.NONE,
            produces=resource,
            base_blocks=6,
        )
    )


def make_driver(profile: DriverProfile) -> DriverTruth:
    """Expand a :class:`DriverProfile` into full ground truth."""
    rng = random.Random(f"driver:{profile.name}")
    ident = _c_ident(profile.name)
    prefix = profile.op_prefix or ident.upper()
    ioc_type = profile.ioc_type or (0x20 + (sum(map(ord, profile.name)) % 0xC0))

    macros = _op_macro_names(prefix, profile.num_ops, rng, profile.op_names)

    bug_by_macro: dict[str, BugSite] = {}
    for site in profile.bugs:
        macro = site.macro or macros[site.op_index % len(macros)]
        bug_by_macro[macro] = site

    ops, structs = _expand_ops(
        profile.name,
        macros,
        rng,
        ioc_type=ioc_type,
        dispatch=profile.dispatch,
        struct_fraction=profile.struct_fraction,
        guard_density=profile.guard_density,
        blocks_scale=profile.blocks_scale,
        bug_by_macro=bug_by_macro,
        producers={},
    )

    # Expand secondary handlers, wiring each one's producer op afterwards so a
    # producer may live either in the primary handler (KVM_CREATE_VM) or in a
    # previously-expanded secondary (KVM_VM_CREATE_VCPU on the VM handler).
    secondary_handlers: list[SecondaryHandlerTruth] = []
    op_groups: list[list[IoctlOp]] = [ops]
    for secondary in profile.secondary:
        sec_rng = random.Random(f"secondary:{profile.name}:{secondary.name}")
        sec_prefix = secondary.op_prefix or secondary.resource.upper()
        sec_macros = _op_macro_names(sec_prefix, secondary.num_ops, sec_rng, ())
        sec_ops, sec_structs = _expand_ops(
            secondary.name,
            sec_macros,
            sec_rng,
            ioc_type=ioc_type,
            dispatch=DispatchStyle.DIRECT_SWITCH,
            struct_fraction=profile.struct_fraction,
            guard_density=profile.guard_density,
            blocks_scale=profile.blocks_scale,
            bug_by_macro={},
            producers={},
        )
        sec_ops = list(sec_ops)
        structs.extend(sec_structs)
        _wire_producer(op_groups, secondary.producer_macro or macros[0], secondary.resource, ioc_type)
        secondary_handlers.append(
            SecondaryHandlerTruth(
                name=secondary.name,
                handler_name=f"{secondary.resource}_fops",
                resource=secondary.resource,
                ioctl_handler_fn=f"{_c_ident(secondary.name)}_ioctl",
                ops=tuple(sec_ops),
            )
        )
        op_groups.append(sec_ops)
    # Rebuild the secondary tuples after producer wiring may have replaced ops.
    secondary_handlers = [
        SecondaryHandlerTruth(
            name=handler.name,
            handler_name=handler.handler_name,
            resource=handler.resource,
            ioctl_handler_fn=handler.ioctl_handler_fn,
            ops=tuple(op_groups[position + 1]),
            ioctl_entry_blocks=handler.ioctl_entry_blocks,
        )
        for position, handler in enumerate(secondary_handlers)
    ]
    ops = op_groups[0]

    handler_name = profile.handler_name or f"{ident}_fops"
    ioctl_fn = profile.ioctl_handler_fn or f"{ident}_ioctl"
    misc_name = profile.misc_name or profile.name
    return DriverTruth(
        name=profile.name,
        handler_name=handler_name,
        device_path=profile.device_path,
        registration=profile.registration,
        dispatch=profile.dispatch,
        ioctl_handler_fn=ioctl_fn,
        ops=tuple(ops),
        structs=tuple(structs),
        source_file=profile.source_file or f"drivers/{ident}/{ident}.c",
        misc_name=misc_name,
        config_option=profile.config_option or f"CONFIG_{prefix}",
        hardware_gated=profile.hardware_gated,
        debug_only=profile.debug_only,
        secondary_handlers=tuple(secondary_handlers),
        comment=profile.comment,
        open_blocks=max(4, int(8 * profile.blocks_scale)),
        ioctl_entry_blocks=max(2, int(4 * profile.blocks_scale)),
    )


# ---------------------------------------------------------------------------
# Socket expansion
# ---------------------------------------------------------------------------


def make_socket(profile: SocketProfile) -> SocketTruth:
    """Expand a :class:`SocketProfile` into full ground truth."""
    rng = random.Random(f"socket:{profile.name}")
    ident = _c_ident(profile.name)
    prefix = profile.opt_prefix or ident.upper()

    bug_by_interface: dict[str, BugSite] = {}
    ops: list[SockOp] = []
    structs: list[StructTruth] = []

    level_macro = f"SOL_{prefix}"
    level_value = 200 + (sum(map(ord, profile.name)) % 80)

    setsockopt_macros = _op_macro_names(f"{prefix}_SO", profile.num_setsockopt, rng, ())
    getsockopt_macros = _op_macro_names(f"{prefix}_GET", profile.num_getsockopt, rng, ())

    bug_assignments: dict[tuple[str, int], BugSite] = {}
    for site in profile.bugs:
        key = (site.macro, site.op_index)
        bug_assignments[key] = site

    def _bug_for(syscall: str, index: int, macro: str) -> BugSite | None:
        for site in profile.bugs:
            if site.macro and site.macro == macro:
                return site
            if not site.macro and site.op_index == index and syscall == "sendto":
                return site
        return None

    for index, macro in enumerate(setsockopt_macros, start=1):
        arg_struct = None
        guards: tuple[Guard, ...] = ()
        bug_trigger = None
        site = _bug_for("setsockopt", index, macro)
        if site is not None or rng.random() < profile.struct_fraction:
            struct_truth, guards, bug_trigger = _make_struct(
                profile.name, macro, rng, guard_density=profile.guard_density, bug=site
            )
            structs.append(struct_truth)
            arg_struct = struct_truth.name
        ops.append(
            SockOp(
                syscall="setsockopt",
                macro=macro,
                value=index,
                level_macro=level_macro,
                level_value=level_value,
                arg_struct=arg_struct,
                direction="in",
                base_blocks=max(3, int(rng.randint(4, 9) * profile.blocks_scale)),
                guards=guards,
                bug=bug_trigger,
            )
        )
    for index, macro in enumerate(getsockopt_macros, start=1):
        ops.append(
            SockOp(
                syscall="getsockopt",
                macro=macro,
                value=100 + index,
                level_macro=level_macro,
                level_value=level_value,
                arg_struct=None,
                direction="out",
                base_blocks=max(3, int(rng.randint(3, 6) * profile.blocks_scale)),
            )
        )

    addr_struct = StructTruth(
        f"sockaddr_{ident}",
        (
            FieldTruth("family", "__u16"),
            FieldTruth("port", "__u16"),
            FieldTruth("addr", "__u8", array_len=14),
        ),
        comment=f"socket address for {profile.name}",
    )
    structs.append(addr_struct)

    for index, syscall in enumerate(profile.message_ops, start=1):
        site = _bug_for(syscall, index, "")
        guards: tuple[Guard, ...] = ()
        arg_struct = None
        bug_trigger = None
        if syscall in ("bind", "connect", "accept"):
            arg_struct = addr_struct.name
            guards = (Guard(GuardKind.FIELD_EQUALS, field="family", value=profile.family_value, bonus_blocks=5),)
        elif site is not None or rng.random() < profile.struct_fraction:
            struct_truth, guards, bug_trigger = _make_struct(
                profile.name, f"{prefix}_{syscall.upper()}_MSG", rng,
                guard_density=profile.guard_density, bug=site,
            )
            structs.append(struct_truth)
            arg_struct = struct_truth.name
        ops.append(
            SockOp(
                syscall=syscall,
                macro="",
                value=0,
                level_macro=level_macro,
                level_value=level_value,
                arg_struct=arg_struct,
                direction="in" if syscall.startswith(("send", "bind", "connect")) else "out",
                base_blocks=max(4, int(rng.randint(5, 12) * profile.blocks_scale)),
                guards=guards,
                bug=bug_trigger,
            )
        )

    return SocketTruth(
        name=profile.name,
        handler_name=profile.handler_name or f"{ident}_proto_ops",
        family_macro=profile.family_macro,
        family_value=profile.family_value,
        sock_type=profile.sock_type,
        protocol=profile.protocol,
        ops=tuple(ops),
        structs=tuple(structs),
        source_file=profile.source_file or f"net/{ident}/af_{ident}.c",
        config_option=profile.config_option or f"CONFIG_{prefix}",
        hardware_gated=profile.hardware_gated,
        comment=profile.comment,
        create_blocks=max(5, int(10 * profile.blocks_scale)),
    )


__all__ = [
    "BugSite",
    "SecondaryProfile",
    "DriverProfile",
    "SocketProfile",
    "make_driver",
    "make_socket",
]
