"""Typed config axes and validated presets over the kernel config predicate.

:class:`~repro.kernel.configs.KernelConfig` is a thin predicate — a set of
enabled option names plus two exclusion flags.  This module grows it into a
*model*: a :class:`ConfigAxis` names one feature group (a family of
``CONFIG_*`` options that stand or fall together — "filesystem ioctl
surfaces", "network socket families"), and a :class:`ConfigPreset` composes
axes into a validated, nameable configuration with a canonical SHA-256
digest.  The digest is pure content — schema tag, sorted options, flags —
never ``hash()`` or iteration order, so it is identical across processes and
``PYTHONHASHSEED`` values and safe to fold into store keys and campaign
task digests.

Two coverage-shaping feature flags ride on the preset: ``include_guards``
and ``include_requires`` drop the per-op guard-bonus / requires-missing
blocks from the pruned coverage space (see
:func:`~repro.kconfig.prune.prune_coverage_space`), modelling configs that
compile out lockdep-style guard instrumentation.  They participate in the
digest like everything else.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass

from ..errors import ConfigError
from ..kernel.configs import ALWAYS_BUILT_IN, KernelConfig

#: Bumped whenever digest derivation or the preset model changes
#: incompatibly; old store entries go cold instead of being mis-served.
KCONFIG_SCHEMA = "repro-kconfig-v1"

_OPTION_PATTERN = re.compile(r"^CONFIG_[A-Z0-9_]+$")
_NAME_PATTERN = re.compile(r"^[a-z0-9][a-z0-9-]*$")


def _canonical_json(value) -> str:
    return json.dumps(value, sort_keys=True, ensure_ascii=False, separators=(",", ":"))


def _digest_of(payload) -> str:
    body = f"{KCONFIG_SCHEMA}\x00{_canonical_json(payload)}"
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ConfigAxis:
    """One named feature group: the options it turns on when selected."""

    name: str
    options: tuple[str, ...]
    description: str = ""

    def __post_init__(self):
        if not _NAME_PATTERN.match(self.name):
            raise ConfigError(
                f"config axis name {self.name!r} must be lowercase kebab-case"
            )
        if not self.options:
            raise ConfigError(f"config axis {self.name!r} names no options")
        seen: set[str] = set()
        for option in self.options:
            if option != ALWAYS_BUILT_IN and not _OPTION_PATTERN.match(option):
                raise ConfigError(
                    f"config axis {self.name!r}: option {option!r} is not a "
                    "CONFIG_* name (or the ALWAYS_BUILT_IN sentinel)"
                )
            if option in seen:
                raise ConfigError(
                    f"config axis {self.name!r} lists option {option!r} twice"
                )
            seen.add(option)

    def as_payload(self) -> dict:
        return {"name": self.name, "options": sorted(self.options)}


@dataclass(frozen=True)
class ConfigPreset:
    """A validated, digestable composition of config axes.

    ``enable_all`` models allyesconfig-style presets and is mutually
    exclusive with explicit axes.  ``exclude_hardware_gated`` /
    ``exclude_debug`` mirror the kernel-config flags;
    ``include_guards`` / ``include_requires`` shape the pruned coverage
    space (guard-bonus and requires-missing blocks).
    """

    name: str
    axes: tuple[ConfigAxis, ...] = ()
    enable_all: bool = False
    exclude_hardware_gated: bool = True
    exclude_debug: bool = True
    include_guards: bool = True
    include_requires: bool = True
    description: str = ""

    def __post_init__(self):
        if not _NAME_PATTERN.match(self.name):
            raise ConfigError(
                f"config preset name {self.name!r} must be lowercase kebab-case"
            )
        if self.enable_all and self.axes:
            raise ConfigError(
                f"config preset {self.name!r} sets enable_all and explicit axes; "
                "pick one"
            )
        if not self.enable_all and not self.axes:
            raise ConfigError(
                f"config preset {self.name!r} enables nothing (no axes, "
                "enable_all off)"
            )
        names = [axis.name for axis in self.axes]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise ConfigError(
                f"config preset {self.name!r} has duplicate axes {duplicates}"
            )

    # ------------------------------------------------------------ resolution
    def options(self) -> frozenset[str]:
        """Every option the preset turns on (union over axes)."""
        enabled: set[str] = set()
        for axis in self.axes:
            enabled.update(axis.options)
        return frozenset(enabled)

    def kernel_config(self) -> KernelConfig:
        """The preset resolved to the kernel layer's config predicate."""
        return KernelConfig(
            name=self.name,
            enable_all=self.enable_all,
            enabled=self.options(),
            exclude_hardware_gated=self.exclude_hardware_gated,
            exclude_debug=self.exclude_debug,
        )

    def as_payload(self) -> dict:
        """The canonical-JSON projection the digest covers."""
        return {
            "name": self.name,
            "axes": [axis.as_payload() for axis in self.axes],
            "enable_all": self.enable_all,
            "exclude_hardware_gated": self.exclude_hardware_gated,
            "exclude_debug": self.exclude_debug,
            "include_guards": self.include_guards,
            "include_requires": self.include_requires,
        }

    def digest(self) -> str:
        """Canonical SHA-256 config digest (PYTHONHASHSEED-stable)."""
        return _digest_of(self.as_payload())


def kernel_config_digest(*configs: KernelConfig) -> str:
    """Canonical digest of one or more raw :class:`KernelConfig` predicates.

    The store-key chokepoint for configurations that did not come from a
    preset (``scan_config()`` / ``fuzz_config()`` derived from a codebase):
    sorted options, explicit flags, schema-tagged — the same construction as
    :meth:`ConfigPreset.digest`.
    """
    payload = [
        {
            "name": config.name,
            "enable_all": config.enable_all,
            "enabled": sorted(config.enabled),
            "exclude_hardware_gated": config.exclude_hardware_gated,
            "exclude_debug": config.exclude_debug,
        }
        for config in configs
    ]
    return _digest_of(payload)


__all__ = [
    "KCONFIG_SCHEMA",
    "ConfigAxis",
    "ConfigPreset",
    "kernel_config_digest",
]
