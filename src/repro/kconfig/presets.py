"""The shipped config presets: corpora-as-configurations.

Each preset selects one slice of the synthetic kernel's driver/socket
population by its ``CONFIG_*`` guards, turning the single fixed corpus the
paper evaluates into a config axis the differential-campaign layer
(:mod:`repro.diffcampaign`) can sweep.  Presets reference only options that
exist at both kernel scales (Table 5 / Table 4 / Table 6 handlers), so a
preset means the same surface on the small test kernel and the full
scan-scale kernel.

The registry is the lookup chokepoint: ``config_preset(name)`` resolves a
CLI ``--configs`` entry to its validated preset, raising a typed
:class:`~repro.errors.ConfigError` naming the valid choices on a miss.
"""

from __future__ import annotations

from .axes import ConfigAxis, ConfigPreset

#: Table 5 character-device options (the paper's driver evaluation set).
CHAR_DEV_OPTIONS = (
    "CONFIG_ISDN_CAPI", "CONFIG_SND", "CONFIG_HPET", "CONFIG_I2C_CHARDEV",
    "CONFIG_KVM", "CONFIG_MISDN", "CONFIG_NVRAM", "CONFIG_PPP",
    "CONFIG_UNIX98_PTYS", "CONFIG_CRYPTO_DEV_QAT", "CONFIG_RFKILL",
    "CONFIG_RTC_CLASS", "CONFIG_HIBERNATION", "CONFIG_SND_TIMER",
    "CONFIG_VHOST_NET", "CONFIG_VHOST_VSOCK", "CONFIG_VMWARE_VMCI",
    "CONFIG_VSOCKETS",
)

#: Filesystem / block ioctl surfaces (Table 5 + Table 4 bug drivers).
FS_IOCTL_OPTIONS = (
    "CONFIG_BTRFS_FS", "CONFIG_FUSE_FS", "CONFIG_BLK_DEV_LOOP",
    "CONFIG_BLK_DEV_NBD", "CONFIG_CHR_DEV_SG", "CONFIG_BLK_DEV_SR",
    "CONFIG_BLK_DEV_DM", "CONFIG_MTD_UBI",
)

#: Socket families (Table 6) — the netlink-style network corpus.
NET_FAMILY_OPTIONS = (
    "CONFIG_CAIF", "CONFIG_L2TP", "CONFIG_LLC2", "CONFIG_MPTCP",
    "CONFIG_PACKET", "CONFIG_PHONET", "CONFIG_PPPOL2TP", "CONFIG_RDS",
    "CONFIG_BT_RFCOMM", "CONFIG_BT_SCO",
)

#: USB-style hotplug device drivers (Table 4 / Table 5 media + gadget set).
USB_HOTPLUG_OPTIONS = (
    "CONFIG_USB_MON", "CONFIG_USB_RAW_GADGET", "CONFIG_USB_VIDEO_CLASS",
    "CONFIG_INPUT_UINPUT", "CONFIG_UDMABUF", "CONFIG_CEC_CORE",
    "CONFIG_DVB_CORE", "CONFIG_PTP_1588_CLOCK",
)


def _axis(name: str, options: tuple[str, ...], description: str) -> ConfigAxis:
    return ConfigAxis(name=name, options=options, description=description)


#: Name → validated preset.  Construction happens at import, so an invalid
#: shipped preset fails the first import, not the first campaign.
CONFIG_PRESETS: dict[str, ConfigPreset] = {
    preset.name: preset
    for preset in (
        ConfigPreset(
            name="baseline",
            enable_all=True,
            description="everything bootable: allyes minus hardware/debug gating",
        ),
        ConfigPreset(
            name="syzbot",
            axes=(
                _axis("char-devices", CHAR_DEV_OPTIONS, "Table 5 character devices"),
                _axis("fs-ioctls", FS_IOCTL_OPTIONS, "filesystem/block ioctl surfaces"),
                _axis("net-families", NET_FAMILY_OPTIONS, "Table 6 socket families"),
                _axis("usb-hotplug", USB_HOTPLUG_OPTIONS, "USB-style hotplug devices"),
            ),
            description="the syzbot-like bootable fuzzing set (all named corpora)",
        ),
        ConfigPreset(
            name="netlink",
            axes=(
                _axis("net-families", NET_FAMILY_OPTIONS, "Table 6 socket families"),
            ),
            description="socket families only: the network-corpus cell",
        ),
        ConfigPreset(
            name="fs-ioctl",
            axes=(
                _axis("fs-ioctls", FS_IOCTL_OPTIONS, "filesystem/block ioctl surfaces"),
            ),
            description="filesystem and block-device ioctl surfaces only",
        ),
        ConfigPreset(
            name="usb-hotplug",
            axes=(
                _axis("usb-hotplug", USB_HOTPLUG_OPTIONS, "USB-style hotplug devices"),
            ),
            description="USB-style hotplug drivers only",
        ),
    )
}


def config_preset(name: str) -> ConfigPreset:
    """Resolve a preset by name, with a typed error naming valid choices."""
    from ..errors import ConfigError

    preset = CONFIG_PRESETS.get(name)
    if preset is None:
        raise ConfigError(
            f"unknown config preset {name!r}; choose from {', '.join(sorted(CONFIG_PRESETS))}"
        )
    return preset


__all__ = [
    "CHAR_DEV_OPTIONS",
    "CONFIG_PRESETS",
    "FS_IOCTL_OPTIONS",
    "NET_FAMILY_OPTIONS",
    "USB_HOTPLUG_OPTIONS",
    "config_preset",
]
