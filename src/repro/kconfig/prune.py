"""Config-pruned coverage spaces.

A coverage bitmap is only meaningful relative to the label space it was
built against, and the label space depends on the kernel *configuration*:
a driver that is not loaded contributes no reachable blocks.  Before this
module, every campaign shared the kernel's full space, so bitmaps produced
under different configs could be unioned without complaint — silently
counting blocks one of the two configs cannot reach.

:func:`prune_coverage_space` derives the per-config space: the same
enumeration as :func:`repro.kernel.coverage.enumerate_kernel_labels`
(construction order, determinism rule 6), restricted to handlers the config
loads, with the preset's ``include_guards`` / ``include_requires`` flags
optionally dropping the guard-bonus / requires-missing block families.
Because :class:`~repro.kernel.coverage.CoverageSpace` digests its label
list, two configs that load different surfaces get different space digests
— and :class:`~repro.errors.CoverageSpaceMismatch` fires on any attempt to
mix their bitmaps.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING

from ..kernel.configs import KernelConfig
from ..kernel.coverage import CoverageSpace, enumerate_kernel_labels
from .axes import ConfigPreset

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..kernel.codebase import KernelCodebase

#: kernel → {cache key → pruned space}.  Weak on the kernel so throwaway
#: test codebases do not pin their spaces; the inner dict is tiny (one entry
#: per distinct config seen against that kernel).
_PRUNED_SPACES: "weakref.WeakKeyDictionary[KernelCodebase, dict]" = (
    weakref.WeakKeyDictionary()
)


def _resolve(config: "ConfigPreset | KernelConfig") -> tuple[KernelConfig, bool, bool]:
    if isinstance(config, ConfigPreset):
        return config.kernel_config(), config.include_guards, config.include_requires
    if isinstance(config, KernelConfig):
        return config, True, True
    raise TypeError(
        f"prune_coverage_space expects a ConfigPreset or KernelConfig, "
        f"got {type(config).__name__}"
    )


def _cache_key(config: KernelConfig, include_guards: bool, include_requires: bool):
    return (
        config.name,
        config.enable_all,
        tuple(sorted(config.enabled)),
        config.exclude_hardware_gated,
        config.exclude_debug,
        include_guards,
        include_requires,
    )


def prune_coverage_space(
    kernel: "KernelCodebase", config: "ConfigPreset | KernelConfig"
) -> CoverageSpace:
    """The coverage space of ``kernel`` as seen under ``config``.

    Labels keep their relative construction order (rule 6), so the same
    (kernel, config) pair yields an identical space — same indices, same
    digest — in every process.  An ``enable_all`` config with no exclusions
    prunes nothing: its space digest equals ``kernel.coverage_space()``'s.
    """
    kernel_config, include_guards, include_requires = _resolve(config)
    cache = _PRUNED_SPACES.setdefault(kernel, {})
    key = _cache_key(kernel_config, include_guards, include_requires)
    space = cache.get(key)
    if space is None:
        space = CoverageSpace(
            enumerate_kernel_labels(
                kernel,
                kernel_config,
                include_guards=include_guards,
                include_requires=include_requires,
            )
        )
        cache[key] = space
    return space


__all__ = ["prune_coverage_space"]
