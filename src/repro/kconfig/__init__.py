"""Typed kernel-config model: axes, presets, digests, pruned coverage.

The layer between the kernel substrate's thin
:class:`~repro.kernel.configs.KernelConfig` predicate and everything that
needs configurations as first-class values — the differential-campaign
orchestration in :mod:`repro.diffcampaign`, the generator's store profile,
and the per-config coverage spaces that keep bitmaps from different configs
from silently mixing.
"""

from .axes import KCONFIG_SCHEMA, ConfigAxis, ConfigPreset, kernel_config_digest
from .presets import (
    CHAR_DEV_OPTIONS,
    CONFIG_PRESETS,
    FS_IOCTL_OPTIONS,
    NET_FAMILY_OPTIONS,
    USB_HOTPLUG_OPTIONS,
    config_preset,
)
from .prune import prune_coverage_space

__all__ = [
    "KCONFIG_SCHEMA",
    "ConfigAxis",
    "ConfigPreset",
    "kernel_config_digest",
    "CHAR_DEV_OPTIONS",
    "CONFIG_PRESETS",
    "FS_IOCTL_OPTIONS",
    "NET_FAMILY_OPTIONS",
    "USB_HOTPLUG_OPTIONS",
    "config_preset",
    "prune_coverage_space",
]
