"""Frozen lockfiles: pinning an experiment to exact store artifacts.

A lockfile is a JSON snapshot of the store manifest — every canonical key
mapped to the kind and blob digest it resolved to when the recording run
finished — plus a whole-file checksum.  A frozen run resolves loads through
the lockfile's pinned digests instead of the live manifest, so later writes
to the store (new recording runs, other tenants) cannot change what a
frozen rerun sees: same lockfile, same bytes, forever.

The checksum covers the canonical JSON of the entry table, so a hand-edited
or truncated lockfile fails loudly as :class:`~repro.errors.StoreCorruption`
rather than silently pinning different artifacts.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from ..errors import StoreCorruption

LOCKFILE_VERSION = 1


def _entries_checksum(entries: dict[str, dict]) -> str:
    canonical = json.dumps(entries, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class FrozenLock:
    """An immutable canonical-key -> (kind, digest) pinning table."""

    def __init__(self, entries: dict[str, tuple[str, str]]):
        self._entries = dict(entries)

    @classmethod
    def freeze(cls, store) -> "FrozenLock":
        """Pin the store's current manifest (workers' entries included)."""
        return cls(store.snapshot())

    def digest_for(self, canonical: str) -> str | None:
        entry = self._entries.get(canonical)
        return entry[1] if entry is not None else None

    def kind_for(self, canonical: str) -> str | None:
        entry = self._entries.get(canonical)
        return entry[0] if entry is not None else None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, canonical: str) -> bool:
        return canonical in self._entries

    def kind_counts(self) -> dict[str, int]:
        """Pinned-artifact counts per kind (for freeze-time reporting)."""
        counts: dict[str, int] = {}
        for kind, _ in self._entries.values():
            counts[kind] = counts.get(kind, 0) + 1
        return dict(sorted(counts.items()))

    # -------------------------------------------------------------------- io
    def write(self, path: "str | os.PathLike") -> None:
        """Write the lockfile atomically (temp file + rename)."""
        path = Path(path)
        entries = {
            canonical: {"kind": kind, "digest": digest}
            for canonical, (kind, digest) in sorted(self._entries.items())
        }
        document = {
            "version": LOCKFILE_VERSION,
            "checksum": _entries_checksum(entries),
            "entries": entries,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".tmp-{path.name}-{os.getpid()}")
        tmp.write_text(json.dumps(document, sort_keys=True, indent=1) + "\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: "str | os.PathLike") -> "FrozenLock":
        path = Path(path)
        try:
            document = json.loads(path.read_text())
            version = document["version"]
            checksum = document["checksum"]
            entries = document["entries"]
        except FileNotFoundError:
            raise
        except (ValueError, KeyError, TypeError) as error:
            raise StoreCorruption(
                f"lockfile {path} is not a valid frozen lock: {error!r}", path=str(path)
            )
        if version != LOCKFILE_VERSION:
            raise StoreCorruption(
                f"lockfile {path} has unsupported version {version!r}", path=str(path)
            )
        if checksum != _entries_checksum(entries):
            raise StoreCorruption(
                f"lockfile {path} failed its checksum (edited or truncated)",
                path=str(path),
            )
        table: dict[str, tuple[str, str]] = {}
        for canonical, entry in entries.items():
            try:
                table[canonical] = (entry["kind"], entry["digest"])
            except (KeyError, TypeError) as error:
                raise StoreCorruption(
                    f"lockfile {path} entry {canonical!r} is malformed: {error!r}",
                    path=str(path),
                    key=canonical,
                )
        return cls(table)


__all__ = ["FrozenLock", "LOCKFILE_VERSION"]
