"""Serialization of artifacts to and from store blobs.

Each kind gets the narrowest stable encoding available: completions and
campaign task outputs are canonical JSON (sorted keys, no whitespace
variance — byte-identical for equal values on every interpreter), extractor
results are plain UTF-8, and everything else (generation sessions, coverage
bitmaps) is pickle at a pinned protocol.  A four-byte magic prefix names the encoding so a blob
reached through the wrong kind fails loudly as :class:`StoreCorruption`
instead of being misdecoded.

Pickle is not canonical across interpreter runs (set iteration order leaks
``PYTHONHASHSEED`` into the byte stream), and the store does not pretend it
is: lookups go canonical key → manifest → digest → blob, so an artifact is
only ever compared against the digest it was *written* under, never against
a re-serialization.  Within one run, ``encode(decode(encode(x)))`` is
byte-stable for every kind, which is what the round-trip tests pin.
"""

from __future__ import annotations

import json
import pickle

from ..errors import StoreCorruption
from ..llm import Completion

#: Pinned so two Python versions with different default protocols still
#: produce mutually readable blobs.
PICKLE_PROTOCOL = 4

_MAGIC_JSON = b"RSJ1\n"
_MAGIC_TEXT = b"RST1\n"
_MAGIC_PICKLE = b"RSP1\n"


def encode_artifact(kind: str, value) -> bytes:
    """Serialize ``value`` for storage under an artifact of ``kind``."""
    if kind == "llm":
        if not isinstance(value, Completion):
            raise TypeError(f"llm artifacts store Completions, got {type(value).__name__}")
        body = json.dumps(
            {"model": value.model, "text": value.text},
            sort_keys=True,
            ensure_ascii=False,
            separators=(",", ":"),
        )
        return _MAGIC_JSON + body.encode("utf-8")
    if kind == "extract":
        if not isinstance(value, str):
            raise TypeError(f"extract artifacts store str, got {type(value).__name__}")
        return _MAGIC_TEXT + value.encode("utf-8")
    if kind in ("campaign", "diff-report"):
        if not isinstance(value, dict):
            raise TypeError(f"{kind} artifacts store dicts, got {type(value).__name__}")
        body = json.dumps(value, sort_keys=True, ensure_ascii=False, separators=(",", ":"))
        return _MAGIC_JSON + body.encode("utf-8")
    return _MAGIC_PICKLE + pickle.dumps(value, protocol=PICKLE_PROTOCOL)


def decode_artifact(kind: str, payload: bytes, *, key: str | None = None):
    """Deserialize a verified blob back into its artifact value."""
    expected = (
        _MAGIC_JSON
        if kind in ("llm", "campaign", "diff-report")
        else _MAGIC_TEXT if kind == "extract" else _MAGIC_PICKLE
    )
    if not payload.startswith(expected):
        raise StoreCorruption(
            f"artifact of kind {kind!r} has wrong encoding magic "
            f"{payload[:5]!r} (expected {expected!r})",
            key=key,
        )
    body = payload[len(expected):]
    if kind == "llm":
        try:
            fields = json.loads(body.decode("utf-8"))
            return Completion(text=fields["text"], model=fields["model"])
        except (ValueError, KeyError, UnicodeDecodeError) as error:
            raise StoreCorruption(f"llm artifact body is not valid JSON: {error}", key=key)
    if kind == "extract":
        try:
            return body.decode("utf-8")
        except UnicodeDecodeError as error:
            raise StoreCorruption(f"extract artifact body is not UTF-8: {error}", key=key)
    if kind in ("campaign", "diff-report"):
        try:
            value = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise StoreCorruption(f"{kind} artifact body is not valid JSON: {error}", key=key)
        if not isinstance(value, dict):
            raise StoreCorruption(
                f"{kind} artifact body is {type(value).__name__}, expected object", key=key
            )
        return value
    try:
        return pickle.loads(body)
    except Exception as error:  # pickle raises a zoo of types on bad input
        raise StoreCorruption(f"pickled artifact failed to load: {error!r}", key=key)


__all__ = ["PICKLE_PROTOCOL", "encode_artifact", "decode_artifact"]
