"""The store's integration surface: what an engine actually talks to.

:class:`StoreBinding` pairs one :class:`~repro.store.ArtifactStore` with
per-kind hit/miss statistics and an optional
:class:`~repro.store.FrozenLock`.  Bindings are cheap — the job service
hands each job engine a fresh binding over the one shared store, so hit
rates in a :class:`~repro.service.jobs.JobResult` are attributable per job
while the artifacts themselves are shared.

The engine consults the binding *inside* its single-flight memo computes
(hydrate-on-demand): a memo hit never touches the disk, a memo miss checks
the store before computing, and fresh computations are written through.
That ordering is what keeps warm starts invisible (determinism rule 9):
hydration changes where a value comes from, never what it is.

**Frozen semantics.**  With a lock installed, loads resolve through the
lock's pinned digests (the live manifest is bypassed), saves are no-ops,
and a missing artifact of a *strict* kind — one that embodies backend
traffic — raises :class:`~repro.errors.FrozenStoreMiss` instead of falling
through to computation.  ``extract`` is deliberately non-strict: extractor
lookups are pure local functions of the kernel substrate, so recomputing
one costs no backend traffic and cannot change bytes.

:class:`FrozenBackend` is the belt to that suspenders: a wrapper installed
as the analyst during frozen runs whose ``complete_batch`` always raises.
If any code path slips past the binding (a bug, a new unstored call site),
the run fails loudly instead of silently issuing LLM traffic.
"""

from __future__ import annotations

import threading
from typing import Sequence

from ..errors import FrozenStoreMiss
from ..llm import Completion, LLMBackend, LLMRequest, Prompt
from .codec import decode_artifact
from .keys import StoreKey, extract_key, llm_key, session_key
from .lockfile import FrozenLock
from .store import ArtifactStore

#: Kinds whose artifacts embody backend round-trips: a frozen run must
#: never recompute them, because recomputation *is* LLM traffic.
FROZEN_STRICT_KINDS = frozenset({"llm", "session"})

#: Stats rows always present, in reporting order, so profiles line up
#: across runs whatever kinds actually saw traffic.
_REPORTED_KINDS = ("llm", "extract", "session")


class StoreBinding:
    """One consumer's handle on a store: loads, write-through, stats."""

    def __init__(self, store: ArtifactStore, *, frozen: FrozenLock | None = None):
        self.store = store
        self._frozen = frozen
        self._stats_lock = threading.Lock()
        self._hits: dict[str, int] = {}
        self._misses: dict[str, int] = {}

    @property
    def frozen(self) -> bool:
        return self._frozen is not None

    # -------------------------------------------------------------- load/save
    def _count(self, kind: str, *, hit: bool) -> None:
        with self._stats_lock:
            bucket = self._hits if hit else self._misses
            bucket[kind] = bucket.get(kind, 0) + 1

    def load(self, key: StoreKey) -> tuple[bool, object]:
        """``(True, value)`` on a hit, ``(False, None)`` on a clean miss.

        Frozen mode resolves through the lockfile's pinned digest; a pin
        that is absent (or whose blob is gone) for a strict kind raises
        :class:`~repro.errors.FrozenStoreMiss`.
        """
        canonical = key.canonical()
        if self._frozen is not None:
            digest = self._frozen.digest_for(canonical)
            payload = self.store.read_blob(digest) if digest is not None else None
            if payload is None:
                self._count(key.kind, hit=False)
                if key.kind in FROZEN_STRICT_KINDS:
                    raise FrozenStoreMiss(
                        f"frozen run needs {key.kind} artifact {canonical!r} "
                        + (
                            f"but its pinned blob {digest} is missing from the store"
                            if digest is not None
                            else "but the lockfile does not pin it"
                        ),
                        key=canonical,
                        kind=key.kind,
                    )
                return False, None
            self._count(key.kind, hit=True)
            return True, decode_artifact(key.kind, payload, key=canonical)
        payload = self.store.get_bytes(key)
        if payload is None:
            self._count(key.kind, hit=False)
            return False, None
        self._count(key.kind, hit=True)
        return True, decode_artifact(key.kind, payload, key=canonical)

    def save(self, key: StoreKey, value) -> None:
        """Write-through spill; a no-op in frozen mode (the store is pinned)."""
        if self._frozen is not None:
            return
        self.store.save(key, value)

    # ----------------------------------------------------- engine-facing ops
    def complete_batch_through(
        self, backend: LLMBackend, requests: Sequence[LLMRequest]
    ) -> list[Completion]:
        """Serve a batch from the store, forwarding only the misses.

        Hits are decoded from stored completions; the misses are forwarded
        to the backend as **one** ``complete_batch`` call — batch
        granularity (atomic budget reservation, per-batch metering)
        survives hydration — and written through.  Because hits never reach
        the backend, a warm start leaves the backend's
        :class:`~repro.llm.UsageMeter` and any replay occurrence counters
        untouched: hydrated traffic cannot double-count usage.
        """
        results: list[Completion | None] = [None] * len(requests)
        miss_positions: list[int] = []
        miss_keys: list[StoreKey] = []
        for position, request in enumerate(requests):
            key = llm_key(backend, request)
            hit, value = self.load(key)
            if hit:
                results[position] = value
            else:
                miss_positions.append(position)
                miss_keys.append(key)
        if miss_positions:
            completions = backend.complete_batch(
                [requests[position] for position in miss_positions]
            )
            for key, position, completion in zip(miss_keys, miss_positions, completions):
                self.save(key, completion)
                results[position] = completion
        return results

    def extract_through(self, extractor, identifier: str) -> str:
        """Extractor lookup through the store (non-strict under freeze)."""
        key = extract_key(extractor, identifier)
        hit, value = self.load(key)
        if hit:
            return value
        value = extractor.extract_code(identifier)
        self.save(key, value)
        return value

    def session_through(self, generator, flavor: str, mode: str, handler: str, compute):
        """Whole-session memo through the store."""
        key = session_key(generator, flavor=flavor, mode=mode, handler=handler)
        hit, value = self.load(key)
        if hit:
            return value
        value = compute()
        self.save(key, value)
        return value

    # -------------------------------------------------------------- reporting
    def stats(self) -> dict[str, dict]:
        """Per-kind hit rates, shaped like ``CacheStats.as_dict()`` rows.

        Keyed ``store:<kind>`` so they merge into
        ``ExecutionEngine.cache_stats()`` and print through the existing
        ``--profile`` renderers unchanged.
        """
        with self._stats_lock:
            hits = dict(self._hits)
            misses = dict(self._misses)
        extra = sorted((set(hits) | set(misses)) - set(_REPORTED_KINDS))
        report: dict[str, dict] = {}
        for kind in list(_REPORTED_KINDS) + extra:
            kind_hits = hits.get(kind, 0)
            kind_misses = misses.get(kind, 0)
            calls = kind_hits + kind_misses
            report[f"store:{kind}"] = {
                "name": f"store:{kind}",
                "hits": kind_hits,
                "misses": kind_misses,
                "errors": 0,
                "hit_rate": round(kind_hits / calls, 4) if calls else 0.0,
            }
        return report


class FrozenBackend(LLMBackend):
    """An analyst that refuses to analyze: every batch is a typed failure.

    Installed as the analysis backend during ``--frozen`` runs.  Correctly
    frozen pipelines never reach it (every completion hydrates from the
    lockfile above the backend), so any call proves live traffic leaked —
    exactly what the CI smoke job exists to catch.  ``store_profile``
    delegates to the wrapped analyst so frozen runs derive the *recording*
    run's canonical keys.
    """

    def __init__(self, inner: LLMBackend):
        super().__init__(model=f"frozen({inner.model})")
        self.inner = inner

    def store_profile(self) -> str:
        return self.inner.store_profile()

    def complete_batch(self, requests: "Sequence[LLMRequest | Prompt]") -> list[Completion]:
        normalized = [LLMRequest.of(item) for item in requests]
        detail = ""
        if normalized:
            first = normalized[0].prompt
            detail = f"; first prompt kind={first.kind!r} subject={first.subject!r}"
        raise FrozenStoreMiss(
            f"frozen run issued live backend traffic: {len(normalized)} request(s) "
            f"reached {self.model!r}{detail}",
            kind="llm",
        )


__all__ = ["StoreBinding", "FrozenBackend", "FROZEN_STRICT_KINDS"]
