"""Persistent content-addressed artifact store with frozen-lock replay.

The disk-backed complement to the engine's in-memory memo caches: LLM
completions, extractor lookups and whole generation sessions are spilled to
(and hydrated from) a verified content-addressed store, so warm service
restarts and repeat experiment runs skip recomputation — and a frozen
lockfile pins a run to exact artifacts for byte-reproducible, zero-traffic
replay.  See DESIGN.md ("Artifact store") for the key scheme, manifest
format and determinism rule 9.

Layering: this package sits between :mod:`repro.llm` (whose types it
serializes) and :mod:`repro.engine` (which consults it); it never imports
the engine.
"""

from .binding import FROZEN_STRICT_KINDS, FrozenBackend, StoreBinding
from .codec import decode_artifact, encode_artifact
from .keys import (
    STORE_SCHEMA,
    StoreKey,
    backend_profile,
    extract_key,
    llm_key,
    prompt_digest,
    session_key,
)
from .lockfile import LOCKFILE_VERSION, FrozenLock
from .store import ArtifactStore

__all__ = [
    "ArtifactStore",
    "StoreBinding",
    "FrozenBackend",
    "FrozenLock",
    "StoreKey",
    "STORE_SCHEMA",
    "LOCKFILE_VERSION",
    "FROZEN_STRICT_KINDS",
    "backend_profile",
    "prompt_digest",
    "llm_key",
    "extract_key",
    "session_key",
    "encode_artifact",
    "decode_artifact",
]
