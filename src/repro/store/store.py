"""The disk-backed content-addressed artifact store.

Layout under the store root::

    objects/<sha256-hex>   one blob per distinct content, named by its digest
    manifest.jsonl         append-only canonical-key -> blob-digest mapping
    .lock                  advisory inter-process lock file (flock)

**Blobs** are immutable and content-addressed: the file name *is* the
SHA-256 of the bytes, writes go to a unique temp file and ``os.replace``
into place, and every read re-hashes the content against the name.  Two
writers racing on the same content are therefore idempotent — whichever
rename lands last installs identical bytes — and a corrupted blob can never
be served (the digest check raises :class:`~repro.errors.StoreCorruption`).

**The manifest** is append-only JSONL; each line carries a short check
digest over its own (key, digest) pair so hand-edits and torn writes are
detected line-by-line.  Later lines win, which is what makes concurrent
appends and re-saves safe without ever rewriting the file in place;
:meth:`ArtifactStore.compact` rewrites it atomically when asked.  Readers
refresh incrementally from their last byte offset (restarting from zero if
the file shrank under compaction).

**Locking** is two-level: a ``threading.RLock`` orders threads within the
process, and an advisory ``flock`` on ``.lock`` orders processes, held
around every manifest read/append.  Blob writes need no lock at all —
content addressing makes them race-free — but they happen before the
manifest append so a published manifest line never points at a blob that is
still being written.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path

try:
    import fcntl
except ImportError:  # non-POSIX: fall back to thread-level locking only
    fcntl = None

from ..errors import StoreCorruption, StoreLockTimeout
from .codec import decode_artifact, encode_artifact
from .keys import StoreKey

_DIGEST_HEX = 64


def _line_check(canonical: str, digest: str) -> str:
    """Per-line tamper check over the fields that make the line meaningful."""
    return hashlib.sha256(f"{canonical}\x00{digest}".encode("utf-8")).hexdigest()[:16]


class ArtifactStore:
    """A persistent, verified, concurrently-writable artifact store."""

    MANIFEST_NAME = "manifest.jsonl"

    #: Default bound on how long one manifest operation may wait for the
    #: inter-process flock before raising :class:`StoreLockTimeout`.  Long
    #: enough for any healthy writer; finite so a wedged process holding the
    #: lock surfaces as a diagnosable error instead of a silent hang.
    DEFAULT_LOCK_TIMEOUT = 30.0

    def __init__(self, root: "str | os.PathLike", *, lock_timeout: float | None = None):
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self.manifest_path = self.root / self.MANIFEST_NAME
        self._lock_path = self.root / ".lock"
        self.lock_timeout = (
            self.DEFAULT_LOCK_TIMEOUT if lock_timeout is None else float(lock_timeout)
        )
        if self.lock_timeout <= 0:
            raise ValueError(f"lock_timeout must be positive, got {self.lock_timeout}")
        self._mutex = threading.RLock()
        #: canonical key -> (kind, blob digest); the last manifest line wins.
        self._entries: dict[str, tuple[str, str]] = {}
        #: Byte offset up to which the manifest has been absorbed.
        self._offset = 0
        self._tmp_counter = itertools.count()
        with self._locked():
            self._refresh_locked()

    # ---------------------------------------------------------------- locking
    @contextmanager
    def _locked(self):
        """Thread lock + advisory inter-process flock around manifest access.

        The flock wait is bounded: acquisition is retried non-blocking until
        :attr:`lock_timeout` elapses, then :class:`StoreLockTimeout` is
        raised.  The re-entrant thread mutex is held first, so within one
        process only a single thread ever contends for the file lock.
        """
        with self._mutex:
            handle = os.open(self._lock_path, os.O_CREAT | os.O_RDWR, 0o644)
            try:
                if fcntl is not None:
                    self._flock_bounded(handle)
                yield
            finally:
                if fcntl is not None:
                    fcntl.flock(handle, fcntl.LOCK_UN)
                os.close(handle)

    def _flock_bounded(self, handle: int) -> None:
        """Acquire the exclusive flock or raise :class:`StoreLockTimeout`."""
        deadline = time.monotonic() + self.lock_timeout
        delay = 0.002
        while True:
            try:
                fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
                return
            except OSError:
                if time.monotonic() >= deadline:
                    raise StoreLockTimeout(
                        f"store lock {self._lock_path} still held after "
                        f"{self.lock_timeout:g}s; another process may be wedged",
                        path=str(self._lock_path),
                        timeout=self.lock_timeout,
                    )
                time.sleep(min(delay, max(0.0, deadline - time.monotonic())))
                delay = min(delay * 2, 0.05)

    # --------------------------------------------------------------- manifest
    def _refresh_locked(self) -> None:
        """Absorb manifest lines appended since the last refresh.

        Must hold :meth:`_locked`.  A shrunken file (another process ran
        :meth:`compact`) resets the reader to byte zero; anything that fails
        to parse or fails its check digest raises
        :class:`~repro.errors.StoreCorruption` — a half-understood manifest
        must never serve lookups.
        """
        if not self.manifest_path.exists():
            self._entries.clear()
            self._offset = 0
            return
        size = self.manifest_path.stat().st_size
        if size < self._offset:
            self._entries.clear()
            self._offset = 0
        if size == self._offset:
            return
        with self.manifest_path.open("rb") as stream:
            stream.seek(self._offset)
            data = stream.read()
            self._offset = stream.tell()
        for raw in data.splitlines():
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                canonical = record["key"]
                kind = record["kind"]
                digest = record["digest"]
                check = record["check"]
            except (ValueError, KeyError, TypeError):
                raise StoreCorruption(
                    f"unparseable manifest line in {self.manifest_path}: {line[:120]!r}",
                    path=str(self.manifest_path),
                )
            if (
                not isinstance(digest, str)
                or len(digest) != _DIGEST_HEX
                or check != _line_check(canonical, digest)
            ):
                raise StoreCorruption(
                    f"manifest line failed verification for key {canonical!r} "
                    f"in {self.manifest_path}",
                    path=str(self.manifest_path),
                    key=canonical if isinstance(canonical, str) else None,
                )
            self._entries[canonical] = (kind, digest)

    def _append_locked(self, canonical: str, kind: str, digest: str) -> None:
        line = (
            json.dumps(
                {
                    "key": canonical,
                    "kind": kind,
                    "digest": digest,
                    "check": _line_check(canonical, digest),
                },
                sort_keys=True,
                separators=(",", ":"),
            )
            + "\n"
        ).encode("utf-8")
        with self.manifest_path.open("ab") as stream:
            stream.write(line)
            stream.flush()
            os.fsync(stream.fileno())
        self._offset += len(line)
        self._entries[canonical] = (kind, digest)

    def _rewrite_locked(self, entries: dict[str, tuple[str, str]]) -> None:
        """Atomically replace the manifest with one line per surviving entry."""
        tmp = self.manifest_path.with_name(self._tmp_name("manifest"))
        with tmp.open("wb") as stream:
            for canonical, (kind, digest) in sorted(entries.items()):
                stream.write(
                    (
                        json.dumps(
                            {
                                "key": canonical,
                                "kind": kind,
                                "digest": digest,
                                "check": _line_check(canonical, digest),
                            },
                            sort_keys=True,
                            separators=(",", ":"),
                        )
                        + "\n"
                    ).encode("utf-8")
                )
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, self.manifest_path)
        self._entries = dict(entries)
        self._offset = self.manifest_path.stat().st_size

    # ------------------------------------------------------------------ blobs
    def _tmp_name(self, stem: str) -> str:
        return f".tmp-{stem}-{os.getpid()}-{next(self._tmp_counter)}"

    def blob_path(self, digest: str) -> Path:
        return self.objects_dir / digest

    def _write_blob(self, payload: bytes) -> str:
        digest = hashlib.sha256(payload).hexdigest()
        path = self.blob_path(digest)
        if path.exists():
            return digest
        tmp = self.objects_dir / self._tmp_name(digest[:12])
        with tmp.open("wb") as stream:
            stream.write(payload)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, path)
        return digest

    def read_blob(self, digest: str) -> bytes | None:
        """Verified blob read: the bytes, or ``None`` when the blob is absent.

        Content that no longer hashes to its name raises
        :class:`~repro.errors.StoreCorruption` — absence and corruption are
        different failures (frozen mode maps the former to
        :class:`~repro.errors.FrozenStoreMiss`).
        """
        path = self.blob_path(digest)
        try:
            payload = path.read_bytes()
        except FileNotFoundError:
            return None
        actual = hashlib.sha256(payload).hexdigest()
        if actual != digest:
            raise StoreCorruption(
                f"blob {digest} content hashes to {actual} "
                f"({len(payload)} bytes at {path})",
                path=str(path),
            )
        return payload

    # -------------------------------------------------------------- raw bytes
    def put_bytes(self, key: StoreKey, payload: bytes) -> str:
        """Store ``payload`` under ``key``; returns the blob digest.

        The blob lands before the manifest line is published, so a reader
        that sees the entry can always resolve it.  Re-saving identical
        content is a no-op on the object tree (same digest, same file) and
        appends a manifest line only when the mapping actually changed.
        """
        canonical = key.canonical()
        digest = self._write_blob(payload)
        with self._locked():
            self._refresh_locked()
            if self._entries.get(canonical) != (key.kind, digest):
                self._append_locked(canonical, key.kind, digest)
        return digest

    def get_bytes(self, key: StoreKey) -> bytes | None:
        """Verified bytes for ``key``, or ``None`` on a clean miss."""
        canonical = key.canonical()
        with self._locked():
            self._refresh_locked()
            entry = self._entries.get(canonical)
        if entry is None:
            return None
        _, digest = entry
        payload = self.read_blob(digest)
        if payload is None:
            raise StoreCorruption(
                f"manifest entry for {canonical!r} names missing blob {digest}",
                path=str(self.blob_path(digest)),
                key=canonical,
            )
        return payload

    # -------------------------------------------------------------- artifacts
    def save(self, key: StoreKey, value) -> str:
        """Encode and store one artifact; returns the blob digest."""
        return self.put_bytes(key, encode_artifact(key.kind, value))

    def load(self, key: StoreKey):
        """Decode one artifact; raises ``KeyError`` on a clean miss."""
        payload = self.get_bytes(key)
        if payload is None:
            raise KeyError(key.canonical())
        return decode_artifact(key.kind, payload, key=key.canonical())

    def __contains__(self, key: StoreKey) -> bool:
        canonical = key.canonical()
        with self._locked():
            self._refresh_locked()
            return canonical in self._entries

    # ------------------------------------------------------------ maintenance
    def snapshot(self) -> dict[str, tuple[str, str]]:
        """A point-in-time copy of the manifest: key -> (kind, digest).

        The raw material of a frozen lockfile — taken under the lock, after
        absorbing every line other processes have appended, so a freeze at
        the end of a multi-process run covers the workers' artifacts too.
        """
        with self._locked():
            self._refresh_locked()
            return dict(self._entries)

    def evict(self, *, kinds: "tuple[str, ...] | None" = None,
              keys: "tuple[str, ...] | None" = None) -> int:
        """Drop entries by kind and/or canonical key; returns how many.

        Rewrites the manifest atomically and deletes blobs no surviving
        entry references.  Maintenance only — must not run concurrently
        with writers in *other* processes (their incremental readers would
        splice stale offsets into the rewritten file).
        """
        kind_set = set(kinds or ())
        key_set = set(keys or ())
        with self._locked():
            self._refresh_locked()
            survivors = {
                canonical: entry
                for canonical, entry in self._entries.items()
                if entry[0] not in kind_set and canonical not in key_set
            }
            dropped = len(self._entries) - len(survivors)
            if dropped:
                self._rewrite_locked(survivors)
                referenced = {digest for _, digest in survivors.values()}
                for blob in self.objects_dir.iterdir():
                    if blob.name not in referenced and not blob.name.startswith(".tmp-"):
                        blob.unlink(missing_ok=True)
        return dropped

    def compact(self) -> None:
        """Rewrite the manifest last-wins and garbage-collect orphan blobs."""
        with self._locked():
            self._refresh_locked()
            self._rewrite_locked(dict(self._entries))
            referenced = {digest for _, digest in self._entries.values()}
            for blob in self.objects_dir.iterdir():
                if blob.name not in referenced and not blob.name.startswith(".tmp-"):
                    blob.unlink(missing_ok=True)

    def verify(self) -> int:
        """Re-hash every referenced blob; returns the entry count.

        Raises :class:`~repro.errors.StoreCorruption` at the first entry
        whose blob is missing or whose content fails its digest.
        """
        entries = self.snapshot()
        for canonical, (_, digest) in sorted(entries.items()):
            if self.read_blob(digest) is None:
                raise StoreCorruption(
                    f"manifest entry for {canonical!r} names missing blob {digest}",
                    path=str(self.blob_path(digest)),
                    key=canonical,
                )
        return len(entries)

    def __len__(self) -> int:
        with self._locked():
            self._refresh_locked()
            return len(self._entries)

    # ---------------------------------------------------------------- pickling
    # A store handle travels into process-pool workers by path: the worker's
    # copy re-reads the shared on-disk state, and writes through the same
    # flock discipline as the parent.
    def __getstate__(self) -> dict:
        return {"root": str(self.root), "lock_timeout": self.lock_timeout}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["root"], lock_timeout=state.get("lock_timeout"))


__all__ = ["ArtifactStore"]
