"""§5.2.3 ablation — iterative multi-stage prompting vs. all-in-one prompting."""

from __future__ import annotations

from ..fuzzer import average_coverage, run_repeated_campaigns
from ..kernel import TABLE5_DRIVER_NAMES
from .context import EvaluationContext
from .reporting import TableResult


def run_ablation_iterative(ctx: EvaluationContext, *, drivers: tuple[str, ...] | None = None) -> TableResult:
    """Compare the full pipeline against a single all-in-one prompt per handler."""
    config = ctx.config
    names = (drivers or TABLE5_DRIVER_NAMES)[: config.ablation_drivers]
    table = TableResult(
        title="Ablation: iterative multi-stage vs all-in-one prompting",
        headers=["Driver", "Iterative #Sys", "Iterative #Types", "Iterative Cov",
                 "All-in-one #Sys", "All-in-one #Types", "All-in-one Cov"],
    )
    totals = [0, 0, 0.0, 0, 0, 0.0]
    for name in names:
        handler = ctx.kernel.record_for_name(name).handler_name
        iterative = ctx.kernelgpt.generate_for_handler(handler)
        all_in_one = ctx.kernelgpt.generate_all_in_one(handler)
        row = [name]
        for offset, result in ((0, iterative), (3, all_in_one)):
            coverage = 0.0
            if result.valid and len(result.suite):
                campaigns = run_repeated_campaigns(
                    ctx.kernel, result.suite,
                    repetitions=1,
                    budget_programs=config.per_driver_budget,
                    base_seed=config.seed,
                )
                coverage = average_coverage(campaigns)
            row.extend([result.syscall_count, result.type_count, round(coverage)])
            totals[offset] += result.syscall_count
            totals[offset + 1] += result.type_count
            totals[offset + 2] += coverage
        table.add_row(*row)
    table.add_row("Total", totals[0], totals[1], round(totals[2]), totals[3], totals[4], round(totals[5]))
    if totals[3]:
        table.add_note(
            f"iterative / all-in-one ratios: syscalls {totals[0] / max(1, totals[3]):.2f}x, "
            f"types {totals[1] / max(1, totals[4]):.2f}x, coverage {totals[2] / max(1.0, totals[5]):.2f}x "
            "(paper: 1.28x syscalls, 2.37x types, 1.39x coverage)"
        )
    return table


__all__ = ["run_ablation_iterative"]
