"""§5.2.3 ablation — iterative multi-stage prompting vs. all-in-one prompting."""

from __future__ import annotations

from ..core import GenerationTask
from ..errors import GenerationError
from ..fuzzer import average_coverage, run_repeated_campaigns
from ..kernel import TABLE5_DRIVER_NAMES
from .context import EvaluationContext
from .reporting import TableResult


def run_ablation_iterative(ctx: EvaluationContext, *, drivers: tuple[str, ...] | None = None) -> TableResult:
    """Compare the full pipeline against a single all-in-one prompt per handler."""
    config = ctx.config
    names = (drivers or TABLE5_DRIVER_NAMES)[: config.ablation_drivers]
    table = TableResult(
        title="Ablation: iterative multi-stage vs all-in-one prompting",
        headers=["Driver", "Iterative #Sys", "Iterative #Types", "Iterative Cov",
                 "All-in-one #Sys", "All-in-one #Types", "All-in-one Cov"],
    )
    # Both modes for every driver as one engine batch: on a parallel engine
    # the 2N generations fan out across workers, and the memoized results
    # make the per-driver loop below pure cache traffic.
    handlers = [ctx.kernel.record_for_name(name).handler_name for name in names]
    batch = [GenerationTask(handler) for handler in handlers] + [
        GenerationTask(handler, mode="all-in-one") for handler in handlers
    ]
    batched = dict(zip(((t.handler_name, t.mode) for t in batch),
                       ctx.kernelgpt.run_generation_tasks(batch, engine=ctx.engine)))
    totals = [0, 0, 0.0, 0, 0, 0.0]
    for name in names:
        handler = ctx.kernel.record_for_name(name).handler_name
        iterative = batched[(handler, "iterative")]
        all_in_one = batched[(handler, "all-in-one")]
        if iterative is None or all_in_one is None:
            # The batch maps extraction/generation failures to None; the
            # ablation drivers are curated, so a miss is a configuration
            # error worth failing loudly on (as the pre-batch code did).
            raise GenerationError(f"ablation generation failed for handler {handler!r}")
        row = [name]
        for offset, result in ((0, iterative), (3, all_in_one)):
            coverage = 0.0
            if result.valid and len(result.suite):
                campaigns = run_repeated_campaigns(
                    ctx.kernel, result.suite,
                    repetitions=1,
                    budget_programs=config.per_driver_budget,
                    base_seed=config.seed,
                )
                coverage = average_coverage(campaigns)
            row.extend([result.syscall_count, result.type_count, round(coverage)])
            totals[offset] += result.syscall_count
            totals[offset + 1] += result.type_count
            totals[offset + 2] += coverage
        table.add_row(*row)
    table.add_row("Total", totals[0], totals[1], round(totals[2]), totals[3], totals[4], round(totals[5]))
    if totals[3]:
        table.add_note(
            f"iterative / all-in-one ratios: syscalls {totals[0] / max(1, totals[3]):.2f}x, "
            f"types {totals[1] / max(1, totals[4]):.2f}x, coverage {totals[2] / max(1.0, totals[5]):.2f}x "
            "(paper: 1.28x syscalls, 2.37x types, 1.39x coverage)"
        )
    return table


__all__ = ["run_ablation_iterative"]
