"""Table 6 — per-socket comparison against the existing Syzkaller specs."""

from __future__ import annotations

from ..engine import derive_seed
from ..fuzzer import average_coverage, average_crashes, run_repeated_campaigns
from ..kernel import TABLE6_SOCKET_PROFILES
from .context import EvaluationContext
from .reporting import TableResult


def run_table6(ctx: EvaluationContext, *, sockets: tuple[str, ...] | None = None) -> TableResult:
    """Per-socket #syscalls, coverage and crashes (SyzDescribe cannot analyse sockets)."""
    config = ctx.config
    names = sockets or tuple(profile.name for profile in TABLE6_SOCKET_PROFILES)
    table = TableResult(
        title="Table 6: socket specification generation comparison",
        headers=["Socket", "Syzkaller #Sys", "Syzkaller Cov", "Syzkaller Crash",
                 "KernelGPT #Sys", "KernelGPT Cov", "KernelGPT Crash"],
    )
    totals = {"syz_sys": 0, "syz_cov": 0.0, "syz_crash": 0.0, "kg_sys": 0, "kg_cov": 0.0, "kg_crash": 0.0}

    for name in names:
        record = ctx.kernel.record_for_name(name)
        handler = record.handler_name
        syz_suite = ctx.syzkaller_corpus.get(handler)
        kg_result = ctx.kernelgpt.generate_for_handler(handler)

        row = [name]
        for label, suite in (("syz", syz_suite), ("kg", kg_result.suite if kg_result.valid else None)):
            if suite is None or len(suite) == 0:
                row.extend(["Err", "-", "-"])
                continue
            # derive_seed (unlike the builtin hash) is stable across
            # interpreter invocations, so reruns reproduce identical rows.
            campaigns = run_repeated_campaigns(
                ctx.kernel, suite,
                repetitions=config.repetitions,
                budget_programs=config.per_driver_budget,
                base_seed=config.seed + derive_seed(config.seed, name) % 1000,
                engine=ctx.engine,
            )
            coverage = average_coverage(campaigns)
            crashes = average_crashes(campaigns)
            row.extend([len(suite), round(coverage), round(crashes, 1)])
            totals[f"{label}_sys"] += len(suite)
            totals[f"{label}_cov"] += coverage
            totals[f"{label}_crash"] += crashes
        table.add_row(*row)

    table.add_row("Total", totals["syz_sys"], round(totals["syz_cov"]), round(totals["syz_crash"], 1),
                  totals["kg_sys"], round(totals["kg_cov"]), round(totals["kg_crash"], 1))
    table.add_note("paper totals: Syzkaller 166 / 130,027 / 7.0; KernelGPT 304 / 154,187 / 6.0 "
                   "(KernelGPT covers 18.6% more blocks)")
    return table


__all__ = ["run_table6"]
