"""Command-line runner that regenerates every table and figure.

``kernelgpt-repro --preset quick`` (installed by the package) runs every
experiment and prints the rendered tables; ``--experiment table5`` runs a
single one; ``--output DIR`` additionally writes one text file per result.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .ablation_iterative import run_ablation_iterative
from .ablation_llm import run_ablation_llm
from .config import paper, quick
from .context import EvaluationContext
from .figure7 import run_figure7
from .reporting import TableResult
from .table1 import run_correctness_audit, run_table1
from .table2 import run_table2
from .table3 import run_table3
from .table4 import run_table4
from .table5 import run_table5
from .table6 import run_table6

EXPERIMENTS = {
    "table1": run_table1,
    "table2": run_table2,
    "figure7": run_figure7,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "ablation_iterative": run_ablation_iterative,
    "ablation_llm": run_ablation_llm,
}


def run_experiment(name: str, ctx: EvaluationContext) -> TableResult:
    """Run one named experiment against a shared context."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise SystemExit(f"unknown experiment {name!r}; choose from {', '.join(EXPERIMENTS)}")
    return runner(ctx)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Regenerate the KernelGPT evaluation tables/figures")
    parser.add_argument("--experiment", "-e", action="append", choices=sorted(EXPERIMENTS) + ["all"],
                        default=None, help="experiment(s) to run (default: all)")
    parser.add_argument("--preset", choices=["quick", "paper"], default="quick")
    parser.add_argument("--output", type=Path, default=None, help="directory to write result text files")
    args = parser.parse_args(argv)

    config = paper() if args.preset == "paper" else quick()
    ctx = EvaluationContext(config)
    wanted = args.experiment or ["all"]
    names = sorted(EXPERIMENTS) if "all" in wanted else wanted

    for name in names:
        started = time.time()
        result = run_experiment(name, ctx)
        elapsed = time.time() - started
        text = result.render()
        print(text)
        print(f"[{name}] completed in {elapsed:.1f}s\n")
        if name == "table1":
            audit = run_correctness_audit(ctx)
            print("Correctness audit (§5.1.3):", audit.render(), "\n")
        if args.output is not None:
            args.output.mkdir(parents=True, exist_ok=True)
            (args.output / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
