"""Command-line runner that regenerates every table and figure.

``kernelgpt-repro --preset quick`` (installed by the package) runs every
experiment and prints the rendered tables; ``--experiment table5`` runs a
single one; ``--output DIR`` additionally writes one text file per result.

The runner is engine-backed: ``--jobs N`` fans independent experiments out
across N workers, and ``--executor {serial,thread,process}`` picks the pool
flavour.  With threads (the default), shared artifacts — kernel, generation
run, baselines — are built exactly once, under the context lock.  With
processes, each worker builds (and caches, per process, across its tasks)
its own evaluation context from the preset name, because contexts hold
locks and engines that cannot cross a process boundary; experiments are
pure functions of the configuration, so the rendered tables are unchanged.
``--profile`` prints the engine's per-stage wall-time breakdown plus cache
statistics.  Results are printed in deterministic experiment order whatever
the job count or executor, and per-experiment timing lines go to stderr, so
``--jobs 4 --executor process`` stdout matches ``--jobs 1`` byte for byte.

``kernelgpt-repro campaign`` runs the same experiments as a DAG-scheduled
campaign with quality gates and a structured event log (see
:mod:`repro.orchestrator`); its stdout matches this runner's byte for byte.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from ..engine import ExecutionEngine, TaskSpec
from .ablation_iterative import run_ablation_iterative
from .ablation_llm import run_ablation_llm
from .config import paper, quick
from .context import EvaluationContext
from .figure7 import run_figure7
from .reporting import TableResult
from .table1 import run_correctness_audit, run_table1
from .table2 import run_table2
from .table3 import run_table3
from .table4 import run_table4
from .table5 import run_table5
from .table6 import run_table6

EXPERIMENTS = {
    "table1": run_table1,
    "table2": run_table2,
    "figure7": run_figure7,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "ablation_iterative": run_ablation_iterative,
    "ablation_llm": run_ablation_llm,
}


def run_experiment(name: str, ctx: EvaluationContext) -> TableResult:
    """Run one named experiment against a shared context."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise SystemExit(f"unknown experiment {name!r}; choose from {', '.join(EXPERIMENTS)}")
    return runner(ctx)


def run_experiment_for_preset(
    name: str,
    preset: str,
    backends: tuple[str, ...] | None = None,
    pool_schedule: str | None = None,
    route_table: tuple[tuple[str, str], ...] | None = None,
    repair_mode: str | None = None,
    store_spec: tuple[str, str | None] | None = None,
    resilience_spec: tuple[str | None, str | None, int | None] | None = None,
) -> TableResult:
    """Run one experiment against a worker-local context for ``preset``.

    The process-pool task payload: module-level, with string arguments, so
    it pickles by name.  ``shared_context`` is process-cached, so a worker
    that runs several experiments builds the kernel/generation artifacts
    once — the per-process analogue of the thread path's shared context.
    Experiments are deterministic functions of the configuration, so the
    rendered result is byte-identical to the shared-memory path.
    ``backends`` forwards the ``--backends`` profile line-up,
    ``pool_schedule`` the ``--pool-schedule`` placement policy,
    ``route_table`` the ``--route`` kind-route table, ``repair_mode``
    the ``--repair-mode`` protocol choice and ``store_spec`` the
    ``--store``/``--frozen`` artifact-store binding (workers share the
    on-disk store; the parent's end-of-run ``--freeze`` snapshot therefore
    covers their artifacts too).  ``resilience_spec`` forwards the
    ``(--fault-plan, --retry, --breaker-threshold)`` triple so chaos runs
    inject the same deterministic fault schedule in every worker process.
    """
    from .context import shared_context

    return run_experiment(
        name,
        shared_context(
            preset, backends, pool_schedule, route_table, repair_mode, store_spec,
            resilience_spec,
        ),
    )


def run_table1_for_preset(
    preset: str,
    backends: tuple[str, ...] | None = None,
    pool_schedule: str | None = None,
    route_table: tuple[tuple[str, str], ...] | None = None,
    repair_mode: str | None = None,
    store_spec: tuple[str, str | None] | None = None,
    resilience_spec: tuple[str | None, str | None, int | None] | None = None,
) -> "tuple[TableResult, str]":
    """table1 plus its §5.1.3 correctness audit as one process-pool payload.

    The audit needs the full generation run, which in process mode lives in
    a worker context, not the parent's — recomputing it in the parent would
    redo the whole pipeline serially, and a separate audit task would build
    a second context on another worker.  Bundling table + rendered audit
    into one task means exactly one worker pays for the generation run.
    ``backends`` only matters to the ablation, but it must be part of the
    ``shared_context`` key here too, so a worker that runs table1 plus any
    other experiment reuses one context instead of building two.
    """
    from .context import shared_context

    ctx = shared_context(
        preset, backends, pool_schedule, route_table, repair_mode, store_spec,
        resilience_spec,
    )
    return run_table1(ctx), run_correctness_audit(ctx).render()


def parse_route_table(entries: list[str]) -> tuple[tuple[str, str], ...]:
    """Parse repeated ``--route KIND=PROFILE`` flags into a route table.

    Entries are sorted by kind so that flag order never changes the
    configuration (route tables are lookup maps, not priority lists); a
    kind given twice is an error rather than a silent last-wins.
    """
    from ..llm import PROFILE_FACTORIES

    table: dict[str, str] = {}
    for entry in entries:
        kind, separator, profile = entry.partition("=")
        kind, profile = kind.strip(), profile.strip()
        if not separator or not kind or not profile:
            raise SystemExit(f"--route expects KIND=PROFILE, got {entry!r}")
        if profile not in PROFILE_FACTORIES:
            raise SystemExit(
                f"--route {entry!r}: unknown profile {profile!r}; "
                f"choose from {', '.join(PROFILE_FACTORIES)}"
            )
        if kind in table:
            raise SystemExit(f"--route given twice for kind {kind!r}")
        table[kind] = profile
    return tuple(sorted(table.items()))


def main(argv: list[str] | None = None) -> int:
    arguments = sys.argv[1:] if argv is None else argv
    if arguments and arguments[0] == "serve":
        # The serving front door lives in repro.service; imported lazily so
        # the batch CLI pays nothing for it.
        from ..errors import AdmissionError
        from ..service.cli import serve_main

        try:
            return serve_main(arguments[1:])
        except AdmissionError as error:
            print(f"admission refused: {error}", file=sys.stderr)
            return 2
    if arguments and arguments[0] == "campaign":
        # DAG-scheduled campaigns live in repro.orchestrator; same lazy
        # import rule as serve.
        from ..errors import CampaignPlanError
        from ..orchestrator.cli import campaign_main

        try:
            return campaign_main(arguments[1:])
        except CampaignPlanError as error:
            print(f"invalid campaign plan: {error}", file=sys.stderr)
            return 2
    if arguments and arguments[0] == "diff":
        # Differential campaigns live in repro.diffcampaign; same lazy
        # import rule as serve/campaign.
        from ..errors import CampaignPlanError, ConfigError
        from ..diffcampaign.cli import diff_main

        try:
            return diff_main(arguments[1:])
        except (CampaignPlanError, ConfigError) as error:
            print(f"invalid diff campaign: {error}", file=sys.stderr)
            return 2
    parser = argparse.ArgumentParser(description="Regenerate the KernelGPT evaluation tables/figures")
    parser.add_argument("--experiment", "-e", action="append", choices=sorted(EXPERIMENTS) + ["all"],
                        default=None, help="experiment(s) to run (default: all)")
    parser.add_argument("--preset", choices=["quick", "paper"], default="quick")
    parser.add_argument("--output", type=Path, default=None, help="directory to write result text files")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="workers for independent experiments (default: 1)")
    parser.add_argument("--executor", choices=["serial", "thread", "process"], default="thread",
                        help="worker pool flavour for --jobs > 1 (default: thread)")
    parser.add_argument("--backends", default=None, metavar="PROFILES",
                        help="comma-separated capability profiles for the LLM-choice "
                             "ablation's BackendPool, e.g. gpt-4,gpt-3.5 "
                             "(default: the paper's gpt-4,gpt-4o,gpt-3.5 line-up)")
    parser.add_argument("--pool-schedule", choices=["tagged", "round-robin"], default=None,
                        help="BackendPool placement for untagged LLM requests: tagged "
                             "(default member only) or round-robin (budget-aware "
                             "load balancing across pool members)")
    parser.add_argument("--repair-mode", choices=["per-query", "transactional"], default=None,
                        help="validation-repair protocol: per-query (one LLM round-trip "
                             "per broken declaration, the historical loop) or "
                             "transactional (snapshot-batched repair rounds, one "
                             "round-trip per round)")
    parser.add_argument("--route", action="append", default=None, metavar="KIND=PROFILE",
                        help="kind-route table entry, e.g. --route repair=gpt-3.5: wraps "
                             "the analyst in a BackendPool and sends every prompt of "
                             "KIND to the named capability profile (repeatable)")
    parser.add_argument("--store", type=Path, default=None, metavar="DIR",
                        help="persistent artifact store: hydrate LLM/extract/session "
                             "caches from DIR and write fresh computations through")
    parser.add_argument("--freeze", type=Path, default=None, metavar="LOCKFILE",
                        help="after a successful run, snapshot the store manifest to "
                             "LOCKFILE so --frozen can replay it (requires --store)")
    parser.add_argument("--frozen", type=Path, default=None, metavar="LOCKFILE",
                        help="replay a frozen run: resolve every artifact through "
                             "LOCKFILE's pins, refuse live backend traffic with a "
                             "typed FrozenStoreMiss (requires --store)")
    parser.add_argument("--fault-plan", default=None, metavar="SPEC",
                        help="deterministic chaos injection for the analysis backend, "
                             "e.g. rate=0.2,seed=7[,kinds=transient+timeout]: faults "
                             "are a pure function of (route, prompt, occurrence), so "
                             "retried runs converge to fault-free bytes")
    parser.add_argument("--retry", default=None, metavar="SPEC",
                        help="retry policy for the resilient backend wrapper, e.g. "
                             "attempts=6 or off; a --fault-plan without --retry uses "
                             "the default policy (4 attempts, capped backoff)")
    parser.add_argument("--breaker-threshold", type=int, default=None, metavar="N",
                        help="arm per-member circuit breakers in BackendPools: open "
                             "after N consecutive member failures, deterministic "
                             "failover to the remaining members")
    parser.add_argument("--profile", action="store_true",
                        help="print per-stage timings and cache statistics at the end")
    args = parser.parse_args(argv)

    backends = tuple(part.strip() for part in args.backends.split(",") if part.strip()) \
        if args.backends else None
    route_table = parse_route_table(args.route) if args.route else None
    if (args.freeze or args.frozen) and not args.store:
        raise SystemExit("--freeze/--frozen require --store DIR")
    if args.freeze and args.frozen:
        raise SystemExit("--freeze and --frozen are mutually exclusive "
                         "(record first, then replay)")
    config = paper() if args.preset == "paper" else quick()
    if backends:
        config = config.with_overrides(llm_backends=backends)
    if args.pool_schedule:
        config = config.with_overrides(pool_schedule=args.pool_schedule)
    if args.repair_mode:
        config = config.with_overrides(repair_mode=args.repair_mode)
    if route_table:
        config = config.with_overrides(route_table=route_table)
    resilience_spec = None
    if args.fault_plan or args.retry or args.breaker_threshold is not None:
        # Validate specs at the CLI boundary so a typo fails before any
        # kernel assembly, not deep inside a worker process.
        from ..llm import FaultPlan, RetryPolicy

        try:
            if args.fault_plan:
                FaultPlan.parse(args.fault_plan)
            if args.retry and args.retry != "off":
                RetryPolicy.parse(args.retry)
        except ValueError as error:
            raise SystemExit(f"invalid resilience spec: {error}")
        resilience_spec = (args.fault_plan, args.retry, args.breaker_threshold)
        config = config.with_overrides(
            fault_plan=args.fault_plan,
            retry_spec=args.retry,
            breaker_threshold=args.breaker_threshold,
        )
    store = None
    store_binding = None
    if args.store is not None:
        from ..store import ArtifactStore, FrozenBackend, FrozenLock, StoreBinding

        store = ArtifactStore(args.store)
        frozen_lock = FrozenLock.load(args.frozen) if args.frozen else None
        store_binding = StoreBinding(store, frozen=frozen_lock)
    engine = ExecutionEngine(jobs=args.jobs, kind=args.executor, store=store_binding)
    ctx = EvaluationContext(config, engine=engine)
    if args.frozen:
        # Belt and suspenders: even if a code path slips past the store
        # binding, the frozen analyst raises instead of issuing traffic.
        ctx.analysis_backend = FrozenBackend(ctx.build_analysis_backend())
    wanted = args.experiment or ["all"]
    names = sorted(EXPERIMENTS) if "all" in wanted else wanted

    audits: dict[str, str] = {}

    def report(name: str, result: TableResult, elapsed: float) -> None:
        text = result.render()
        print(text)
        print()
        # Timing goes to stderr so stdout stays byte-diffable across runs
        # (the same convention as the --freeze summary and failure lines).
        print(f"[{name}] completed in {elapsed:.1f}s", file=sys.stderr)
        if name == "table1":
            # In process mode the generation run lives in worker contexts;
            # the audit was computed there too (see the task batch below),
            # so the parent never rebuilds the pipeline just to audit it.
            audit_text = audits.get("table1") or run_correctness_audit(ctx).render()
            print("Correctness audit (§5.1.3):", audit_text, "\n")
        if args.output is not None:
            args.output.mkdir(parents=True, exist_ok=True)
            (args.output / f"{name}.txt").write_text(text + "\n")

    failures: list[tuple[str, BaseException]] = []
    started = time.perf_counter()
    if engine.jobs <= 1:
        # Serial: print each table as soon as it finishes.  Failures are
        # collected and reported exactly like the parallel path does.
        for name in names:
            experiment_started = time.perf_counter()
            try:
                with engine.profile.measure("experiments"):
                    result = run_experiment(name, ctx)
            except Exception as error:
                failures.append((name, error))
                continue
            report(name, result, time.perf_counter() - experiment_started)
    else:
        # Parallel: batch through the engine, then print in experiment order.
        # rethrow=False so one failing experiment does not discard the others.
        # Thread workers share the parent context; process workers cannot
        # (contexts hold locks/engines), so their payload is the picklable
        # (experiment name, preset name) pair and each worker process builds
        # its own context once.
        if engine.shares_memory:
            tasks = [TaskSpec(key=name, fn=run_experiment, args=(name, ctx)) for name in names]
        else:
            store_spec = (
                (str(args.store), str(args.frozen) if args.frozen else None)
                if args.store is not None
                else None
            )
            overrides = (
                backends, args.pool_schedule, route_table, args.repair_mode, store_spec,
                resilience_spec,
            )
            tasks = [
                TaskSpec(
                    key=name, fn=run_table1_for_preset,
                    args=(args.preset,) + overrides,
                )
                if name == "table1"
                else TaskSpec(
                    key=name, fn=run_experiment_for_preset,
                    args=(name, args.preset) + overrides,
                )
                for name in names
            ]
        for task_result in engine.run_tasks("experiments", tasks, rethrow=False):
            if task_result.error is not None:
                failures.append((task_result.key, task_result.error))
                continue
            value = task_result.value
            if task_result.key == "table1" and isinstance(value, tuple):
                value, audits["table1"] = value
            report(task_result.key, value, task_result.duration)
    total_elapsed = time.perf_counter() - started

    for name, error in failures:
        print(f"[{name}] FAILED: {error!r}\n", file=sys.stderr)

    if args.freeze is not None and not failures:
        # Snapshot taken after every experiment (and, in process mode, every
        # worker's write — they append to the shared on-disk manifest) so
        # the lockfile pins the complete artifact set of this run.
        from ..store import FrozenLock

        lock = FrozenLock.freeze(store)
        lock.write(args.freeze)
        counts = ", ".join(f"{kind}={count}" for kind, count in lock.kind_counts().items())
        print(f"[store] froze {len(lock)} artifact(s) to {args.freeze} ({counts})",
              file=sys.stderr)

    if args.profile:
        print(engine.profile.render())
        caches = engine.cache_stats()
        print("cache statistics")
        print("----------------")
        for cache in caches.values():
            print(f"{cache['name']:8s}  hits={cache['hits']:6d}  misses={cache['misses']:6d}  "
                  f"hit_rate={cache['hit_rate']:.1%}")
        print(f"total wall time: {total_elapsed:.1f}s with jobs={engine.jobs}\n")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
