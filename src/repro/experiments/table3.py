"""Table 3 — overall fuzzing effectiveness of the combined suites."""

from __future__ import annotations

from ..fuzzer import average_coverage, average_crashes, run_campaign_matrix, union_coverage
from .context import EvaluationContext
from .reporting import TableResult


def run_table3(ctx: EvaluationContext) -> TableResult:
    """24-hour-campaign analogue: Syzkaller vs +SyzDescribe vs +KernelGPT."""
    config = ctx.config
    suites = {
        "Syzkaller": ctx.syzkaller_corpus.flatten("syzkaller"),
        "Syzkaller + SyzDescribe": ctx.syzkaller_corpus.merge_corpus(
            ctx.syzdescribe_corpus()
        ).flatten("syzkaller+syzdescribe"),
        "Syzkaller + KernelGPT": ctx.syzkaller_corpus.merge_corpus(
            ctx.kernelgpt_corpus()
        ).flatten("syzkaller+kernelgpt"),
    }

    # The full configurations x repetitions matrix runs as one engine batch,
    # so with jobs>1 the three 24-hour-analogue campaigns overlap.
    campaigns = run_campaign_matrix(
        ctx.kernel, suites,
        repetitions=config.repetitions,
        budget_programs=config.overall_budget,
        base_seed=config.seed,
        engine=ctx.engine,
    )

    baseline_blocks = union_coverage(campaigns["Syzkaller"])
    table = TableResult(
        title="Table 3: overall effectiveness (averages over repetitions)",
        headers=["Configuration", "Cov", "Unique Cov vs Syzkaller", "Crash"],
    )
    for label, runs in campaigns.items():
        unique = "-"
        if label != "Syzkaller":
            # Bitmap difference_count: one AND-NOT popcount, no label sets.
            unique = union_coverage(runs).difference_count(baseline_blocks)
        table.add_row(label, round(average_coverage(runs)), unique, round(average_crashes(runs), 1))
    table.add_note("paper: Syzkaller 204,923 / +SyzDescribe 201,634 (14,585 unique) / "
                   "+KernelGPT 209,673 (20,472 unique); crashes 16.0 / 13.7 / 17.7")
    table.add_note(f"budget: {config.overall_budget} programs x {config.repetitions} repetition(s) per configuration")
    return table


__all__ = ["run_table3"]
