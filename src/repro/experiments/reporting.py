"""Plain-text table rendering shared by every experiment."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TableResult:
    """A rendered experiment result: a title, column headers and rows."""

    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> list[object]:
        index = self.headers.index(name)
        return [row[index] for row in self.rows]

    def row_for(self, key: object) -> list[object] | None:
        for row in self.rows:
            if row and row[0] == key:
                return row
        return None

    def render(self) -> str:
        columns = [self.headers] + [[_fmt(value) for value in row] for row in self.rows]
        widths = [max(len(str(row[i])) for row in columns) for i in range(len(self.headers))]
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(str(header).ljust(widths[i]) for i, header in enumerate(self.headers)))
        lines.append("  ".join("-" * widths[i] for i in range(len(self.headers))))
        for row in self.rows:
            lines.append("  ".join(_fmt(value).ljust(widths[i]) for i, value in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    if value is None:
        return "-"
    return str(value)


__all__ = ["TableResult"]
