"""Evaluation harness: one module per paper table/figure plus the ablations."""

from .ablation_iterative import run_ablation_iterative
from .ablation_llm import run_ablation_llm
from .config import ExperimentConfig, paper, quick
from .context import EvaluationContext, shared_context
from .figure7 import run_figure7
from .reporting import TableResult
from .table1 import CorrectnessAudit, run_correctness_audit, run_table1
from .table2 import run_table2
from .table3 import run_table3
from .table4 import run_table4
from .table5 import run_table5
from .table6 import run_table6

__all__ = [
    "ExperimentConfig",
    "quick",
    "paper",
    "EvaluationContext",
    "shared_context",
    "TableResult",
    "run_table1",
    "run_correctness_audit",
    "CorrectnessAudit",
    "run_table2",
    "run_figure7",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_ablation_iterative",
    "run_ablation_llm",
]
