"""Figure 7 — distribution of missing specifications per handler."""

from __future__ import annotations

from .context import EvaluationContext
from .reporting import TableResult


def run_figure7(ctx: EvaluationContext, *, bins: int = 10) -> TableResult:
    """Histogram of the percentage of missing syscall specs per handler."""
    report = ctx.selection.report
    driver_hist = report.histogram("driver", bins=bins)
    socket_hist = report.histogram("socket", bins=bins)

    table = TableResult(
        title="Figure 7: missing specification distribution (handlers per missing-percentage bin)",
        headers=["Missing %", "# Driver handlers", "# Socket handlers"],
    )
    for index in range(bins):
        low = int(100 * index / bins)
        high = int(100 * (index + 1) / bins)
        table.add_row(f"{low}-{high}%", driver_hist[index], socket_hist[index])
    undescribed_drivers = len(report.undescribed("driver"))
    socket_mostly_missing = sum(socket_hist[int(bins * 0.8):])
    table.add_note(f"{undescribed_drivers} driver handlers have no description at all "
                   "(paper: 45 of 75, 60%)")
    table.add_note(f"{socket_mostly_missing} socket handlers miss more than 80% of their syscalls "
                   "(paper: 22)")
    return table


__all__ = ["run_figure7"]
