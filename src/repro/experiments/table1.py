"""Table 1 — specifications generated for handlers with missing descriptions.

Reproduces the paper's Table 1 (handlers scanned / incomplete / valid
generated specs, with the number fixed by the repair phase in parentheses)
plus the §5.1.3 correctness audit of the generated specifications against the
kernel's ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from .context import EvaluationContext
from .reporting import TableResult


def run_table1(ctx: EvaluationContext) -> TableResult:
    """Regenerate Table 1."""
    report = ctx.selection.report
    incomplete_drivers = [cov.handler for cov in report.incomplete("driver")]
    incomplete_sockets = [cov.handler for cov in report.incomplete("socket")]

    generation = ctx.generation_run
    syzdescribe = ctx.syzdescribe_results

    def kgpt_counts(handlers: list[str]) -> tuple[int, int]:
        valid = 0
        fixed = 0
        for handler in handlers:
            result = generation.results.get(handler)
            if result is not None and result.valid:
                valid += 1
                if result.repaired:
                    fixed += 1
        return valid, fixed

    sd_valid_drivers = sum(
        1 for handler in incomplete_drivers
        if handler in syzdescribe and syzdescribe[handler].valid
    )
    kg_driver_valid, kg_driver_fixed = kgpt_counts(incomplete_drivers)
    kg_socket_valid, kg_socket_fixed = kgpt_counts(incomplete_sockets)

    loaded_drivers = len(report.of_kind("driver"))
    loaded_sockets = len(report.of_kind("socket"))

    table = TableResult(
        title="Table 1: specifications for driver/socket handlers with missing descriptions",
        headers=["Kind", "# Total", "# Incomplete", "SyzDescribe # Valid", "KernelGPT # Valid (Fixed)"],
    )
    table.add_row("Driver", loaded_drivers, len(incomplete_drivers), sd_valid_drivers,
                  f"{kg_driver_valid} ({kg_driver_fixed})")
    table.add_row("Socket", loaded_sockets, len(incomplete_sockets), "N/A",
                  f"{kg_socket_valid} ({kg_socket_fixed})")
    table.add_row("Total", loaded_drivers + loaded_sockets,
                  len(incomplete_drivers) + len(incomplete_sockets), sd_valid_drivers,
                  f"{kg_driver_valid + kg_socket_valid} ({kg_driver_fixed + kg_socket_fixed})")
    table.add_note("paper: drivers 278/75, SyzDescribe 20 valid, KernelGPT 70 (30); "
                   "sockets 81/66, KernelGPT 57 (12)")
    # Session-attributed usage of the generation run itself — deterministic
    # however the experiments are scheduled, unlike reading the shared
    # backend's meter while concurrent tables may still be querying it.
    usage = generation.usage_summary()
    table.add_note(
        f"LLM usage (generation run): {usage['queries']} queries, "
        f"{usage['input_tokens']} input tokens, "
        f"{usage['output_tokens']} output tokens, ~${usage['estimated_cost_usd']}"
    )
    # Repair round-trip accounting: how many LLM round-trips the repair
    # phase cost under the active protocol (per-query pays one per prompt,
    # transactional one batch per round — the CI repair-mode smoke job
    # uploads this line to keep the savings visible in review).
    results = list(generation.results.values())
    repaired_count = sum(1 for result in results if result.repaired)
    table.add_note(
        f"repair protocol ({ctx.config.repair_mode}): "
        f"{sum(result.repair_queries for result in results)} repair prompts in "
        f"{sum(result.repair_llm_calls for result in results)} LLM round-trips "
        f"across {repaired_count} repaired handlers"
    )
    return table


@dataclass
class CorrectnessAudit:
    """§5.1.3 — generated specs audited against the ground-truth interfaces."""

    drivers_audited: int = 0
    drivers_with_missing_syscalls: int = 0
    missing_syscalls: int = 0
    wrong_identifiers: int = 0
    wrong_types: int = 0
    total_syscalls: int = 0

    def render(self) -> str:
        return (
            f"audited {self.drivers_audited} undescribed drivers, {self.total_syscalls} ioctl descriptions: "
            f"{self.drivers_with_missing_syscalls} drivers with missing syscalls "
            f"({self.missing_syscalls} syscalls), {self.wrong_identifiers} wrong identifier values, "
            f"{self.wrong_types} wrong argument types"
        )


def run_correctness_audit(ctx: EvaluationContext, *, max_drivers: int = 45) -> CorrectnessAudit:
    """Audit KernelGPT specs for drivers that have no existing descriptions."""
    audit = CorrectnessAudit()
    report = ctx.selection.report
    undescribed = [cov for cov in report.undescribed("driver")][:max_drivers]
    for coverage in undescribed:
        result = ctx.generation_run.results.get(coverage.handler)
        if result is None or not result.valid:
            continue
        record = ctx.kernel.record_for_handler(coverage.handler)
        truth = record.truth
        audit.drivers_audited += 1
        truth_macros = {op.macro: op for op in truth.all_ops()}
        generated_ioctls = {
            syscall.variant: syscall for syscall in result.suite if syscall.name == "ioctl"
        }
        audit.total_syscalls += len(generated_ioctls)

        missing = [macro for macro in truth_macros if macro not in generated_ioctls]
        # Identifier errors: described commands whose macro does not resolve to
        # the true command value (e.g. the rewritten *_CMD constant).
        wrong_ident = 0
        for variant in generated_ioctls:
            base = variant.removesuffix("_REQ")
            if variant not in truth_macros and base not in truth_macros and variant.removesuffix("_CMD") not in truth_macros:
                wrong_ident += 1
        missing = [macro for macro in missing if macro + "_CMD" not in generated_ioctls]
        if missing:
            audit.drivers_with_missing_syscalls += 1
            audit.missing_syscalls += len(missing)
        audit.wrong_identifiers += wrong_ident

        for macro, op in truth_macros.items():
            generated = generated_ioctls.get(macro)
            if generated is None or op.arg_struct is None:
                continue
            rendered = " ".join(param.type.render() for param in generated.params)
            if op.arg_struct not in rendered:
                audit.wrong_types += 1
    return audit


__all__ = ["run_table1", "run_correctness_audit", "CorrectnessAudit"]
