"""Experiment configuration presets.

Two presets are provided: ``quick()`` keeps every campaign small enough for
CI / pytest-benchmark runs (seconds to a few minutes in total), while
``paper()`` scales the kernel, budgets and repetitions to the settings used
for EXPERIMENTS.md.  Absolute numbers differ between presets; the shapes the
paper reports (orderings, ratios, who finds which bug) hold in both.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment."""

    name: str = "quick"
    kernel_scale: str = "full"        # "full" = paper scan scale, "small" = test kernel
    repetitions: int = 1              # fuzzing repetitions per configuration (paper: 3)
    overall_budget: int = 4000        # programs per campaign for Table 3
    per_driver_budget: int = 800      # programs per campaign for Tables 5/6
    bug_budget: int = 2500            # programs per campaign for Table 4
    ablation_drivers: int = 10        # first N valid drivers for the §5.2.3 ablations
    #: Capability profiles the LLM-choice ablation routes through its
    #: BackendPool (None = the paper's gpt-4 / gpt-4o / gpt-3.5 line-up);
    #: set from the runner's --backends flag.
    llm_backends: tuple[str, ...] | None = None
    #: How the ablation's BackendPool places untagged requests: "tagged"
    #: (default member only) or "round-robin" (budget-aware load balancing
    #: across members); set from the runner's --pool-schedule flag.
    pool_schedule: str = "tagged"
    #: Repair protocol for the evaluation's KernelGPT: "per-query" (the
    #: historical loop, the equivalence oracle) or "transactional"
    #: (snapshot-batched rounds; see repro.core.repair); set from the
    #: runner's --repair-mode flag.
    repair_mode: str = "per-query"
    #: Kind-route table, e.g. (("repair", "gpt-3.5"),): prompt kinds routed
    #: to capability-profile members of a BackendPool wrapped around the
    #: default analyst.  None runs the plain single-backend analyst.  Set
    #: from the runner's repeatable --route KIND=PROFILE flag; stored as a
    #: sorted tuple of pairs so configs stay hashable and comparable.
    route_table: tuple[tuple[str, str], ...] | None = None
    #: Deterministic fault-injection plan for the analysis backend, as a
    #: :meth:`repro.llm.FaultPlan.parse` spec (e.g. ``"rate=0.2,seed=7"``).
    #: None runs fault-free.  Set from the ``--fault-plan`` flag.
    fault_plan: str | None = None
    #: Retry policy spec for the resilient backend wrapper, as a
    #: :meth:`repro.llm.RetryPolicy.parse` spec (e.g. ``"attempts=6"``),
    #: ``"off"`` to disable retries even under faults, or None for the
    #: default policy (applied only when a fault plan is active).  Set from
    #: the ``--retry`` flag.
    retry_spec: str | None = None
    #: Consecutive-failure threshold for per-member circuit breakers in
    #: BackendPools built from this config; None leaves breakers off (the
    #: historical pool behavior).  Set from the ``--breaker-threshold`` flag.
    breaker_threshold: int | None = None
    seed: int = 2025

    def with_overrides(self, **overrides) -> "ExperimentConfig":
        return replace(self, **overrides)


def quick() -> ExperimentConfig:
    """Fast settings for tests and benchmarks."""
    return ExperimentConfig()


def paper() -> ExperimentConfig:
    """Settings used to produce EXPERIMENTS.md (minutes of runtime)."""
    return ExperimentConfig(
        name="paper",
        kernel_scale="full",
        repetitions=3,
        overall_budget=12000,
        per_driver_budget=2500,
        bug_budget=8000,
    )


__all__ = ["ExperimentConfig", "quick", "paper"]
