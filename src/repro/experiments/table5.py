"""Table 5 — per-driver comparison against Syzkaller and SyzDescribe specs."""

from __future__ import annotations

from ..engine import derive_seed
from ..fuzzer import average_coverage, average_crashes, run_repeated_campaigns
from ..kernel import TABLE5_DRIVER_NAMES
from .context import EvaluationContext
from .reporting import TableResult


def run_table5(ctx: EvaluationContext, *, drivers: tuple[str, ...] | None = None) -> TableResult:
    """Per-driver #syscalls and coverage for the Table 5 evaluation drivers."""
    config = ctx.config
    names = drivers or TABLE5_DRIVER_NAMES
    table = TableResult(
        title="Table 5: driver specification generation comparison",
        headers=["Driver", "Syzkaller #Sys", "Syzkaller Cov", "SyzDescribe #Sys", "SyzDescribe Cov",
                 "KernelGPT #Sys", "KernelGPT Cov"],
    )
    totals = {"syz_sys": 0, "syz_cov": 0.0, "sd_sys": 0, "sd_cov": 0.0, "kg_sys": 0, "kg_cov": 0.0}
    crash_totals = {"syz": 0.0, "sd": 0.0, "kg": 0.0}

    for name in names:
        record = ctx.kernel.record_for_name(name)
        handler = record.handler_name

        syz_suite = ctx.syzkaller_corpus.get(handler)
        sd_result = ctx.syzdescribe.analyze_handler(handler)
        kg_result = ctx.kernelgpt.generate_for_handler(handler)

        row = [name]
        for label, suite in (
            ("syz", syz_suite),
            ("sd", sd_result.suite if sd_result.valid else None),
            ("kg", kg_result.suite if kg_result.valid else None),
        ):
            if suite is None or len(suite) == 0:
                row.extend(["Err", "-"])
                continue
            # derive_seed (unlike the builtin hash) is stable across
            # interpreter invocations, so reruns reproduce identical rows.
            campaigns = run_repeated_campaigns(
                ctx.kernel, suite,
                repetitions=config.repetitions,
                budget_programs=config.per_driver_budget,
                base_seed=config.seed + derive_seed(config.seed, name) % 1000,
                engine=ctx.engine,
            )
            coverage = average_coverage(campaigns)
            row.extend([len(suite), round(coverage)])
            totals[f"{label}_sys"] += len(suite)
            totals[f"{label}_cov"] += coverage
            crash_totals[label] += average_crashes(campaigns)
        table.add_row(*row)

    table.add_row("Total", totals["syz_sys"], round(totals["syz_cov"]), totals["sd_sys"],
                  round(totals["sd_cov"]), totals["kg_sys"], round(totals["kg_cov"]))
    table.add_note(f"average unique crashes per run: Syzkaller {crash_totals['syz']:.1f}, "
                   f"SyzDescribe {crash_totals['sd']:.1f}, KernelGPT {crash_totals['kg']:.1f} "
                   "(paper: 21.0 / 20.7 / 24.0)")
    table.add_note("paper totals: Syzkaller 464 / 117,769; SyzDescribe 625 / 113,927; KernelGPT 482 / 138,992")
    return table


__all__ = ["run_table5"]
