"""Table 2 — newly generated syscall and type descriptions."""

from __future__ import annotations

from .context import EvaluationContext
from .reporting import TableResult


def run_table2(ctx: EvaluationContext) -> TableResult:
    """Count the new syscall / type descriptions each generator contributes."""
    generation = ctx.generation_run
    report = ctx.selection.report
    driver_handlers = {cov.handler for cov in report.incomplete("driver")}
    socket_handlers = {cov.handler for cov in report.incomplete("socket")}

    kg_driver_sys = kg_driver_types = 0
    kg_socket_sys = kg_socket_types = 0
    for handler, result in generation.results.items():
        if not result.valid:
            continue
        if handler in driver_handlers:
            kg_driver_sys += result.syscall_count
            kg_driver_types += result.type_count
        elif handler in socket_handlers:
            kg_socket_sys += result.syscall_count
            kg_socket_types += result.type_count

    sd_driver_sys = sd_driver_types = 0
    for handler, result in ctx.syzdescribe_results.items():
        if handler in driver_handlers and result.valid and result.suite is not None:
            sd_driver_sys += result.syscall_count
            sd_driver_types += result.type_count

    existing_total = ctx.syzkaller_corpus.total_syscalls()

    table = TableResult(
        title="Table 2: newly generated syscall descriptions",
        headers=["Kind", "SyzDescribe # Syscalls", "SyzDescribe # Types",
                 "KernelGPT # Syscalls", "KernelGPT # Types"],
    )
    table.add_row("Driver", sd_driver_sys, sd_driver_types, kg_driver_sys, kg_driver_types)
    table.add_row("Socket", "N/A", "N/A", kg_socket_sys, kg_socket_types)
    table.add_row("Total", sd_driver_sys, sd_driver_types,
                  kg_driver_sys + kg_socket_sys, kg_driver_types + kg_socket_types)
    table.add_note("paper: SyzDescribe 146 syscalls / 168 types; KernelGPT 532 syscalls / 294 types")
    table.add_note(f"existing Syzkaller corpus already describes {existing_total} syscalls")
    return table


__all__ = ["run_table2"]
