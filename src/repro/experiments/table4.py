"""Table 4 — new bugs detected only with the KernelGPT-generated specifications."""

from __future__ import annotations

from ..fuzzer import run_repeated_campaigns, union_coverage
from .context import EvaluationContext
from .reporting import TableResult


def _bugs_found(ctx: EvaluationContext, suite, budget: int) -> set[str]:
    campaigns = run_repeated_campaigns(
        ctx.kernel, suite,
        repetitions=ctx.config.repetitions,
        budget_programs=budget,
        base_seed=ctx.config.seed + 7,
        engine=ctx.engine,
    )
    found: set[str] = set()
    for campaign in campaigns:
        found.update(campaign.crash_log.bug_ids())
    return found


def run_table4(ctx: EvaluationContext) -> TableResult:
    """Which injected bugs each configuration can reach."""
    budget = ctx.config.bug_budget
    syzkaller_suite = ctx.syzkaller_corpus.flatten("syzkaller")
    syzdescribe_suite = ctx.syzkaller_corpus.merge_corpus(ctx.syzdescribe_corpus()).flatten("syz+sd")
    kernelgpt_suite = ctx.syzkaller_corpus.merge_corpus(ctx.kernelgpt_corpus()).flatten("syz+kgpt")

    found_syzkaller = _bugs_found(ctx, syzkaller_suite, budget)
    found_syzdescribe = _bugs_found(ctx, syzdescribe_suite, budget)
    found_kernelgpt = _bugs_found(ctx, kernelgpt_suite, budget)

    table = TableResult(
        title="Table 4: new bugs detected with KernelGPT-generated specifications",
        headers=["Crash", "CVE", "Fixed", "KernelGPT", "Syzkaller", "SyzDescribe"],
    )
    detected = confirmed = fixed = cves = 0
    for bug in ctx.kernel.bug_catalog:
        kg = "yes" if bug.bug_id in found_kernelgpt else "no"
        sz = "yes" if bug.bug_id in found_syzkaller else "no"
        sd = "yes" if bug.bug_id in found_syzdescribe else "no"
        if kg == "yes":
            detected += 1
            confirmed += int(bug.confirmed)
            fixed += int(bug.fixed)
            cves += int(bug.has_cve)
        table.add_row(bug.title, bug.cve or "-", "yes" if bug.fixed else "no", kg, sz, sd)
    table.add_row("Total detected", cves, fixed, detected, len(found_syzkaller), len(found_syzdescribe))
    table.add_note("paper: 24 bugs detected by KernelGPT specs, 0 by default Syzkaller or SyzDescribe; "
                   "11 CVEs, 12 fixed")
    table.add_note(f"budget: {budget} programs x {ctx.config.repetitions} repetition(s) per configuration")
    return table


__all__ = ["run_table4"]
