"""Shared evaluation context.

Most tables need the same expensive artifacts: the assembled kernel, the
extractor index, the existing Syzkaller corpus, the missing-spec scan, the
KernelGPT generation run over the incomplete handlers and the SyzDescribe
results over the same targets.  :class:`EvaluationContext` builds each of
them lazily and caches them so that running several experiments in one
process (the benchmark suite, the CLI runner) does the work once.
"""

from __future__ import annotations

from functools import lru_cache

from ..baselines import SyzDescribe, build_syzkaller_corpus
from ..core import GenerationRun, KernelGPT, TargetSelection, select_target_handlers
from ..extractor import KernelExtractor
from ..kernel import KernelCodebase, build_default_kernel
from ..llm import OracleBackend
from ..syzlang import SpecCorpus
from .config import ExperimentConfig, quick


class EvaluationContext:
    """Lazily-built shared state for the evaluation."""

    def __init__(self, config: ExperimentConfig | None = None, kernel: KernelCodebase | None = None):
        self.config = config or quick()
        self._kernel = kernel
        self._extractor: KernelExtractor | None = None
        self._syzkaller: SpecCorpus | None = None
        self._selection: TargetSelection | None = None
        self._kernelgpt: KernelGPT | None = None
        self._generation_run: GenerationRun | None = None
        self._syzdescribe: SyzDescribe | None = None
        self._syzdescribe_results: dict | None = None

    # ------------------------------------------------------------ substrates
    @property
    def kernel(self) -> KernelCodebase:
        if self._kernel is None:
            self._kernel = build_default_kernel(self.config.kernel_scale)
        return self._kernel

    @property
    def extractor(self) -> KernelExtractor:
        if self._extractor is None:
            self._extractor = KernelExtractor(self.kernel)
        return self._extractor

    @property
    def syzkaller_corpus(self) -> SpecCorpus:
        if self._syzkaller is None:
            self._syzkaller = build_syzkaller_corpus(self.kernel)
        return self._syzkaller

    @property
    def selection(self) -> TargetSelection:
        """Loaded handlers with missing descriptions (the §5.1 targets)."""
        if self._selection is None:
            self._selection = select_target_handlers(self.kernel, self.syzkaller_corpus)
        return self._selection

    # ------------------------------------------------------------ generators
    @property
    def kernelgpt(self) -> KernelGPT:
        if self._kernelgpt is None:
            self._kernelgpt = KernelGPT(self.kernel, OracleBackend(), extractor=self.extractor)
        return self._kernelgpt

    @property
    def generation_run(self) -> GenerationRun:
        """KernelGPT specifications for every incomplete handler."""
        if self._generation_run is None:
            self._generation_run = self.kernelgpt.generate_for_handlers(list(self.selection.all_handlers))
        return self._generation_run

    @property
    def syzdescribe(self) -> SyzDescribe:
        if self._syzdescribe is None:
            self._syzdescribe = SyzDescribe(self.kernel, extractor=self.extractor)
        return self._syzdescribe

    @property
    def syzdescribe_results(self) -> dict:
        """SyzDescribe results for the incomplete *driver* handlers."""
        if self._syzdescribe_results is None:
            self._syzdescribe_results = self.syzdescribe.analyze_all(list(self.selection.driver_handlers))
        return self._syzdescribe_results

    # --------------------------------------------------------------- suites
    def kernelgpt_corpus(self) -> SpecCorpus:
        """KernelGPT's valid generated specs as a corpus keyed by handler."""
        corpus = SpecCorpus("kernelgpt")
        for handler, result in self.generation_run.results.items():
            if result.valid:
                corpus.add(handler, result.suite)
        return corpus

    def syzdescribe_corpus(self) -> SpecCorpus:
        corpus = SpecCorpus("syzdescribe")
        for handler, result in self.syzdescribe_results.items():
            if result.valid and result.suite is not None:
                corpus.add(handler, result.suite)
        return corpus


@lru_cache(maxsize=2)
def shared_context(preset: str = "quick") -> EvaluationContext:
    """Process-wide cached context (used by the benchmark modules)."""
    from . import config as config_module

    configuration = config_module.paper() if preset == "paper" else config_module.quick()
    return EvaluationContext(configuration)


__all__ = ["EvaluationContext", "shared_context"]
