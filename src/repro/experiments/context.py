"""Shared evaluation context.

Most tables need the same expensive artifacts: the assembled kernel, the
extractor index, the existing Syzkaller corpus, the missing-spec scan, the
KernelGPT generation run over the incomplete handlers and the SyzDescribe
results over the same targets.  :class:`EvaluationContext` builds each of
them lazily and caches them so that running several experiments in one
process (the benchmark suite, the CLI runner) does the work once.

The context is engine-backed: every instance carries an
:class:`~repro.engine.ExecutionEngine` (serial by default) through which the
generation run fans out and the KernelGPT instance memoizes its LLM queries
and extractor lookups.  Lazy builders are guarded by a re-entrant lock, so
independent tables can run concurrently (the runner's ``--jobs`` flag) and
still build each shared artifact exactly once.
"""

from __future__ import annotations

import threading
from functools import lru_cache

from ..baselines import SyzDescribe, build_syzkaller_corpus
from ..core import GenerationRun, KernelGPT, TargetSelection, select_target_handlers
from ..engine import ExecutionEngine
from ..extractor import KernelExtractor
from ..kernel import KernelCodebase, build_default_kernel
from ..llm import BackendPool, LLMBackend, OracleBackend, backend_for_profile, resilient_analyst
from ..syzlang import SpecCorpus
from .config import ExperimentConfig, quick


class EvaluationContext:
    """Lazily-built shared state for the evaluation."""

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        kernel: KernelCodebase | None = None,
        *,
        engine: ExecutionEngine | None = None,
        analysis_backend: LLMBackend | None = None,
    ):
        self.config = config or quick()
        self.engine = engine or ExecutionEngine(jobs=1)
        #: Injected analyst backend.  The job service sets this so every
        #: job's pipeline (including full experiments) routes its LLM
        #: traffic through the service's shared coalescing front door
        #: instead of building a private backend per context.
        self.analysis_backend = analysis_backend
        self._lock = threading.RLock()
        self._kernel = kernel
        self._extractor: KernelExtractor | None = None
        self._syzkaller: SpecCorpus | None = None
        self._selection: TargetSelection | None = None
        self._kernelgpt: KernelGPT | None = None
        self._generation_run: GenerationRun | None = None
        self._syzdescribe: SyzDescribe | None = None
        self._syzdescribe_results: dict | None = None

    def _build_once(self, attr: str, build):
        """Double-checked lazy construction of a shared artifact.

        The builder runs under the context lock so concurrent tables block
        until the artifact exists, then share the single instance.
        """
        value = getattr(self, attr)
        if value is None:
            with self._lock:
                value = getattr(self, attr)
                if value is None:
                    with self.engine.profile.measure(f"context/{attr.lstrip('_')}"):
                        value = build()
                    setattr(self, attr, value)
        return value

    # ------------------------------------------------------------ substrates
    @property
    def kernel(self) -> KernelCodebase:
        return self._build_once("_kernel", lambda: build_default_kernel(self.config.kernel_scale))

    @property
    def extractor(self) -> KernelExtractor:
        return self._build_once("_extractor", lambda: KernelExtractor(self.kernel))

    @property
    def syzkaller_corpus(self) -> SpecCorpus:
        return self._build_once("_syzkaller", lambda: build_syzkaller_corpus(self.kernel))

    @property
    def selection(self) -> TargetSelection:
        """Loaded handlers with missing descriptions (the §5.1 targets)."""
        return self._build_once(
            "_selection", lambda: select_target_handlers(self.kernel, self.syzkaller_corpus)
        )

    # ------------------------------------------------------------ generators
    def build_analysis_backend(self) -> LLMBackend:
        """The evaluation's analyst: plain oracle, or a kind-routed pool.

        With ``config.route_table`` set (``--route repair=gpt-3.5``) the
        analyst becomes a :class:`~repro.llm.BackendPool` whose default
        member is the paper's GPT-4 oracle plus one member per routed
        capability profile; the pool's kind lookup then steers every prompt
        of a routed kind — the repair stage, typically — to its profile,
        whatever repair mode is active.  Without a route table the plain
        single-backend oracle is used, exactly as before.  An injected
        ``analysis_backend`` (the serving layer's coalescing handle) wins
        over both.

        Resilience wrapping (``config.fault_plan`` / ``config.retry_spec``)
        applies outermost via :func:`~repro.llm.resilient_analyst`, so the
        pool's members only ever see the retry-converged clean traffic;
        ``config.breaker_threshold`` arms per-member circuit breakers inside
        the pool itself.
        """
        if self.analysis_backend is not None:
            return self.analysis_backend
        route_table = dict(self.config.route_table or ())
        if not route_table:
            return resilient_analyst(
                OracleBackend(),
                fault_plan=self.config.fault_plan,
                retry_spec=self.config.retry_spec,
            )
        members: dict[str, LLMBackend] = {"gpt-4": OracleBackend()}
        for label in route_table.values():
            if label not in members:
                members[label] = backend_for_profile(label)
        pool = BackendPool(
            members,
            default="gpt-4",
            routes=route_table,
            schedule=self.config.pool_schedule,
            breaker_threshold=self.config.breaker_threshold,
        )
        return resilient_analyst(
            pool,
            fault_plan=self.config.fault_plan,
            retry_spec=self.config.retry_spec,
        )

    @property
    def kernelgpt(self) -> KernelGPT:
        return self._build_once(
            "_kernelgpt",
            lambda: KernelGPT(
                self.kernel,
                self.build_analysis_backend(),
                extractor=self.extractor,
                engine=self.engine,
                repair_mode=self.config.repair_mode,
            ),
        )

    @property
    def generation_run(self) -> GenerationRun:
        """KernelGPT specifications for every incomplete handler."""
        return self._build_once(
            "_generation_run",
            lambda: self.kernelgpt.generate_for_handlers(
                list(self.selection.all_handlers), engine=self.engine
            ),
        )

    @property
    def syzdescribe(self) -> SyzDescribe:
        return self._build_once(
            "_syzdescribe", lambda: SyzDescribe(self.kernel, extractor=self.extractor)
        )

    @property
    def syzdescribe_results(self) -> dict:
        """SyzDescribe results for the incomplete *driver* handlers."""
        return self._build_once(
            "_syzdescribe_results",
            lambda: self.syzdescribe.analyze_all(list(self.selection.driver_handlers)),
        )

    # --------------------------------------------------------------- suites
    def kernelgpt_corpus(self) -> SpecCorpus:
        """KernelGPT's valid generated specs as a corpus keyed by handler."""
        corpus = SpecCorpus("kernelgpt")
        for handler, result in self.generation_run.results.items():
            if result.valid:
                corpus.add(handler, result.suite)
        return corpus

    def syzdescribe_corpus(self) -> SpecCorpus:
        corpus = SpecCorpus("syzdescribe")
        for handler, result in self.syzdescribe_results.items():
            if result.valid and result.suite is not None:
                corpus.add(handler, result.suite)
        return corpus


@lru_cache(maxsize=4)
def shared_context(
    preset: str = "quick",
    llm_backends: tuple[str, ...] | None = None,
    pool_schedule: str | None = None,
    route_table: tuple[tuple[str, str], ...] | None = None,
    repair_mode: str | None = None,
    store_spec: tuple[str, str | None] | None = None,
    resilience_spec: tuple[str | None, str | None, int | None] | None = None,
) -> EvaluationContext:
    """Process-wide cached context (benchmark modules, process-pool workers).

    ``llm_backends``, ``pool_schedule``, ``route_table`` and ``repair_mode``
    carry the runner's ``--backends`` / ``--pool-schedule`` / ``--route`` /
    ``--repair-mode`` overrides into worker processes, which rebuild their
    context from these plain strings (contexts hold locks and engines that
    cannot cross process boundaries).  ``store_spec`` is the ``--store`` /
    ``--frozen`` pair, ``(store_dir, lockfile_or_None)``: the worker binds a
    serial store-backed engine onto the shared on-disk store (writes merge
    through the store's own locking), and a lockfile additionally pins the
    loads and swaps the analyst for the raising
    :class:`~repro.store.FrozenBackend`.  ``resilience_spec`` is the
    ``(--fault-plan, --retry, --breaker-threshold)`` triple — plain
    hashable strings/ints so it survives both the lru_cache key and the
    process-pool pickle.
    """
    from . import config as config_module

    configuration = config_module.paper() if preset == "paper" else config_module.quick()
    if llm_backends:
        configuration = configuration.with_overrides(llm_backends=tuple(llm_backends))
    if pool_schedule:
        configuration = configuration.with_overrides(pool_schedule=pool_schedule)
    if route_table:
        configuration = configuration.with_overrides(route_table=tuple(route_table))
    if repair_mode:
        configuration = configuration.with_overrides(repair_mode=repair_mode)
    if resilience_spec is not None:
        fault_plan, retry_spec, breaker_threshold = resilience_spec
        configuration = configuration.with_overrides(
            fault_plan=fault_plan,
            retry_spec=retry_spec,
            breaker_threshold=breaker_threshold,
        )
    context_engine = None
    if store_spec is not None:
        from ..store import ArtifactStore, FrozenLock, StoreBinding

        store_dir, frozen_path = store_spec
        frozen = FrozenLock.load(frozen_path) if frozen_path else None
        binding = StoreBinding(ArtifactStore(store_dir), frozen=frozen)
        context_engine = ExecutionEngine(jobs=1, store=binding)
    context = EvaluationContext(configuration, engine=context_engine)
    if store_spec is not None and store_spec[1]:
        from ..store import FrozenBackend

        context.analysis_backend = FrozenBackend(context.build_analysis_backend())
    return context


__all__ = ["EvaluationContext", "shared_context"]
