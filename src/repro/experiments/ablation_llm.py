"""§5.2.3 ablation — LLM choice (GPT-4 vs GPT-3.5 vs GPT-4o capability profiles).

Rebuilt on the batched multi-backend protocol: all capability profiles live
in one routed :class:`~repro.llm.BackendPool`, each profile's generator
stamps its routing tag on every request, and the whole profile × driver
matrix is submitted to the evaluation engine as **one** task batch — a
single engine-sharded run (``kernelgpt-repro --experiment ablation_llm
--jobs 4``) instead of one sequential generator run per model.  Results are
aggregated in (profile, driver) submission order, so the rendered table is
byte-identical to the historical sequential implementation at any jobs
level or executor kind.
"""

from __future__ import annotations

from ..core import KernelGPT
from ..core.tasks import GenerationTask, merge_outcome_side_effects, run_generation_task
from ..engine import POOL_PAYLOAD, TaskSpec
from ..fuzzer import average_coverage, run_repeated_campaigns
from ..kernel import TABLE5_DRIVER_NAMES
from ..llm import PROFILE_FACTORIES, BackendPool, backend_for_profile
from .context import EvaluationContext
from .reporting import TableResult

#: The paper's §5.2.3 line-up, in table order.
DEFAULT_PROFILES = ("gpt-4", "gpt-4o", "gpt-3.5")


def build_profile_pool(labels: tuple[str, ...], *, schedule: str = "tagged") -> BackendPool:
    """A pool with one member backend per requested capability profile.

    ``schedule`` picks the untagged-request placement policy (the ablation
    itself tags every request with its profile label, so the scheduler only
    matters for callers that reuse the pool without routing tags).
    """
    members = {label: backend_for_profile(label) for label in labels}
    return BackendPool(members, schedule=schedule)


def run_routed_generation_task(
    generators: dict[str, KernelGPT],
    label: str,
    task: GenerationTask,
    engine=None,
    *,
    collect_side_effects: bool = False,
):
    """One (profile, driver) cell of the ablation matrix.

    Module-level so it pickles by name; ``generators`` arrives as the
    batch's shared payload (one pickle per worker, not per task — all the
    profile generators share the kernel, extractor and pool).
    """
    return run_generation_task(
        generators[label], task, engine, collect_side_effects=collect_side_effects
    )


def run_ablation_llm(
    ctx: EvaluationContext,
    *,
    drivers: tuple[str, ...] | None = None,
    backends: tuple[str, ...] | None = None,
) -> TableResult:
    """Same drivers, different analyst capability profiles, one sharded run."""
    config = ctx.config
    labels = tuple(backends or config.llm_backends or DEFAULT_PROFILES)
    names = (drivers or TABLE5_DRIVER_NAMES)[: config.ablation_drivers]
    handlers = [ctx.kernel.record_for_name(name).handler_name for name in names]

    pool = build_profile_pool(labels, schedule=config.pool_schedule)
    generators = {
        label: KernelGPT(ctx.kernel, pool, extractor=ctx.extractor, backend_route=label)
        for label in labels
    }

    engine = ctx.engine
    shared = engine.shares_memory
    pairs = [(label, handler) for label in labels for handler in handlers]
    specs = [
        TaskSpec(
            key=f"{label}:{handler}",
            fn=run_routed_generation_task,
            args=(POOL_PAYLOAD, label, GenerationTask(handler), engine if shared else None),
            kwargs=None if shared else {"collect_side_effects": True},
        )
        for label, handler in pairs
    ]
    outcomes = [
        result.value
        for result in engine.run_tasks("ablation-llm", specs, payload=generators)
    ]
    if not shared:
        # Every generator shares the one pool backend, so all worker-side
        # usage merges into the pool's request-level meter at join.
        merge_outcome_side_effects(pool, outcomes)
    results_by_label: dict[str, list] = {label: [] for label in labels}
    for (label, _handler), outcome in zip(pairs, outcomes):
        results_by_label[label].append(outcome.result)

    table = TableResult(
        title="Ablation: LLM choice",
        headers=["Model", "# Syscalls", "# Types", "Cov"],
    )
    for label in labels:
        total_sys = total_types = 0
        total_cov = 0.0
        for result in results_by_label[label]:
            if result is None or not result.valid or not len(result.suite):
                continue
            total_sys += result.syscall_count
            total_types += result.type_count
            campaigns = run_repeated_campaigns(
                ctx.kernel, result.suite,
                repetitions=1,
                budget_programs=config.per_driver_budget,
                base_seed=config.seed,
            )
            total_cov += average_coverage(campaigns)
        table.add_row(label, total_sys, total_types, round(total_cov))
    table.add_note("paper: GPT-4 143 syscalls / 54,640 cov; GPT-4o 144 / 55,771; "
                   "GPT-3.5 85 syscalls (-40%), coverage -21%")
    return table


__all__ = [
    "run_ablation_llm",
    "run_routed_generation_task",
    "build_profile_pool",
    "PROFILE_FACTORIES",
    "DEFAULT_PROFILES",
]
