"""§5.2.3 ablation — LLM choice (GPT-4 vs GPT-3.5 vs GPT-4o capability profiles)."""

from __future__ import annotations

from ..core import KernelGPT
from ..fuzzer import average_coverage, run_repeated_campaigns
from ..kernel import TABLE5_DRIVER_NAMES
from ..llm import DegradedBackend
from .context import EvaluationContext
from .reporting import TableResult


def run_ablation_llm(ctx: EvaluationContext, *, drivers: tuple[str, ...] | None = None) -> TableResult:
    """Same drivers, different analyst capability profiles."""
    config = ctx.config
    names = (drivers or TABLE5_DRIVER_NAMES)[: config.ablation_drivers]
    backends = {
        "gpt-4": DegradedBackend.gpt4(),
        "gpt-4o": DegradedBackend.gpt4o(),
        "gpt-3.5": DegradedBackend.gpt35(),
    }
    table = TableResult(
        title="Ablation: LLM choice",
        headers=["Model", "# Syscalls", "# Types", "Cov"],
    )
    for label, backend in backends.items():
        generator = KernelGPT(ctx.kernel, backend, extractor=ctx.extractor)
        total_sys = total_types = 0
        total_cov = 0.0
        for name in names:
            handler = ctx.kernel.record_for_name(name).handler_name
            result = generator.generate_for_handler(handler)
            if not result.valid or not len(result.suite):
                continue
            total_sys += result.syscall_count
            total_types += result.type_count
            campaigns = run_repeated_campaigns(
                ctx.kernel, result.suite,
                repetitions=1,
                budget_programs=config.per_driver_budget,
                base_seed=config.seed,
            )
            total_cov += average_coverage(campaigns)
        table.add_row(label, total_sys, total_types, round(total_cov))
    table.add_note("paper: GPT-4 143 syscalls / 54,640 cov; GPT-4o 144 / 55,771; "
                   "GPT-3.5 85 syscalls (-40%), coverage -21%")
    return table


__all__ = ["run_ablation_llm"]
