"""Deterministic fault injection for the LLM serving stack.

Resilience code that is only ever exercised by real outages is dead code
until the worst moment; this module makes faults a first-class, *seeded*
input instead.  A :class:`FaultPlan` is a pure function from
``(route, prompt digest, occurrence)`` to "inject this fault kind or
nothing", derived from a seed the same way the engine derives per-task
seeds — so a chaos run is exactly as reproducible as a fault-free one, and
determinism rule 11 (DESIGN.md) can demand byte-identical final outputs
across jobs × executor × fault rate.

:class:`FaultyBackend` applies a plan in front of any backend.  Faults are
raised *before* the inner backend sees the request, so a faulted request is
never metered or budget-charged until the attempt that actually serves it —
which is what keeps usage totals identical to the fault-free run once a
retry layer converges.  The non-faulted remainder of a batch is still
served (one inner ``complete_batch``), and the raised error carries that
partial outcome (:meth:`~repro.errors.BackendError.attach_batch_state`) so
retry layers re-send only what failed.

Occurrence counters are **worker-local**, the same contract as the replay
backend: pickling into a process worker resets them, so every worker sees
a self-consistent fault schedule starting at occurrence zero.  Keys are
per ``(route, digest)``, so concurrent batches cannot interleave their way
into different fault decisions for the same request.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Sequence

from ..errors import (
    BackendError,
    BackendTimeout,
    MalformedReply,
    RateLimited,
    TransientBackendError,
)
from .backend import Completion, LLMBackend, LLMRequest, Prompt

#: Injectable fault kinds, in schedule-draw order (the order is part of the
#: plan's determinism contract — reordering changes which fault a draw maps
#: to).  "permanent" is available for targeted tests but excluded from the
#: default rotation: a default chaos run must converge under retries.
FAULT_KINDS = ("transient", "timeout", "rate-limit", "malformed", "permanent")

_DEFAULT_KINDS = ("transient", "timeout", "rate-limit", "malformed")


def request_digest(request: "LLMRequest | Prompt") -> str:
    """The per-request fault key: a digest over the full batch key.

    Covers route + prompt kind/subject/text — the same identity the batch
    dedupe uses — so two requests that could dedupe to one completion also
    share one fault schedule.
    """
    request = LLMRequest.of(request)
    route, kind, subject, text = request.batch_key()
    payload = f"{route or ''}\x00{kind}\x00{subject}\x00{text}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class FaultPlan:
    """A picklable, seed-derived fault schedule.

    ``fault_for`` draws from a hash of ``(seed, route, digest, occurrence)``
    — no mutable RNG state — so any two plan instances with equal fields
    agree on every decision, across threads, processes and interpreter
    runs.  ``max_faults_per_key`` caps consecutive injections per request
    key: with the default cap of 2 (below any sane retry budget) every
    request is guaranteed to succeed by its third attempt, which is what
    makes chaos runs converge to the fault-free output.
    """

    rate: float = 0.0
    seed: int = 0
    kinds: tuple[str, ...] = _DEFAULT_KINDS
    max_faults_per_key: int = 2
    retry_after: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        for kind in self.kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; choose from {', '.join(FAULT_KINDS)}"
                )
        if not self.kinds:
            raise ValueError("a FaultPlan needs at least one fault kind")

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a ``--fault-plan`` CLI spec.

        Comma-separated ``key=value`` fields: ``rate`` (required),
        ``seed``, ``max`` (faults per key), ``retry-after`` (seconds), and
        ``kinds`` as a ``+``-joined list, e.g.
        ``rate=0.2,seed=11,kinds=timeout+rate-limit``.  A bare number is
        shorthand for ``rate=N``.
        """
        fields: dict[str, object] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, separator, value = part.partition("=")
            if not separator:
                key, value = "rate", key
            key, value = key.strip(), value.strip()
            try:
                if key == "rate":
                    fields["rate"] = float(value)
                elif key == "seed":
                    fields["seed"] = int(value)
                elif key == "max":
                    fields["max_faults_per_key"] = int(value)
                elif key == "retry-after":
                    fields["retry_after"] = float(value)
                elif key == "kinds":
                    fields["kinds"] = tuple(
                        kind.strip() for kind in value.split("+") if kind.strip()
                    )
                else:
                    raise ValueError(f"unknown fault-plan field {key!r}")
            except ValueError as error:
                raise ValueError(f"bad fault-plan spec {spec!r}: {error}") from None
        if "rate" not in fields:
            raise ValueError(f"fault-plan spec {spec!r} needs rate=N")
        return cls(**fields)  # type: ignore[arg-type]

    def describe(self) -> str:
        """A stable one-line summary (CLI/event-log diagnostics)."""
        return (
            f"rate={self.rate},seed={self.seed},max={self.max_faults_per_key},"
            f"kinds={'+'.join(self.kinds)}"
        )

    def fault_for(self, route: str | None, digest: str, occurrence: int) -> str | None:
        """The fault to inject for this attempt, or ``None`` to serve it.

        Pure and stateless: one SHA-256 draw decides both whether to fault
        (first 8 bytes as a uniform draw against ``rate``) and which kind
        (next 4 bytes mod ``len(kinds)``).
        """
        if self.rate <= 0.0 or occurrence >= self.max_faults_per_key:
            return None
        payload = f"fault-plan-v1\x00{self.seed}\x00{route or ''}\x00{digest}\x00{occurrence}"
        draw = hashlib.sha256(payload.encode("utf-8")).digest()
        if int.from_bytes(draw[:8], "big") / 2**64 >= self.rate:
            return None
        return self.kinds[int.from_bytes(draw[8:12], "big") % len(self.kinds)]

    def error_for(
        self, kind: str, request: LLMRequest, occurrence: int
    ) -> BackendError:
        """Construct the typed error for one injected fault."""
        subject = request.prompt.subject
        route = request.route
        where = f"{request.prompt.kind}/{subject}" + (f" via {route}" if route else "")
        detail = f"injected {kind} fault (occurrence {occurrence}) for {where}"
        if kind == "timeout":
            return BackendTimeout(detail, timeout=30.0, route=route, subject=subject)
        if kind == "rate-limit":
            return RateLimited(
                detail, retry_after=self.retry_after, route=route, subject=subject
            )
        if kind == "malformed":
            return MalformedReply(detail, excerpt="<truncated reply>", route=route, subject=subject)
        if kind == "permanent":
            return BackendError(detail, route=route, subject=subject)
        return TransientBackendError(detail, route=route, subject=subject)


@dataclass
class FaultStats:
    """Per-backend injection accounting (worker-local, like the counters)."""

    attempts: int = 0
    faults_injected: int = 0
    by_kind: dict = field(default_factory=dict)

    def note(self, kind: str) -> None:
        self.faults_injected += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1

    def summary(self) -> dict:
        return {
            "attempts": self.attempts,
            "faults_injected": self.faults_injected,
            "by_kind": dict(self.by_kind),
        }


class FaultyBackend(LLMBackend):
    """Injects a :class:`FaultPlan` in front of any backend.

    Transparent when no fault fires: the inner backend serves the batch and
    owns all metering/budget accounting (``self.usage`` *is* the inner
    meter), so layers above — and persistent-store keys, via the delegated
    :meth:`store_profile` — cannot tell the wrapper is there.  When faults
    fire, the non-faulted remainder is still served in one inner call and
    the first faulted position's error raises with the batch state
    attached.
    """

    def __init__(self, inner: LLMBackend, plan: FaultPlan):
        super().__init__(model=f"faulty({inner.model})")
        self.inner = inner
        self.plan = plan
        # Share the inner meter: a faulted request is charged only by the
        # attempt that serves it, so converged totals match fault-free runs.
        self.usage = inner.usage
        self.stats = FaultStats()
        self._counter_lock = threading.Lock()
        self._occurrences: dict[tuple, int] = {}

    def store_profile(self) -> str:
        """Delegate: injected faults never change a *served* completion."""
        return self.inner.store_profile()

    def remaining_budget(self) -> int | None:
        return self.inner.remaining_budget()

    def note_external_queries(self, queries: int) -> None:
        self.inner.note_external_queries(queries)

    def complete_batch(self, requests: "Sequence[LLMRequest | Prompt]") -> list[Completion]:
        normalized = [LLMRequest.of(item) for item in requests]
        if not normalized:
            return []
        # Distinct keys in first-appearance order; one fault decision per
        # distinct request per attempt, applied at every duplicate position.
        decisions: dict[tuple, tuple[str | None, int]] = {}
        with self._counter_lock:
            for request in normalized:
                key = request.batch_key()
                if key in decisions:
                    continue
                occurrence = self._occurrences.get(key, 0)
                self._occurrences[key] = occurrence + 1
                fault = self.plan.fault_for(request.route, request_digest(request), occurrence)
                decisions[key] = (fault, occurrence)
                self.stats.attempts += 1
        clean_positions = [
            index for index, request in enumerate(normalized)
            if decisions[request.batch_key()][0] is None
        ]
        if len(clean_positions) == len(normalized):
            return self.inner.complete_batch(normalized)
        served: dict[int, Completion] = {}
        if clean_positions:
            completions = self.inner.complete_batch(
                [normalized[index] for index in clean_positions]
            )
            served = dict(zip(clean_positions, completions))
        failed: list[tuple[int, BaseException]] = []
        primary: BackendError | None = None
        for index, request in enumerate(normalized):
            fault, occurrence = decisions[request.batch_key()]
            if fault is None:
                continue
            error = self.plan.error_for(fault, request, occurrence)
            failed.append((index, error))
            if primary is None:
                primary = error
                self.stats.note(fault)
        assert primary is not None
        primary.attach_batch_state(served, tuple(failed))
        raise primary

    # Worker-local occurrence counters: a pickled copy starts its schedule
    # at occurrence zero, the same contract as the replay backend's cursor.
    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state.pop("_counter_lock", None)
        state["_occurrences"] = {}
        state["stats"] = FaultStats()
        return state

    def __setstate__(self, state: dict) -> None:
        super().__setstate__(state)
        self._counter_lock = threading.Lock()


__all__ = ["FAULT_KINDS", "FaultPlan", "FaultStats", "FaultyBackend", "request_digest"]
