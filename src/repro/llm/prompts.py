"""Prompt construction and structured-reply parsing.

KernelGPT communicates with the analysis LLM through text.  Prompts follow
the template of the paper's Figure 6: a task instruction, the unknown
functions/types carried over from the previous iteration (with their usage
context), the source code of the relevant definitions, and few-shot examples
that fix the output format.  Completions come back in a light-weight
structured format (sections of ``- KEY: value | KEY: value`` records plus
literal syzlang blocks) which :func:`parse_reply` turns into a
:class:`ParsedReply` for the pipeline.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .backend import Prompt

# ---------------------------------------------------------------------------
# Few-shot examples (abridged versions of the paper's running examples)
# ---------------------------------------------------------------------------

IDENTIFIER_FEWSHOT = """\
### Example
### Source Code of Relevant Functions
static long msm_ioctl(struct file *file, unsigned int cmd, unsigned long arg)
{
	void __user *argp = (void __user *)arg;
	switch (cmd) {
	case DRM_IOCTL_MSM_SUBMITQUEUE_NEW:
		return msm_submitqueue_new(file, argp);
	default:
		return -ENOTTY;
	}
}
### Registration
static struct miscdevice _msm_misc = {
	.name = "msm",
	.fops = &msm_fops,
};
### Reply
### DEVICE
- PATH: /dev/msm
### IDENTIFIERS
- IDENT: DRM_IOCTL_MSM_SUBMITQUEUE_NEW | HANDLER: msm_submitqueue_new | SYSCALL: ioctl
### UNKNOWN
(none)
"""

TYPE_FEWSHOT = """\
### Example
### Source Code of Relevant Functions
static int msm_submitqueue_new(struct file *file, void __user *argp)
{
	struct drm_msm_submitqueue args;

	if (copy_from_user(&args, argp, sizeof(struct drm_msm_submitqueue)))
		return -EFAULT;
	if (args.prio > 3)
		return -EINVAL;
	return 0;
}
struct drm_msm_submitqueue {
	__u32 flags;
	__u32 prio;
	__u32 id;	/* written by the kernel */
};
### Reply
### ARGTYPE
- IDENT: DRM_IOCTL_MSM_SUBMITQUEUE_NEW | TYPE: drm_msm_submitqueue | DIR: inout
### TYPEDEF
drm_msm_submitqueue {
	flags int32
	prio int32[0:3]
	id int32 (out)
}
### UNKNOWN
(none)
"""

DEPENDENCY_FEWSHOT = """\
### Example
### Source Code of Relevant Functions
static int kvm_dev_ioctl_create_vm(struct file *file, void __user *argp)
{
	return anon_inode_getfd("kvm-vm", &kvm_vm_fops, kvm, O_RDWR | O_CLOEXEC);
}
### Reply
### DEPENDENCY
- IDENT: KVM_CREATE_VM | PRODUCES: kvm_vm | HANDLER: kvm_vm_fops
### UNKNOWN
- HANDLER: kvm_vm_fops
"""

REPAIR_FEWSHOT = """\
### Example
### Invalid Description
ioctl$FOO_SET(fd fd_foo, cmd const[FOO_SETT, int32], arg ptr[in, foo_args])
### Error Messages
error: ioctl$FOO_SET: constant 'FOO_SETT' cannot be resolved against kernel headers [unknown-constant]
### Relevant Source Code
#define FOO_SET 0x40044600
### Reply
### REPAIRED
ioctl$FOO_SET(fd fd_foo, cmd const[FOO_SET, int32], arg ptr[in, foo_args])
"""


# ---------------------------------------------------------------------------
# Prompt builders
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class UnknownItem:
    """An unknown definition carried from one analysis step to the next."""

    kind: str   # "func" | "struct" | "handler" | "table"
    name: str
    usage: str = ""

    def render(self) -> str:
        usage = f" | USAGE: {self.usage}" if self.usage else ""
        return f"- {self.kind.upper()}: {self.name}{usage}"


class PromptLibrary:
    """Builds the prompts for every pipeline stage.

    ``fewshot=False`` drops the in-context examples (an ablation knob: the
    paper attributes part of the output formatting reliability to few-shot
    prompting).
    """

    def __init__(self, *, fewshot: bool = True, max_code_chars: int = 16000):
        self._fewshot = fewshot
        self._max_code_chars = max_code_chars

    # -------------------------------------------------------------- helpers
    def _clip(self, code: str) -> str:
        if len(code) <= self._max_code_chars:
            return code
        return code[: self._max_code_chars] + "\n/* ... truncated ... */"

    def _sections(self, *sections: tuple[str, str]) -> str:
        parts = []
        for title, body in sections:
            if body:
                parts.append(f"## {title}\n{body.rstrip()}")
        return "\n\n".join(parts) + "\n"

    # -------------------------------------------------------------- prompts
    def identifier_prompt(
        self,
        subject: str,
        *,
        kind: str,
        registration: str,
        code: str,
        unknowns: list[UnknownItem] | None = None,
    ) -> Prompt:
        """Prompt for the identifier-deduction stage (§3.1.1, Figure 6)."""
        instruction = (
            "Please analyse the following kernel "
            f"{kind} operation handler and deduce the identifier values "
            "(device path / socket family, ioctl command macros, socket option names) "
            "used to reach each operation. If the command handling is delegated to "
            "another function that is not shown, list it in the UNKNOWN section."
        )
        unknown_text = "\n".join(item.render() for item in (unknowns or [])) or "(none)"
        return Prompt(
            kind="identifier",
            subject=subject,
            text=self._sections(
                ("Instruction", instruction),
                ("Unknown", unknown_text),
                ("Registration", self._clip(registration)),
                ("Source Code of Relevant Functions", self._clip(code)),
                ("Few-shot", IDENTIFIER_FEWSHOT if self._fewshot else ""),
            ),
        )

    def type_prompt(
        self,
        subject: str,
        *,
        identifier: str,
        code: str,
        unknowns: list[UnknownItem] | None = None,
    ) -> Prompt:
        """Prompt for the type-recovery stage (§3.1.2)."""
        instruction = (
            f"Determine the argument type used by operation {identifier} and produce a "
            "Syzkaller type description. Express semantic relationships between fields "
            "(length fields, output fields, value ranges). If a nested type's definition "
            "is not shown, list it in the UNKNOWN section."
        )
        unknown_text = "\n".join(item.render() for item in (unknowns or [])) or "(none)"
        return Prompt(
            kind="type",
            subject=subject,
            text=self._sections(
                ("Instruction", instruction),
                ("Operation", f"- IDENT: {identifier}"),
                ("Unknown", unknown_text),
                ("Source Code of Relevant Functions", self._clip(code)),
                ("Few-shot", TYPE_FEWSHOT if self._fewshot else ""),
            ),
        )

    def dependency_prompt(self, subject: str, *, code: str) -> Prompt:
        """Prompt for the dependency-analysis stage (§3.1.3)."""
        instruction = (
            "Determine whether any of these operations create a new resource (for example "
            "a file descriptor returned through anon_inode_getfd) that other operation "
            "handlers consume. List newly discovered handlers in the UNKNOWN section."
        )
        return Prompt(
            kind="dependency",
            subject=subject,
            text=self._sections(
                ("Instruction", instruction),
                ("Source Code of Relevant Functions", self._clip(code)),
                ("Few-shot", DEPENDENCY_FEWSHOT if self._fewshot else ""),
            ),
        )

    def repair_prompt(self, subject: str, *, description: str, errors: str, code: str) -> Prompt:
        """Prompt for the validation-and-repair phase (§3.2)."""
        instruction = (
            "The following Syzkaller description failed validation. Use the error messages "
            "and the kernel source code to produce a corrected description."
        )
        return Prompt(
            kind="repair",
            subject=subject,
            text=self._sections(
                ("Instruction", instruction),
                ("Invalid Description", description),
                ("Error Messages", errors),
                ("Relevant Source Code", self._clip(code)),
                ("Few-shot", REPAIR_FEWSHOT if self._fewshot else ""),
            ),
        )

    def repair_item_prompt(
        self,
        handler: str,
        *,
        subject: str,
        error_code: str,
        description: str,
        errors: str,
        code: str,
    ) -> Prompt:
        """Prompt for one transactional repair item (§3.2, batched protocol).

        One item is all of one declaration's validation issues of one error
        class (see :class:`repro.core.repair.RepairItem`); the prompt lists
        every one of them so a single reply can fix the whole class at
        once.  The returned prompt keeps ``kind="repair"`` and
        ``subject=handler`` — the same attribution the per-query
        :meth:`repair_prompt` uses — so backends whose behaviour keys off
        the prompt subject (the oracle's per-handler repair-capability
        draw) treat both repair modes identically; the repaired declaration
        itself is named in the Repair Target section.
        """
        instruction = (
            "The following Syzkaller description failed validation. Every error below is "
            f"of the class [{error_code}] and concerns the declaration {subject!r}. "
            "Use the error messages and the kernel source code to produce a corrected "
            "description fixing all of them."
        )
        return Prompt(
            kind="repair",
            subject=handler,
            text=self._sections(
                ("Instruction", instruction),
                ("Repair Target", f"- SUBJECT: {subject} | CLASS: {error_code}"),
                ("Invalid Description", description),
                ("Error Messages", errors),
                ("Relevant Source Code", self._clip(code)),
                ("Few-shot", REPAIR_FEWSHOT if self._fewshot else ""),
            ),
        )

    def all_in_one_prompt(self, subject: str, *, kind: str, registration: str, code: str) -> Prompt:
        """Single-shot prompt used by the §5.2.3 iterative-vs-all-in-one ablation."""
        instruction = (
            "Analyse all of the following kernel source code at once and produce the complete "
            "Syzkaller specification (device path, every command identifier, argument types and "
            "dependencies) in a single reply."
        )
        return Prompt(
            kind="all-in-one",
            subject=subject,
            text=self._sections(
                ("Instruction", instruction),
                ("Registration", self._clip(registration)),
                ("Source Code", self._clip(code)),
                ("Few-shot", (IDENTIFIER_FEWSHOT + TYPE_FEWSHOT) if self._fewshot else ""),
            ),
        )


# ---------------------------------------------------------------------------
# Reply parsing
# ---------------------------------------------------------------------------


@dataclass
class ParsedReply:
    """Structured view of a completion."""

    device_path: str | None = None
    socket_family: str | None = None
    socket_type: int | None = None
    socket_protocol: int | None = None
    identifiers: list[dict] = field(default_factory=list)
    argtypes: list[dict] = field(default_factory=list)
    typedefs: list[tuple[str, str]] = field(default_factory=list)
    dependencies: list[dict] = field(default_factory=list)
    unknowns: list[UnknownItem] = field(default_factory=list)
    repaired_text: str = ""


_SECTION_RE = re.compile(r"^##\s+(?P<name>[A-Z\- ]+)\s*$")
_RECORD_RE = re.compile(r"^-\s+(?P<body>.+)$")


def _parse_record(body: str) -> dict:
    record: dict = {}
    for chunk in body.split("|"):
        if ":" not in chunk:
            continue
        key, _, value = chunk.partition(":")
        record[key.strip().upper()] = value.strip()
    return record


def parse_reply(text: str) -> ParsedReply:
    """Parse a completion into a :class:`ParsedReply`.

    Unknown sections and malformed records are skipped rather than rejected —
    the pipeline treats an unparsable reply as an empty one and lets
    validation/repair handle the consequences, mirroring how KernelGPT copes
    with occasional LLM formatting slips.
    """
    reply = ParsedReply()
    current: str | None = None
    typedef_lines: list[str] = []
    typedef_name: str | None = None
    repaired_lines: list[str] = []

    def _flush_typedef() -> None:
        nonlocal typedef_name, typedef_lines
        if typedef_name is not None and typedef_lines:
            reply.typedefs.append((typedef_name, "\n".join(typedef_lines).strip()))
        typedef_name = None
        typedef_lines = []

    for raw_line in text.splitlines():
        line = raw_line.rstrip()
        section_match = _SECTION_RE.match(line.strip())
        if section_match:
            _flush_typedef()
            current = section_match.group("name").strip().upper()
            continue
        if not line.strip() or line.strip() == "(none)":
            continue
        if current == "TYPEDEF":
            stripped = line.strip()
            open_match = re.match(r"^(?P<name>\w+)\s*[{\[]\s*$", stripped)
            if open_match and typedef_name is None:
                typedef_name = open_match.group("name")
                typedef_lines = [stripped]
            elif typedef_name is not None:
                typedef_lines.append(raw_line)
                if stripped.startswith("}") or stripped.startswith("]"):
                    _flush_typedef()
            continue
        if current == "REPAIRED":
            repaired_lines.append(raw_line)
            continue
        record_match = _RECORD_RE.match(line.strip())
        if not record_match:
            continue
        record = _parse_record(record_match.group("body"))
        if current == "DEVICE" and "PATH" in record:
            reply.device_path = record["PATH"]
        elif current == "SOCKET":
            reply.socket_family = record.get("FAMILY", reply.socket_family)
            if "TYPE" in record and record["TYPE"].isdigit():
                reply.socket_type = int(record["TYPE"])
            if "PROTO" in record and record["PROTO"].lstrip("-").isdigit():
                reply.socket_protocol = int(record["PROTO"])
        elif current == "IDENTIFIERS":
            reply.identifiers.append(record)
        elif current == "ARGTYPE":
            reply.argtypes.append(record)
        elif current == "DEPENDENCY":
            reply.dependencies.append(record)
        elif current == "UNKNOWN":
            for kind in ("FUNC", "STRUCT", "HANDLER", "TABLE"):
                if kind in record:
                    reply.unknowns.append(
                        UnknownItem(kind=kind.lower(), name=record[kind], usage=record.get("USAGE", ""))
                    )
                    break
    _flush_typedef()
    reply.repaired_text = "\n".join(repaired_lines).strip()
    return reply


__all__ = [
    "PromptLibrary",
    "UnknownItem",
    "ParsedReply",
    "parse_reply",
    "IDENTIFIER_FEWSHOT",
    "TYPE_FEWSHOT",
    "DEPENDENCY_FEWSHOT",
    "REPAIR_FEWSHOT",
]
