"""Deterministic test backends: scripted replies and request recording.

Both backends are **engine-safe**: they may be shared by any number of
concurrent generation sessions (thread fan-out) or pickled into process-pool
task payloads, and still behave exactly as they would under a serial run.

The original implementations kept unsynchronized FIFO queues — the reply a
prompt received depended on how the schedule interleaved ``pop(0)`` calls,
so they were documented serial-only.  The rewrite keys replies **per
prompt**, by a stable content digest (:func:`prompt_key`):

* an exact-prompt script (:meth:`ReplayBackend.script`) binds a reply
  sequence to one specific prompt;
* a kind-level reply list (:meth:`ReplayBackend.add_reply`) serves *each
  distinct prompt* of that kind independently: the i-th time one exact
  prompt is asked it receives the i-th reply (the last reply repeats once
  the list is exhausted).

Because the reply is a function of (prompt content, per-prompt occurrence
index) — never of global arrival order — any executor schedule produces the
same completion for the same prompt.  One scoping rule for process shards:
occurrence counters are **worker-local** (a pickled copy starts at zero and
counters are not merged back), so a multi-reply sequence only advances
within one shard — a prompt that must be asked repeatedly *across* shards
should be scripted with a single reply, which is also the only pattern
whose cross-shard semantics are meaningful (shards have no global "i-th
ask" order to agree on).  Recording appends under a lock, and process
workers return their recorded exchanges through task outcomes which the
parent merges at join (:meth:`RecordingBackend.merge_exchanges`), in
submission order, so the merged transcript is schedule-independent too.

**Interaction with the artifact store** (repro.store): store hydration
happens *above* the backend — the engine's
:class:`~repro.store.StoreBinding` serves stored completions without
calling ``complete_batch`` — so a hydrated reply advances **no** occurrence
counter, records **no** exchange, and meters **no** usage.  A warm start
therefore cannot double-count usage: the backend's
:class:`~repro.llm.UsageMeter` reflects real traffic only, while
run-attributed totals (``GenerationRun.usage_summary``) travel inside the
stored session artifacts and stay byte-identical.  The flip side mirrors
the worker-local counter contract above: the store pins whichever
occurrence of a multi-reply sequence was live when the artifact was first
saved, so a warm rerun replays *that* reply instead of advancing the
sequence — cross-run multi-reply semantics would need a global "i-th ask"
order that, exactly as across process shards, does not exist.  Scripts
that must vary across runs belong outside the store (or under a different
:meth:`ReplayBackend.store_profile`, which digests the reply tables and so
already separates differently-scripted backends).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass

from ..errors import LLMProtocolError
from .backend import Completion, LLMBackend, LLMRequest, Prompt


def prompt_key(prompt: Prompt) -> str:
    """A stable content digest identifying one exact prompt.

    Derived from the prompt's kind, subject and full text via SHA-256 — the
    same prompt hashes identically in every worker process regardless of
    ``PYTHONHASHSEED``, which is what lets replay scripts and recorded
    transcripts be keyed consistently across process shards.
    """
    digest = hashlib.sha256()
    for part in (prompt.kind, prompt.subject, prompt.text):
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()[:24]


class ReplayBackend(LLMBackend):
    """Returns canned completions keyed by prompt content.

    Useful in unit tests that exercise the pipeline's control flow without
    depending on the oracle's analysis.  A prompt with neither an exact
    script nor a kind-level reply raises ``LLMProtocolError`` (unless a
    ``default`` was provided).
    """

    def __init__(
        self,
        replies: dict[str, list[str]] | None = None,
        *,
        default: str | None = None,
        query_budget: int | None = None,
    ):
        super().__init__(model="replay", query_budget=query_budget)
        self._kind_replies: dict[str, list[str]] = {
            kind: list(items) for kind, items in (replies or {}).items()
        }
        self._scripted: dict[str, list[str]] = {}
        self._default = default
        # Per-prompt occurrence counters (content digest -> times asked).
        # The lock only orders counter bumps for *identical* concurrent
        # prompts; distinct prompts never contend on reply choice.
        self._counts: dict[str, int] = {}
        self._replay_lock = threading.Lock()

    def script(self, prompt: Prompt, *texts: str) -> None:
        """Bind a reply sequence to one exact prompt (content-hash keyed)."""
        if not texts:
            raise ValueError("script() needs at least one reply text")
        self._scripted.setdefault(prompt_key(prompt), []).extend(texts)

    def add_reply(self, kind: str, text: str) -> None:
        """Append a kind-level reply, served per distinct prompt of ``kind``."""
        self._kind_replies.setdefault(kind, []).append(text)

    def complete_batch(self, requests) -> list[Completion]:
        """Serve a batch through the base template.

        Replies remain a function of (prompt content, per-prompt occurrence
        index): in-batch duplicates are deduped by the template, so they all
        receive the completion of one occurrence — the same collapse the
        engine's single-flight cache applies to concurrent identical
        prompts — and the occurrence counter advances once per batch.
        """
        return self._serve_batch(requests)

    def complete(self, prompt: Prompt) -> Completion:
        key = prompt_key(prompt)
        with self._replay_lock:
            occurrence = self._counts.get(key, 0)
            self._counts[key] = occurrence + 1
        sequence = self._scripted.get(key) or self._kind_replies.get(prompt.kind)
        if sequence:
            return Completion(text=sequence[min(occurrence, len(sequence) - 1)], model=self.model)
        if self._default is not None:
            return Completion(text=self._default, model=self.model)
        raise LLMProtocolError(f"no scripted reply for prompt kind {prompt.kind!r}")

    def store_profile(self) -> str:
        """Identity for persistent cache keys: a digest of the reply tables.

        Covers the scripted sequences, kind-level replies and the default —
        differently-scripted replay backends never share stored artifacts.
        Occurrence *counters* are deliberately excluded: they are run-local
        mutable state (worker-local by the same contract as pickling), and
        including them would make every ask rotate the key space.  The
        consequence, documented in the module docstring, is that the store
        pins the first-saved occurrence of a multi-reply sequence.
        """
        digest = hashlib.sha256()
        for kind in sorted(self._kind_replies):
            digest.update(f"kind:{kind}".encode("utf-8"))
            for text in self._kind_replies[kind]:
                digest.update(text.encode("utf-8"))
                digest.update(b"\x00")
        for key in sorted(self._scripted):
            digest.update(f"script:{key}".encode("utf-8"))
            for text in self._scripted[key]:
                digest.update(text.encode("utf-8"))
                digest.update(b"\x00")
        if self._default is not None:
            digest.update(b"default:")
            digest.update(self._default.encode("utf-8"))
        return f"replay:{digest.hexdigest()[:16]}"

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state.pop("_replay_lock", None)
        # Occurrence counters are worker-local by contract (see the module
        # docstring): a copy starts counting from zero rather than from a
        # meaningless snapshot of the parent's history.
        state["_counts"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        super().__setstate__(state)
        self._replay_lock = threading.Lock()


@dataclass(frozen=True)
class RecordedExchange:
    """One prompt/completion pair captured by :class:`RecordingBackend`."""

    prompt: Prompt
    completion: Completion

    @property
    def key(self) -> str:
        return prompt_key(self.prompt)


class RecordingBackend(LLMBackend):
    """Wraps another backend and records every exchange (for inspection/tests)."""

    def __init__(self, inner: LLMBackend):
        super().__init__(model=f"recording({inner.model})")
        self._inner = inner
        self.exchanges: list[RecordedExchange] = []
        self._record_lock = threading.Lock()

    def complete_batch(self, requests) -> list[Completion]:
        """Forward the distinct sub-batch to the inner backend, recording it.

        The inner backend sees one ``complete_batch`` call per wrapper batch
        (so its own batch semantics — dedupe, budget, metering — apply at
        the same granularity), and one exchange is recorded per distinct
        request, in request order.
        """
        return self._serve_batch(requests, complete_many=self._complete_and_record)

    def store_profile(self) -> str:
        """Delegate to the wrapped backend: recording never changes completions.

        Artifacts stored through a recording wrapper are hits for the bare
        backend (and vice versa) — and store hydration bypasses the wrapper
        entirely, so hydrated replies are never re-recorded into the
        transcript (see the module docstring).
        """
        return self._inner.store_profile()

    def _complete_and_record(self, requests: list[LLMRequest]) -> list[Completion]:
        completions = self._inner.complete_batch(requests)
        with self._record_lock:
            self.exchanges.extend(
                RecordedExchange(prompt=request.prompt, completion=completion)
                for request, completion in zip(requests, completions)
            )
        return completions

    def merge_exchanges(self, exchanges: list[RecordedExchange]) -> None:
        """Fold exchanges recorded by a worker-process copy into this backend.

        Callers merge worker outcomes in task-submission order, which keeps
        the combined transcript identical for any process schedule.
        """
        with self._record_lock:
            self.exchanges.extend(exchanges)

    def take_exchanges(self, start: int = 0) -> list[RecordedExchange]:
        """Snapshot the exchanges recorded at or after index ``start``."""
        with self._record_lock:
            return list(self.exchanges[start:])

    def prompts_of_kind(self, kind: str) -> list[Prompt]:
        with self._record_lock:
            return [exchange.prompt for exchange in self.exchanges if exchange.prompt.kind == kind]

    def exchanges_for(self, prompt: Prompt) -> list[RecordedExchange]:
        """Every recorded exchange whose prompt content matches ``prompt``."""
        key = prompt_key(prompt)
        with self._record_lock:
            return [exchange for exchange in self.exchanges if exchange.key == key]

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state.pop("_record_lock", None)
        # Workers never need the parent's transcript — shipping it would
        # grow every task payload by the full recorded history.  A pickled
        # copy starts empty and returns only what it records itself.
        state["exchanges"] = []
        return state

    def __setstate__(self, state: dict) -> None:
        super().__setstate__(state)
        self._record_lock = threading.Lock()


__all__ = ["ReplayBackend", "RecordingBackend", "RecordedExchange", "prompt_key"]
