"""Deterministic test backends: scripted replies and request recording."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import LLMProtocolError
from .backend import Completion, LLMBackend, Prompt


class ReplayBackend(LLMBackend):
    """Returns canned completions, matched by prompt kind (in order).

    Useful in unit tests that exercise the pipeline's control flow without
    depending on the oracle's analysis.  Replies are consumed FIFO per kind;
    running out of scripted replies raises ``LLMProtocolError``.
    """

    def __init__(self, replies: dict[str, list[str]] | None = None, *, default: str | None = None):
        super().__init__(model="replay")
        self._replies = {kind: list(items) for kind, items in (replies or {}).items()}
        self._default = default

    def add_reply(self, kind: str, text: str) -> None:
        self._replies.setdefault(kind, []).append(text)

    def complete(self, prompt: Prompt) -> Completion:
        queue = self._replies.get(prompt.kind)
        if queue:
            return Completion(text=queue.pop(0), model=self.model)
        if self._default is not None:
            return Completion(text=self._default, model=self.model)
        raise LLMProtocolError(f"no scripted reply for prompt kind {prompt.kind!r}")


@dataclass
class RecordedExchange:
    """One prompt/completion pair captured by :class:`RecordingBackend`."""

    prompt: Prompt
    completion: Completion


class RecordingBackend(LLMBackend):
    """Wraps another backend and records every exchange (for inspection/tests)."""

    def __init__(self, inner: LLMBackend):
        super().__init__(model=f"recording({inner.model})")
        self._inner = inner
        self.exchanges: list[RecordedExchange] = []

    def complete(self, prompt: Prompt) -> Completion:
        completion = self._inner.query(prompt)
        self.exchanges.append(RecordedExchange(prompt=prompt, completion=completion))
        return completion

    def prompts_of_kind(self, kind: str) -> list[Prompt]:
        return [exchange.prompt for exchange in self.exchanges if exchange.prompt.kind == kind]


__all__ = ["ReplayBackend", "RecordingBackend", "RecordedExchange"]
