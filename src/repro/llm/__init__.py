"""Analysis-LLM backends, prompts and reply parsing."""

from .backend import (
    CapabilityProfile,
    Completion,
    GPT35_PROFILE,
    GPT4O_PROFILE,
    GPT4_PROFILE,
    LLMBackend,
    LLMRequest,
    Prompt,
    UsageMeter,
)
from .coalescer import BatchCoalescer, CoalescingBackend
from .degraded import PROFILE_FACTORIES, DegradedBackend, backend_for_profile
from .faults import FAULT_KINDS, FaultPlan, FaultyBackend, request_digest
from .oracle import OracleBackend, slice_case_block
from .pool import POOL_SCHEDULES, BackendPool
from .prompts import ParsedReply, PromptLibrary, UnknownItem, parse_reply
from .replay import RecordedExchange, RecordingBackend, ReplayBackend, prompt_key
from .resilience import (
    CircuitBreaker,
    ResilientBackend,
    RetryPolicy,
    resilient_analyst,
    wire_resilience_events,
)

__all__ = [
    "LLMBackend",
    "LLMRequest",
    "BackendPool",
    "POOL_SCHEDULES",
    "BatchCoalescer",
    "CoalescingBackend",
    "Prompt",
    "Completion",
    "UsageMeter",
    "CapabilityProfile",
    "GPT4_PROFILE",
    "GPT4O_PROFILE",
    "GPT35_PROFILE",
    "OracleBackend",
    "DegradedBackend",
    "PROFILE_FACTORIES",
    "backend_for_profile",
    "ReplayBackend",
    "RecordingBackend",
    "RecordedExchange",
    "prompt_key",
    "PromptLibrary",
    "UnknownItem",
    "ParsedReply",
    "parse_reply",
    "slice_case_block",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultyBackend",
    "request_digest",
    "CircuitBreaker",
    "ResilientBackend",
    "RetryPolicy",
    "resilient_analyst",
    "wire_resilience_events",
]
