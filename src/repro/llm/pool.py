"""A routed multi-backend frontend: one pool, many capability profiles.

The LLM-choice ablation (§5.2.3) runs the same drivers against GPT-4,
GPT-4o and GPT-3.5 analysts.  Before the batched protocol that meant three
sequential generator runs, one per backend; :class:`BackendPool` turns it
into a single run that routes every request to the right member backend by
its routing tag, so the engine can shard the whole profile × driver matrix
through one fan-out.

Routing rules (first match wins):

1. an explicit ``LLMRequest.route`` tag that is a key of ``routes`` maps to
   the member ``routes`` names;
2. a ``route`` tag that is itself a member name selects that member;
3. the same two lookups are then tried with the prompt's ``kind`` (so a
   pool can send e.g. every ``repair`` prompt to a cheaper profile);
4. otherwise the request is **untagged** and the pool's scheduler places it:

   * ``schedule="tagged"`` (the default) sends every untagged request to
     the ``default`` member — routing tags are the only placement signal;
   * ``schedule="round-robin"`` load-balances untagged requests across the
     members in declaration order, skipping members whose query budget is
     exhausted (:meth:`~repro.llm.backend.LLMBackend.remaining_budget`);
     when every member is exhausted the default member serves the request
     (and raises its budget error exactly like a direct call would).
     Placement is per *request position* in batch order under one lock, so
     a given **batch sequence** always lands on the same members.  The
     cursor is pool-global and advances in batch *arrival* order: with
     concurrent untagged batches through one shared pool (an engine thread
     fan-out), arrival order — and therefore placement — depends on thread
     scheduling.  Callers that need byte-identical runs must either tag
     their requests (tags never consult the scheduler) or funnel untagged
     batches through a single submission point; the evaluation pipeline
     tags everything, so the default experiments are unaffected.

Each member keeps its own budget and usage meter (its ``complete_batch``
serves the sub-batch routed to it, with its normal dedupe/budget/metering
semantics); the pool's own meter records every request it routes, so
``pool.usage`` is the merged caller-side summary and
:meth:`BackendPool.usage_by_member` the per-profile breakdown.
"""

from __future__ import annotations

import threading
from typing import Mapping, Sequence

from ..errors import BackendError
from .backend import Completion, LLMBackend, LLMRequest, Prompt
from .resilience import CircuitBreaker

#: Valid scheduler names for untagged-request placement.
POOL_SCHEDULES = ("tagged", "round-robin")


class BackendPool(LLMBackend):
    """Routes batched requests to member backends by routing tag.

    With ``breaker_threshold`` set, every member gets a
    :class:`~repro.llm.resilience.CircuitBreaker` and the pool fails routed
    requests over: a member whose sub-batch raises a
    :class:`~repro.errors.BackendError` (or whose breaker is open) hands
    its still-unserved requests to the next healthy member in declaration
    order — deterministic, like everything else about placement.  Each
    serving member meters its own sub-batch, so per-member usage
    attribution stays exact under failover.  Without a threshold the pool
    behaves exactly as before (no breakers, errors propagate directly).
    """

    def __init__(
        self,
        members: Mapping[str, LLMBackend],
        *,
        default: str | None = None,
        routes: Mapping[str, str] | None = None,
        schedule: str = "tagged",
        breaker_threshold: int | None = None,
        breaker_probe_interval: int = 4,
    ):
        if not members:
            raise ValueError("a BackendPool needs at least one member backend")
        if schedule not in POOL_SCHEDULES:
            raise ValueError(
                f"unknown pool schedule {schedule!r}; choose from {', '.join(POOL_SCHEDULES)}"
            )
        super().__init__(model=f"pool({','.join(members)})")
        self.members: dict[str, LLMBackend] = dict(members)
        self.routes: dict[str, str] = dict(routes or {})
        for tag, member in self.routes.items():
            if member not in self.members:
                raise ValueError(f"route {tag!r} targets unknown member {member!r}")
        self.default = default if default is not None else next(iter(self.members))
        if self.default not in self.members:
            raise ValueError(f"default member {self.default!r} is not in the pool")
        self.schedule = schedule
        self.breaker_threshold = breaker_threshold
        self.breakers: dict[str, CircuitBreaker] = (
            {
                name: CircuitBreaker(breaker_threshold, probe_interval=breaker_probe_interval)
                for name in self.members
            }
            if breaker_threshold is not None
            else {}
        )
        self._failover_stats = {"failovers": 0, "denied_by_breaker": 0}
        self._member_names = tuple(self.members)
        self._rr_cursor = 0
        self._schedule_lock = threading.Lock()

    # ---------------------------------------------------------------- routing
    def store_profile(self) -> str:
        """Identity for persistent cache keys: the full routing configuration.

        Covers each member's own store profile plus the route table, default
        member and schedule — everything that decides *which* member (and
        therefore which completion) a routed request reaches.  Two pools
        with the same member names but different capability knobs, or the
        same members but different routes, never share artifacts.
        """
        member_parts = ",".join(
            f"{name}={self.members[name].store_profile()}" for name in sorted(self.members)
        )
        route_parts = ",".join(f"{tag}->{member}" for tag, member in sorted(self.routes.items()))
        # Breaker-enabled pools can legitimately serve a request from a
        # failover member, so their artifacts must not share keys with a
        # breaker-less pool's; breaker-less pools keep the historical
        # profile string so existing stores stay warm.
        breaker_part = (
            f";breaker={self.breaker_threshold}" if self.breaker_threshold is not None else ""
        )
        return (
            f"pool({member_parts};routes={route_parts};"
            f"default={self.default};schedule={self.schedule}{breaker_part})"
        )

    def tagged_member(self, request: "LLMRequest | Prompt") -> str | None:
        """The member a routing tag selects, or ``None`` for untagged requests."""
        request = LLMRequest.of(request)
        for tag in (request.route, request.prompt.kind):
            if tag is None:
                continue
            if tag in self.routes:
                return self.routes[tag]
            if tag in self.members:
                return tag
        return None

    def resolve_member(self, request: "LLMRequest | Prompt") -> str:
        """The member that serves ``request`` under tagged routing.

        Untagged requests resolve to the default member here; under the
        round-robin schedule their actual placement happens per batch
        position inside :meth:`complete_batch` (a stateful decision this
        pure lookup cannot make).
        """
        return self.tagged_member(request) or self.default

    def _schedule_untagged(self, count: int) -> list[str]:
        """Round-robin placements for ``count`` untagged requests.

        One lock acquisition per batch: the cursor advances once per placed
        request, members in declaration order, skipping members with an
        exhausted budget.  If every member is exhausted the default member
        takes the request — its budget error is the right failure.
        """
        placements: list[str] = []
        names = self._member_names
        with self._schedule_lock:
            # Snapshot member budgets once, then decrement locally per
            # placement, so a batch never schedules more requests onto a
            # member than it has slots left (a conservative hint — the
            # member's own atomic reservation still owns correctness).
            remaining = {name: self.members[name].remaining_budget() for name in names}
            for _ in range(count):
                placed = None
                for _attempt in range(len(names)):
                    name = names[self._rr_cursor % len(names)]
                    self._rr_cursor += 1
                    slots = remaining[name]
                    if slots is None:
                        placed = name
                        break
                    if slots > 0:
                        remaining[name] = slots - 1
                        placed = name
                        break
                placements.append(placed if placed is not None else self.default)
        return placements

    # ------------------------------------------------------------- completion
    def complete_batch(self, requests: "Sequence[LLMRequest | Prompt]") -> list[Completion]:
        """Split the batch by member, forward sub-batches, reassemble in order.

        Sub-batches are dispatched in member declaration order (stable for
        any request order), and every member receives exactly one
        ``complete_batch`` call, preserving batch granularity end to end.
        The pool has no budget of its own — member budgets raise from
        inside their sub-batch and propagate.
        """
        normalized = [LLMRequest.of(item) for item in requests]
        if not normalized:
            return []
        members: list[str | None] = [self.tagged_member(request) for request in normalized]
        untagged = [index for index, member in enumerate(members) if member is None]
        if untagged:
            if self.schedule == "round-robin":
                for index, name in zip(untagged, self._schedule_untagged(len(untagged))):
                    members[index] = name
            else:
                for index in untagged:
                    members[index] = self.default
        positions_by_member: dict[str, list[int]] = {}
        for index, member in enumerate(members):
            positions_by_member.setdefault(member, []).append(index)
        results: list[Completion | None] = [None] * len(normalized)
        if not self.breakers:
            for name in self.members:
                positions = positions_by_member.get(name)
                if not positions:
                    continue
                completions = self.members[name].complete_batch(
                    [normalized[index] for index in positions]
                )
                for index, completion in zip(positions, completions):
                    results[index] = completion
        else:
            unserved: list[tuple[int, BaseException]] = []
            for name in self.members:
                positions = positions_by_member.get(name)
                if not positions:
                    continue
                unserved.extend(self._serve_member(name, positions, normalized, results))
            if unserved:
                unserved.sort(key=lambda entry: entry[0])
                primary = unserved[0][1]
                if not isinstance(primary, BackendError):
                    raise primary
                primary.attach_batch_state(
                    {
                        index: completion
                        for index, completion in enumerate(results)
                        if completion is not None
                    },
                    tuple(unserved),
                )
                raise primary
        # The pool-level meter records per *request* (the caller's view);
        # member meters record per distinct completion served.  The pool
        # meter is also what travels back from process workers, where the
        # per-member breakdown stays worker-local.
        self.usage.record_batch(
            (request.prompt, completion)
            for request, completion in zip(normalized, results)
        )
        return results

    def _serve_member(
        self,
        name: str,
        positions: list[int],
        normalized: list[LLMRequest],
        results: "list[Completion | None]",
    ) -> list[tuple[int, BaseException]]:
        """Serve one member's routed positions, failing over on faults.

        Candidates are tried in declaration order starting at the routed
        member; an open breaker skips a candidate, a ``BackendError``
        records a breaker failure, absorbs the partial outcome and passes
        the still-failed positions on.  Returns ``(position, error)`` pairs
        for requests no healthy member could serve.
        """
        order = list(self._member_names)
        chain = [name] + [member for member in order if member != name]
        pending = list(positions)
        last_error: BaseException | None = None
        for candidate in chain:
            if not pending:
                break
            breaker = self.breakers[candidate]
            if not breaker.allow():
                with self._schedule_lock:
                    self._failover_stats["denied_by_breaker"] += len(pending)
                continue
            sub = [normalized[index] for index in pending]
            try:
                completions = self.members[candidate].complete_batch(sub)
            except BackendError as error:
                breaker.record_failure()
                last_error = error
                served = error.served or {}
                for relative, completion in served.items():
                    results[pending[relative]] = completion
                if error.failed:
                    still_failed = [
                        (pending[relative], exc) for relative, exc in error.failed
                    ]
                else:
                    still_failed = [
                        (pending[relative], error)
                        for relative in range(len(sub))
                        if relative not in served
                    ]
                pending = [index for index, _ in still_failed]
                last_failed = still_failed
                continue
            breaker.record_success()
            if candidate != name:
                with self._schedule_lock:
                    self._failover_stats["failovers"] += len(pending)
            for index, completion in zip(pending, completions):
                results[index] = completion
            pending = []
        if not pending:
            return []
        if last_error is None:
            # Every candidate's breaker was open: no attempt was even made.
            from ..errors import TransientBackendError

            denial = TransientBackendError(
                f"all pool members denied by open breakers "
                f"({len(pending)} request(s) routed to {name!r})"
            )
            return [(index, denial) for index in pending]
        return last_failed

    # -------------------------------------------------------------- reporting
    def breaker_stats(self) -> dict:
        """Per-member breaker state plus pool-level failover counters."""
        return {
            "members": {name: breaker.stats() for name, breaker in self.breakers.items()},
            **{key: value for key, value in self._failover_stats.items()},
        }

    def usage_by_member(self) -> dict[str, dict]:
        """Per-member usage summaries keyed by member name.

        Each summary carries a ``by_kind`` breakdown, so kind-routed pools
        (``routes={"repair": "gpt-3.5"}``) show which prompt kinds each
        capability profile actually served.
        """
        return {
            name: {**backend.usage.summary(), "by_kind": backend.usage.kind_summary()}
            for name, backend in self.members.items()
        }

    def usage_summary(self) -> dict:
        """Merged caller-side summary plus the per-member breakdown."""
        return {"merged": self.usage.summary(), "by_member": self.usage_by_member()}

    # -------------------------------------------------------------- pickling
    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state.pop("_schedule_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        super().__setstate__(state)
        self._schedule_lock = threading.Lock()


__all__ = ["BackendPool", "POOL_SCHEDULES"]
