"""A routed multi-backend frontend: one pool, many capability profiles.

The LLM-choice ablation (§5.2.3) runs the same drivers against GPT-4,
GPT-4o and GPT-3.5 analysts.  Before the batched protocol that meant three
sequential generator runs, one per backend; :class:`BackendPool` turns it
into a single run that routes every request to the right member backend by
its routing tag, so the engine can shard the whole profile × driver matrix
through one fan-out.

Routing rules (first match wins):

1. an explicit ``LLMRequest.route`` tag that is a key of ``routes`` maps to
   the member ``routes`` names;
2. a ``route`` tag that is itself a member name selects that member;
3. the same two lookups are then tried with the prompt's ``kind`` (so a
   pool can send e.g. every ``repair`` prompt to a cheaper profile);
4. otherwise the ``default`` member serves the request.

Each member keeps its own budget and usage meter (its ``complete_batch``
serves the sub-batch routed to it, with its normal dedupe/budget/metering
semantics); the pool's own meter records every request it routes, so
``pool.usage`` is the merged caller-side summary and
:meth:`BackendPool.usage_by_member` the per-profile breakdown.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .backend import Completion, LLMBackend, LLMRequest, Prompt


class BackendPool(LLMBackend):
    """Routes batched requests to member backends by routing tag."""

    def __init__(
        self,
        members: Mapping[str, LLMBackend],
        *,
        default: str | None = None,
        routes: Mapping[str, str] | None = None,
    ):
        if not members:
            raise ValueError("a BackendPool needs at least one member backend")
        super().__init__(model=f"pool({','.join(members)})")
        self.members: dict[str, LLMBackend] = dict(members)
        self.routes: dict[str, str] = dict(routes or {})
        for tag, member in self.routes.items():
            if member not in self.members:
                raise ValueError(f"route {tag!r} targets unknown member {member!r}")
        self.default = default if default is not None else next(iter(self.members))
        if self.default not in self.members:
            raise ValueError(f"default member {self.default!r} is not in the pool")

    # ---------------------------------------------------------------- routing
    def resolve_member(self, request: "LLMRequest | Prompt") -> str:
        """The member name that will serve ``request`` (see module docstring)."""
        request = LLMRequest.of(request)
        for tag in (request.route, request.prompt.kind):
            if tag is None:
                continue
            if tag in self.routes:
                return self.routes[tag]
            if tag in self.members:
                return tag
        return self.default

    # ------------------------------------------------------------- completion
    def complete_batch(self, requests: "Sequence[LLMRequest | Prompt]") -> list[Completion]:
        """Split the batch by member, forward sub-batches, reassemble in order.

        Sub-batches are dispatched in member declaration order (stable for
        any request order), and every member receives exactly one
        ``complete_batch`` call, preserving batch granularity end to end.
        The pool has no budget of its own — member budgets raise from
        inside their sub-batch and propagate.
        """
        normalized = [LLMRequest.of(item) for item in requests]
        if not normalized:
            return []
        positions_by_member: dict[str, list[int]] = {}
        for index, request in enumerate(normalized):
            positions_by_member.setdefault(self.resolve_member(request), []).append(index)
        results: list[Completion | None] = [None] * len(normalized)
        for name in self.members:
            positions = positions_by_member.get(name)
            if not positions:
                continue
            completions = self.members[name].complete_batch(
                [normalized[index] for index in positions]
            )
            for index, completion in zip(positions, completions):
                results[index] = completion
        # The pool-level meter records per *request* (the caller's view);
        # member meters record per distinct completion served.  The pool
        # meter is also what travels back from process workers, where the
        # per-member breakdown stays worker-local.
        self.usage.record_batch(
            (request.prompt, completion)
            for request, completion in zip(normalized, results)
        )
        return results

    # -------------------------------------------------------------- reporting
    def usage_by_member(self) -> dict[str, dict]:
        """Per-member usage summaries keyed by member name."""
        return {name: backend.usage.summary() for name, backend in self.members.items()}

    def usage_summary(self) -> dict:
        """Merged caller-side summary plus the per-member breakdown."""
        return {"merged": self.usage.summary(), "by_member": self.usage_by_member()}


__all__ = ["BackendPool"]
