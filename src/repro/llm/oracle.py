"""The oracle analyst: a deterministic stand-in for the paper's GPT-4 backend.

The oracle receives exactly the prompts KernelGPT would send to the OpenAI
API and produces completions in the structured reply format.  Its "model
weights" are the text-analysis helpers in :mod:`repro.llm.analysis`; its
imperfections come from a seeded error model parameterised by a
:class:`~repro.llm.backend.CapabilityProfile`, calibrated against the paper's
§5.1.3 correctness audit.  Weaker models (GPT-3.5, GPT-4o) are the same
machinery with a different profile (see :mod:`repro.llm.degraded`).

Because the completions are derived only from the prompt text, the oracle
honours the same information boundary as a real LLM: if the pipeline fails to
include a definition in the prompt, the oracle cannot use it and must mark it
as UNKNOWN.
"""

from __future__ import annotations

import hashlib
import random
import re

from .analysis import (
    analyze_struct_text,
    cached_pattern,
    find_delegation_target,
    find_lookup_table,
    find_resource_production,
    find_switch_cases,
    infer_arg_struct,
    infer_device_path,
    infer_socket_identity,
    parse_lookup_table_entries,
    render_typedef,
    uses_ioc_nr_rewrite,
)
from .backend import CapabilityProfile, Completion, GPT4_PROFILE, LLMBackend, Prompt

_SECTION_SPLIT_RE = re.compile(r"^##\s+(.+?)\s*$", re.MULTILINE)
_OPERATION_IDENT_RE = re.compile(r"-\s*IDENT:\s*(\S+)")
_INVALID_CONST_RE = re.compile(r"constant '(?P<name>\w+)' cannot be resolved")
_UNDEFINED_TYPE_RE = re.compile(r"type '(?P<name>\w+)' is not defined")
_DEFINE_LINE_RE = re.compile(r"#define\s+(?P<name>\w+)\s+")
_PROTO_OPS_MEMBER_RE = re.compile(
    r"\.(bind|connect|accept|sendto|recvfrom|sendmsg|recvmsg|poll)\s*=\s*(\w+)"
)
_OPERATION_BLOCK_SPLIT_RE = re.compile(r"/\* operation: ")


def _sections(prompt_text: str) -> dict[str, str]:
    """Split a prompt into its ``## Title`` sections."""
    parts: dict[str, str] = {}
    matches = list(_SECTION_SPLIT_RE.finditer(prompt_text))
    for index, match in enumerate(matches):
        start = match.end()
        end = matches[index + 1].start() if index + 1 < len(matches) else len(prompt_text)
        parts[match.group(1).strip().lower()] = prompt_text[start:end].strip()
    return parts


def slice_case_block(code: str, macro: str) -> str | None:
    """Return the statements belonging to ``case macro:`` inside a switch body."""
    pattern = cached_pattern(
        rf"case\s+{re.escape(macro)}\s*:(?P<body>.*?)(?=\n\s*case\s+\w+\s*:|\n\s*default\s*:)",
        re.DOTALL,
    )
    match = pattern.search(code)
    if match:
        return match.group("body")
    return None


class OracleBackend(LLMBackend):
    """GPT-4-class simulated analyst."""

    def __init__(self, profile: CapabilityProfile = GPT4_PROFILE, *, query_budget: int | None = None):
        super().__init__(model=profile.name, query_budget=query_budget)
        self.profile = profile

    def store_profile(self) -> str:
        """Identity for persistent cache keys: the full capability profile.

        The model name alone is not enough — a custom-knobbed profile named
        ``gpt-4`` answers differently from the stock one — so the digest
        covers every knob (``repr`` of a frozen dataclass enumerates fields
        in declaration order, deterministically).
        """
        knobs = hashlib.sha256(repr(self.profile).encode("utf-8")).hexdigest()[:16]
        return f"oracle:{self.profile.name}:{knobs}"

    # ------------------------------------------------------------------ rng
    def _rng(self, *key: str) -> random.Random:
        return random.Random("|".join((self.profile.name,) + key))

    # ----------------------------------------------------------- completion
    def complete_batch(self, requests) -> list[Completion]:
        """Serve a batch through the base template.

        Oracle completions are pure functions of (profile, prompt), so the
        default per-prompt :meth:`complete` hook suffices; the template
        contributes in-batch dedupe, atomic budget reservation and one
        meter update per batch.  :class:`~repro.llm.degraded.DegradedBackend`
        inherits this implementation with its weaker profile.
        """
        return self._serve_batch(requests)

    def complete(self, prompt: Prompt) -> Completion:
        sections = _sections(prompt.text)
        if prompt.kind == "identifier":
            text = self._identifier_reply(prompt, sections)
        elif prompt.kind == "type":
            text = self._type_reply(prompt, sections)
        elif prompt.kind == "dependency":
            text = self._dependency_reply(prompt, sections)
        elif prompt.kind == "repair":
            text = self._repair_reply(prompt, sections)
        elif prompt.kind == "all-in-one":
            text = self._all_in_one_reply(prompt, sections)
        else:
            text = "## UNKNOWN\n(none)\n"
        return Completion(text=text, model=self.model)

    # ------------------------------------------------------ identifier stage
    def _identifier_reply(self, prompt: Prompt, sections: dict[str, str]) -> str:
        registration = sections.get("registration", "")
        code = sections.get("source code of relevant functions", "")
        combined = registration + "\n" + code
        lines: list[str] = []
        unknowns: list[str] = []

        device = infer_device_path(registration)
        if device is not None:
            lines.append("## DEVICE")
            lines.append(f"- PATH: {device.path}")
        family, sock_type, protocol = infer_socket_identity(combined)
        if family is not None and self.profile.socket_support:
            lines.append("## SOCKET")
            type_text = sock_type if sock_type is not None else 2
            proto_text = protocol if protocol is not None else 0
            lines.append(f"- FAMILY: {family} | TYPE: {type_text} | PROTO: {proto_text}")

        rewrite = uses_ioc_nr_rewrite(code)
        cases = find_switch_cases(code)
        identifiers: list[tuple[str, str | None, str]] = []  # (macro, handler fn, syscall)

        if cases:
            syscall = "ioctl"
            if "optname" in code and "sockptr" in code:
                syscall = "setsockopt"
            elif "optname" in code:
                syscall = "getsockopt" if "char __user *optval" in code else "setsockopt"
            for macro, handler_fn in cases:
                identifiers.append((self._maybe_rewrite(macro, rewrite, prompt.subject), handler_fn, syscall))

        table = find_lookup_table(code)
        if table is not None:
            entries = parse_lookup_table_entries(combined)
            if entries:
                for macro, handler_fn in entries:
                    identifiers.append((self._maybe_rewrite(macro, True, prompt.subject), handler_fn, "ioctl"))
            else:
                unknowns.append(f"- TABLE: {table} | USAGE: if ({table}[i].cmd == nr) return {table}[i].fn(file, argp);")

        # Socket message operations are registered directly in the proto_ops
        # initializer: treat each registered member as one operation.
        for member, handler_fn in _PROTO_OPS_MEMBER_RE.findall(registration + code):
            identifiers.append((member, handler_fn, member))

        if not identifiers and not unknowns:
            target = find_delegation_target(code)
            if target is not None:
                usage = f"return {target}(file, command, u);"
                unknowns.append(f"- FUNC: {target} | USAGE: {usage}")

        lines.append("## IDENTIFIERS")
        emitted = 0
        # With ``bad_constant_rate`` probability the analyst mis-remembers one
        # macro spelling for this handler — a repairable unknown-constant error.
        handler_rng = self._rng("bad-const", prompt.subject)
        corrupt_index = None
        if identifiers and handler_rng.random() < self.profile.bad_constant_rate:
            corrupt_index = handler_rng.randrange(len(identifiers))
        for position, (macro, handler_fn, syscall) in enumerate(identifiers):
            rng = self._rng("ident", prompt.subject, macro)
            if rng.random() < self.profile.miss_op_rate:
                continue
            emitted_macro = macro
            if position == corrupt_index and syscall in ("ioctl", "setsockopt", "getsockopt"):
                emitted_macro = macro + "_REQ"
            handler_part = f" | HANDLER: {handler_fn}" if handler_fn else ""
            lines.append(f"- IDENT: {emitted_macro}{handler_part} | SYSCALL: {syscall}")
            emitted += 1
        if emitted == 0:
            lines.append("(none)")
        lines.append("## UNKNOWN")
        if unknowns:
            lines.extend(unknowns)
        else:
            lines.append("(none)")
        return "\n".join(lines) + "\n"

    def _maybe_rewrite(self, macro: str, rewrite: bool, subject: str) -> str:
        """Map an internal switch constant back to the user-facing macro.

        When the dispatcher switches on ``_IOC_NR(cmd)`` the case labels are
        the per-driver ``*_CMD`` numbers; a capable analyst reports the full
        ioctl macro instead.  With ``identifier_error_rate`` probability the
        analyst fails to reverse the mapping (the §5.1.3 wrong-identifier
        cases) and reports the internal constant.
        """
        if not rewrite or not macro.endswith("_CMD"):
            return macro
        rng = self._rng("rewrite", subject, macro)
        if rng.random() < self.profile.identifier_error_rate:
            return macro
        return macro.removesuffix("_CMD")

    # ------------------------------------------------------------ type stage
    def _type_reply(self, prompt: Prompt, sections: dict[str, str]) -> str:
        code = sections.get("source code of relevant functions", "")
        operation = sections.get("operation", "")
        ident_match = _OPERATION_IDENT_RE.search(operation)
        identifier = ident_match.group(1) if ident_match else prompt.subject

        handler_code = slice_case_block(code, identifier) or code
        struct_name, direction = infer_arg_struct(handler_code)
        lines: list[str] = ["## ARGTYPE"]
        unknowns: list[str] = []
        if struct_name is None:
            lines.append(f"- IDENT: {identifier} | TYPE: {direction} | DIR: {direction}")
        else:
            lines.append(f"- IDENT: {identifier} | TYPE: {struct_name} | DIR: {direction}")
            fields, missing = analyze_struct_text(struct_name, code, handler_body=handler_code)
            # With ``undefined_type_rate`` probability the analyst forgets to
            # emit the definition and does not flag it as unknown either — a
            # repairable undefined-type validation error.
            forgets_definition = (
                self._rng("undef-type", prompt.subject, struct_name).random()
                < self.profile.undefined_type_rate
            )
            if fields and not forgets_definition:
                fields = self._degrade_fields(prompt.subject, struct_name, fields)
                lines.append("## TYPEDEF")
                lines.append(render_typedef(struct_name, fields))
            elif not fields:
                missing = [struct_name]
            if forgets_definition:
                missing = []
            for name in missing:
                unknowns.append(f"- STRUCT: {name}")
        lines.append("## UNKNOWN")
        lines.extend(unknowns or ["(none)"])
        return "\n".join(lines) + "\n"

    def _degrade_fields(self, subject: str, struct_name: str, fields):
        """Apply the per-field error model (wrong types, dropped len relations)."""
        from .analysis import AnalyzedField

        degraded = []
        for item in fields:
            rng = self._rng("field", subject, struct_name, item.name)
            syz_type = item.syz_type
            if syz_type.startswith("len[") and rng.random() > self.profile.len_relation_rate:
                syz_type = "int32"
            elif rng.random() < self.profile.wrong_type_rate:
                syz_type = "int32" if syz_type not in ("int32",) else "int64"
            degraded.append(AnalyzedField(item.name, syz_type, item.out, item.nested_struct))
        return degraded

    # ------------------------------------------------------ dependency stage
    def _dependency_reply(self, prompt: Prompt, sections: dict[str, str]) -> str:
        code = sections.get("source code of relevant functions", "")
        lines = ["## DEPENDENCY"]
        unknowns: list[str] = []
        found = 0
        for block in _OPERATION_BLOCK_SPLIT_RE.split(code)[1:]:
            macro, _, body = block.partition(" */")
            production = find_resource_production(body)
            if production is None:
                continue
            resource, fops = production
            if not self.profile.dependency_discovery:
                continue
            lines.append(f"- IDENT: {macro.strip()} | PRODUCES: {resource} | HANDLER: {fops}")
            unknowns.append(f"- HANDLER: {fops}")
            found += 1
        if found == 0:
            production = find_resource_production(code)
            if production is not None and self.profile.dependency_discovery:
                resource, fops = production
                lines.append(f"- IDENT: {prompt.subject} | PRODUCES: {resource} | HANDLER: {fops}")
                unknowns.append(f"- HANDLER: {fops}")
                found += 1
        if found == 0:
            lines.append("(none)")
        lines.append("## UNKNOWN")
        lines.extend(unknowns or ["(none)"])
        return "\n".join(lines) + "\n"

    # ----------------------------------------------------------- repair stage
    def _repair_reply(self, prompt: Prompt, sections: dict[str, str]) -> str:
        rng = self._rng("repair", prompt.subject)
        if rng.random() < self.profile.unrepairable_rate:
            return "## REPAIRED\n\n"
        description = sections.get("invalid description", "")
        errors = sections.get("error messages", "")
        code = sections.get("relevant source code", "")
        repaired = description

        for match in _INVALID_CONST_RE.finditer(errors):
            bad_name = match.group("name")
            replacement = self._closest_define(bad_name, code)
            if replacement is not None:
                repaired = repaired.replace(bad_name, replacement)

        appended_defs: list[str] = []
        for match in _UNDEFINED_TYPE_RE.finditer(errors):
            missing_type = match.group("name")
            fields, _ = analyze_struct_text(missing_type, code)
            if fields:
                appended_defs.append(render_typedef(missing_type, fields))
            else:
                # Fall back to an opaque byte-array definition so the
                # description at least becomes syntactically valid.
                appended_defs.append(f"{missing_type} {{\n\tdata array[int8, 8]\n}}")
        if appended_defs:
            repaired = repaired + "\n\n" + "\n\n".join(appended_defs)
        return "## REPAIRED\n" + repaired + "\n"

    @staticmethod
    def _closest_define(bad_name: str, code: str) -> str | None:
        """Pick the most plausible macro from the provided source code."""
        import difflib

        candidates = [match.group("name") for match in _DEFINE_LINE_RE.finditer(code)]
        if not candidates:
            return None
        best = difflib.get_close_matches(bad_name, candidates, n=1, cutoff=0.5)
        return best[0] if best else None

    # ------------------------------------------------------ all-in-one stage
    def _all_in_one_reply(self, prompt: Prompt, sections: dict[str, str]) -> str:
        """Single-shot analysis used by the ablation.

        The whole handler is analysed from one (clipped) prompt, without the
        iterative refinement loop: delegation chains are not followed, only
        operations whose dispatch is directly visible are found, and only
        structs whose definitions survived clipping get type descriptions.
        """
        registration = sections.get("registration", "")
        code = sections.get("source code", "")
        combined = registration + "\n" + code
        lines: list[str] = []

        device = infer_device_path(registration)
        if device is not None:
            lines.append("## DEVICE")
            lines.append(f"- PATH: {device.path}")
        family, sock_type, protocol = infer_socket_identity(combined)
        if family is not None:
            lines.append("## SOCKET")
            lines.append(f"- FAMILY: {family} | TYPE: {sock_type or 2} | PROTO: {protocol or 0}")

        rewrite = uses_ioc_nr_rewrite(code)
        cases = find_switch_cases(code)
        lines.append("## IDENTIFIERS")
        emitted = 0
        rng = self._rng("all-in-one", prompt.subject)
        for macro, handler_fn in cases:
            # Without the staged pipeline the analyst loses focus on long
            # handler lists: a large fraction of operations is dropped.
            if rng.random() < 0.4:
                continue
            handler_part = f" | HANDLER: {handler_fn}" if handler_fn else ""
            lines.append(f"- IDENT: {self._maybe_rewrite(macro, rewrite, prompt.subject)}{handler_part} | SYSCALL: ioctl")
            emitted += 1
        if emitted == 0:
            lines.append("(none)")

        argtype_lines: list[str] = []
        typedef_lines: list[str] = []
        for macro, handler_fn in cases:
            if handler_fn is None:
                continue
            fn_match = cached_pattern(
                rf"static\s+\w+\s+{re.escape(handler_fn)}\([^)]*\)\s*\n\{{(?P<body>.*?)\n\}}",
                re.DOTALL,
            ).search(code)
            if not fn_match:
                continue
            struct_name, direction = infer_arg_struct(fn_match.group("body"))
            if struct_name is None:
                continue
            fields, _missing = analyze_struct_text(struct_name, code, handler_body=fn_match.group("body"))
            if not fields or rng.random() < 0.5:
                continue
            argtype_lines.append(f"- IDENT: {self._maybe_rewrite(macro, rewrite, prompt.subject)} | TYPE: {struct_name} | DIR: {direction}")
            typedef_lines.append(render_typedef(struct_name, fields))
        if argtype_lines:
            lines.append("## ARGTYPE")
            lines.extend(argtype_lines)
        if typedef_lines:
            lines.append("## TYPEDEF")
            lines.extend(typedef_lines)
        lines.append("## UNKNOWN")
        lines.append("(none)")
        return "\n".join(lines) + "\n"


__all__ = ["OracleBackend", "slice_case_block"]
