"""Text-level C analysis helpers shared by the simulated analysts.

These functions operate purely on source *text* (the code snippets contained
in a prompt), never on the kernel's ground-truth objects: they are the
"knowledge" of the simulated GPT-4 analyst.  Keeping them here, separate from
the backend, also lets the test-suite exercise the analysis directly.

This module is the regex-heavy hot path of the whole pipeline (the engine's
``--profile`` output attributes most of ``generation/type`` wall time to
struct/field analysis), so every fixed pattern is compiled once at module
level and the few patterns parameterised by an identifier go through
:func:`cached_pattern`, an LRU around ``re.compile`` — no per-call trips
through the ``re`` module's internal cache lock and dict lookup.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache


@lru_cache(maxsize=4096)
def cached_pattern(pattern: str, flags: int = 0) -> "re.Pattern[str]":
    """Compile-once cache for patterns built around a runtime identifier.

    The key space is bounded by the kernel's macro/function/struct names, so
    the cache converges after the first generation pass and later passes pay
    a single LRU lookup per use.
    """
    return re.compile(pattern, flags)

_WIDTH_BY_CTYPE = {
    "__u8": "int8",
    "__s8": "int8",
    "char": "int8",
    "__u16": "int16",
    "__s16": "int16",
    "__u32": "int32",
    "__s32": "int32",
    "int": "int32",
    "unsigned int": "int32",
    "__u64": "int64",
    "__s64": "int64",
    "unsigned long": "int64",
}

_MISC_NAME_RE = re.compile(r"\.name\s*=\s*\"(?P<name>[^\"]+)\"")
_MISC_NODENAME_RE = re.compile(r"\.nodename\s*=\s*\"(?P<name>[^\"]+)\"")
_DEVICE_CREATE_RE = re.compile(r"device_create\([^;]*\"(?P<tmpl>[^\"]+)\"")
_PROC_CREATE_RE = re.compile(r"proc_create\(\s*\"(?P<name>[^\"]+)\"")
_CHRDEV_RE = re.compile(r"alloc_chrdev_region\([^;]*\"(?P<name>[^\"]+)\"")
_CASE_RE = re.compile(r"case\s+(?P<macro>\w+)\s*:\s*\n\s*return\s+(?P<fn>\w+)\(", re.MULTILINE)
_CASE_BREAK_RE = re.compile(r"case\s+(?P<macro>\w+)\s*:", re.MULTILINE)
_DELEGATE_RE = re.compile(r"^\s*return\s+(?P<fn>\w+)\(file,\s*command,\s*u\);\s*$", re.MULTILINE)
_TABLE_LOOP_RE = re.compile(r"(?P<table>_\w+_ioctl_table)\[i\]\.cmd")
_TABLE_ENTRY_RE = re.compile(r"\.\{\s*(?P<macro>\w+)\s*=\s*(?P<fn>\w+)\s*\}", re.MULTILINE)
_TABLE_ENTRY_ALT_RE = re.compile(r"\{\s*(?P<macro>[A-Z]\w+)\s*,?\s*=?\s*(?P<fn>\w+)\s*\}")
_ANON_INODE_RE = re.compile(r"anon_inode_getfd\(\s*\"(?P<name>[^\"]+)\"\s*,\s*&(?P<fops>\w+)")
_COPY_FROM_RE = re.compile(r"copy_from_user\(&\w+,\s*\w+,\s*sizeof\(struct\s+(?P<name>\w+)\)\)")
_COPY_TO_RE = re.compile(r"copy_to_user\(\w+,\s*&\w+,\s*sizeof\(struct\s+(?P<name>\w+)\)\)")
_COPY_SOCKPTR_RE = re.compile(r"copy_from_sockptr\(&\w+,\s*\w+,\s*sizeof\(struct\s+(?P<name>\w+)\)\)")
_MEMCPY_MSG_RE = re.compile(r"memcpy_from_msg\(&\w+,\s*\w+,\s*sizeof\(struct\s+(?P<name>\w+)\)\)")
_STRUCT_DEF_RE = re.compile(r"struct\s+(?P<name>\w+)\s*\{(?P<body>.*?)\n\};", re.DOTALL)
_FIELD_RE = re.compile(
    r"^\s*(?P<type>(?:struct\s+)?[A-Za-z_][\w ]*?)\s+(?P<name>\w+)(?P<array>\[\w*\])?\s*;(?:\s*/\*\s*(?P<comment>.*?)\s*\*/)?",
    re.MULTILINE,
)
_RANGE_GUARD_RE = re.compile(r"params\.(?P<field>\w+)\s*<\s*(?P<low>\d+)\s*\|\|\s*params\.(?P<field2>\w+)\s*>\s*(?P<high>\d+)")
_FAMILY_RE = re.compile(r"\.family\s*=\s*(?P<family>AF_\w+)")
_SOCK_TYPE_RE = re.compile(r"sock->type\s*!=\s*(?P<type>\d+)")
_PROTOCOL_RE = re.compile(r"protocol\s*!=\s*(?P<proto>\d+)\s*&&")
_TABLE_ENTRY_LINE_RE = re.compile(r"^\.?\{?\s*\{?\s*(?P<macro>[A-Z][A-Z0-9_]+)\s*[,=]\s*(?P<fn>\w+)\s*\}")
_SCALAR_ARG_RE = re.compile(r"unsigned long arg\b")


@dataclass(frozen=True)
class DeviceNameFinding:
    """Result of device-path inference from registration code."""

    path: str
    source: str   # which pattern produced it: nodename / name / device_create / proc / chrdev


def infer_device_path(registration_text: str) -> DeviceNameFinding | None:
    """Infer the userspace device path from registration code.

    The priority order encodes the knowledge the paper credits the LLM with:
    ``miscdevice.nodename`` wins over ``.name`` when both are present
    (the device-mapper case of Figure 2), ``device_create`` templates win
    over the ``alloc_chrdev_region`` region name for character devices, and
    ``proc_create`` maps under ``/proc``.
    """
    nodename = _MISC_NODENAME_RE.search(registration_text)
    if nodename and "miscdevice" in registration_text:
        return DeviceNameFinding(f"/dev/{nodename.group('name')}", "nodename")
    created = _DEVICE_CREATE_RE.search(registration_text)
    if created:
        template = created.group("tmpl").replace("%d", "#")
        return DeviceNameFinding(f"/dev/{template}", "device_create")
    proc = _PROC_CREATE_RE.search(registration_text)
    if proc:
        return DeviceNameFinding(f"/proc/{proc.group('name')}", "proc")
    name = _MISC_NAME_RE.search(registration_text)
    if name and "miscdevice" in registration_text:
        return DeviceNameFinding(f"/dev/{name.group('name')}", "name")
    chrdev = _CHRDEV_RE.search(registration_text)
    if chrdev:
        return DeviceNameFinding(f"/dev/{chrdev.group('name')}", "chrdev")
    return None


def infer_socket_identity(text: str) -> tuple[str | None, int | None, int | None]:
    """Infer (family macro, socket type, protocol) from socket source text."""
    family = None
    family_match = _FAMILY_RE.search(text)
    if family_match:
        family = family_match.group("family")
    sock_type = None
    type_match = _SOCK_TYPE_RE.search(text)
    if type_match:
        sock_type = int(type_match.group("type"))
    protocol = None
    proto_match = _PROTOCOL_RE.search(text)
    if proto_match:
        protocol = int(proto_match.group("proto"))
    return family, sock_type, protocol


def uses_ioc_nr_rewrite(code: str) -> bool:
    """True when the dispatcher switches on ``_IOC_NR(cmd)`` rather than ``cmd``."""
    return "_IOC_NR(" in code


def find_switch_cases(code: str) -> list[tuple[str, str | None]]:
    """Return (case macro, handler function) pairs from switch-based dispatch."""
    cases: list[tuple[str, str | None]] = []
    seen: set[str] = set()
    for match in _CASE_RE.finditer(code):
        macro = match.group("macro")
        if macro not in seen:
            cases.append((macro, match.group("fn")))
            seen.add(macro)
    # Cases that fall through to a break (socket option handlers).
    for match in _CASE_BREAK_RE.finditer(code):
        macro = match.group("macro")
        if macro not in seen:
            cases.append((macro, None))
            seen.add(macro)
    return cases


def find_delegation_target(code: str) -> str | None:
    """Return the helper a registered handler fully delegates to, if any."""
    match = _DELEGATE_RE.search(code)
    if match:
        return match.group("fn")
    return None


def find_lookup_table(code: str) -> str | None:
    """Return the name of a command lookup table referenced by the dispatcher."""
    match = _TABLE_LOOP_RE.search(code)
    if match:
        return match.group("table")
    return None


def parse_lookup_table_entries(table_text: str) -> list[tuple[str, str]]:
    """Parse ``{ CMD_MACRO, handler_fn }`` entries from a lookup-table initializer."""
    entries: list[tuple[str, str]] = []
    for line in table_text.splitlines():
        line = line.strip().rstrip(",")
        match = _TABLE_ENTRY_LINE_RE.match(line)
        if match:
            entries.append((match.group("macro"), match.group("fn")))
    return entries


def find_resource_production(code: str) -> tuple[str, str] | None:
    """Return (resource name, fops handler) when the code creates a new fd."""
    match = _ANON_INODE_RE.search(code)
    if match:
        return match.group("name"), match.group("fops")
    return None


def infer_arg_struct(code: str) -> tuple[str | None, str]:
    """Infer the (struct name, direction) of the untyped ioctl/sockopt argument."""
    from_user = _COPY_FROM_RE.search(code) or _COPY_SOCKPTR_RE.search(code) or _MEMCPY_MSG_RE.search(code)
    to_user = _COPY_TO_RE.search(code)
    if from_user and to_user:
        return from_user.group("name"), "inout"
    if from_user:
        return from_user.group("name"), "in"
    if to_user:
        return to_user.group("name"), "out"
    if _SCALAR_ARG_RE.search(code) and "argp" not in code:
        return None, "scalar"
    return None, "none"


@dataclass(frozen=True)
class AnalyzedField:
    """One struct field as understood from C text."""

    name: str
    syz_type: str            # rendered syzlang type expression
    out: bool = False
    nested_struct: str | None = None


def analyze_struct_text(
    struct_name: str,
    prompt_text: str,
    *,
    handler_body: str = "",
) -> tuple[list[AnalyzedField], list[str]]:
    """Extract syzlang field descriptions for ``struct_name`` from prompt text.

    Returns the analyzed fields plus the names of nested structs whose
    definitions were *not* present in the prompt (they become UNKNOWNs).
    The analysis reconstructs the semantic relationships the paper highlights:
    count fields become ``len[...]``, kernel-written fields become ``(out)``,
    and range checks in the handler body become integer ranges.
    """
    definition = None
    for match in _STRUCT_DEF_RE.finditer(prompt_text):
        if match.group("name") == struct_name:
            definition = match.group("body")
            break
    if definition is None:
        return [], [struct_name]

    ranges: dict[str, tuple[int, int]] = {}
    for match in _RANGE_GUARD_RE.finditer(handler_body or prompt_text):
        ranges[match.group("field")] = (int(match.group("low")), int(match.group("high")))

    raw_fields: list[dict] = []
    for match in _FIELD_RE.finditer(definition):
        raw_fields.append(
            {
                "type": match.group("type").strip(),
                "name": match.group("name"),
                "array": match.group("array"),
                "comment": (match.group("comment") or "").strip(),
            }
        )
    flexible_fields = {
        item["name"] for item in raw_fields if item["array"] is not None and item["array"] in ("[]", "[ ]")
    }

    fields: list[AnalyzedField] = []
    missing: list[str] = []
    for item in raw_fields:
        name = item["name"]
        c_type = item["type"]
        comment = item["comment"].lower()
        array = item["array"]
        out = "written by the kernel" in comment
        nested = None
        if c_type.startswith("struct "):
            nested = c_type.removeprefix("struct ").strip()
        width = _WIDTH_BY_CTYPE.get(c_type, "int32")

        if nested is not None:
            if not cached_pattern(rf"struct\s+{re.escape(nested)}\s*\{{").search(prompt_text):
                missing.append(nested)
            if array:
                syz = f"array[{nested}]"
            else:
                syz = nested
        elif array is not None and array in ("[]", "[ ]"):
            syz = f"array[{width}]"
        elif array is not None:
            length = array.strip("[]")
            elem = "int8" if c_type == "char" else width
            syz = f"array[{elem}, {length}]" if length else f"array[{elem}]"
        elif ("number of entries" in comment or name.startswith(("nr_", "num_")) or name == "count") and flexible_fields:
            target = sorted(flexible_fields)[0]
            syz = f"len[{target}, {width}]"
        elif name in ranges:
            low, high = ranges[name]
            syz = f"{width}[{low}:{high}]"
        else:
            syz = width
        fields.append(AnalyzedField(name=name, syz_type=syz, out=out, nested_struct=nested))
    return fields, missing


def render_typedef(struct_name: str, fields: list[AnalyzedField]) -> str:
    """Render analyzed fields as a syzlang struct definition block."""
    lines = [f"{struct_name} {{"]
    for item in fields:
        suffix = " (out)" if item.out else ""
        lines.append(f"\t{item.name} {item.syz_type}{suffix}")
    lines.append("}")
    return "\n".join(lines)


__all__ = [
    "cached_pattern",
    "DeviceNameFinding",
    "infer_device_path",
    "infer_socket_identity",
    "uses_ioc_nr_rewrite",
    "find_switch_cases",
    "find_delegation_target",
    "find_lookup_table",
    "parse_lookup_table_entries",
    "find_resource_production",
    "infer_arg_struct",
    "AnalyzedField",
    "analyze_struct_text",
    "render_typedef",
]
