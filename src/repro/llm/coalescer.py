"""Cross-session LLM batch coalescing: the serving layer's merge point.

One run of the pipeline already batches well: PR 3's wavefronts submit each
stage's prompts as one ``complete_batch``, with in-batch dedupe and atomic
budget reservation.  A *service* runs many pipelines at once, and their
wavefronts land on the shared backend pool as many small batches — one
round-trip each.  :class:`BatchCoalescer` closes that gap: concurrent
submissions from different sessions (and different tenants) accumulate in a
short admission window and flush as **one** merged ``complete_batch`` call,
so the expensive shared resource — the backend pool — sees maximally
coalesced work.  The pool's member routing and each member's in-batch
dedupe/budget semantics apply to the merged batch unchanged, which is how
cross-tenant duplicate prompts collapse to a single computed completion.

Flush triggers, checked by a dedicated flusher thread:

* the admission **window** elapses (measured from the first pending
  submission);
* the pending request count reaches **max_batch**;
* every **expected client** has a submission pending (the job service keeps
  this hint at its jobs-in-flight count, so lock-stepped wavefronts flush
  the moment the last job arrives instead of waiting out the window);
* an explicit :meth:`flush` (tests, shutdown).

Determinism: merged batches concatenate submissions in **admission order**
(rule 8 in DESIGN.md), and in *drain* mode (``drain=True``, or
:meth:`set_eager` while one job is in flight) every submission flushes
inline and alone — the backend then sees exactly the batch sequence the CLI
path would have issued, so single-job service output is byte-identical to
the CLI run.  Coalescing never changes completions either way (they are
pure functions of the prompt); it changes only how many round-trips carry
them.

Tenant budgets are enforced here, at the coalescing boundary: a tenant is
charged for the distinct requests *it* submits — cross-tenant dedupe inside
the merged batch never leaks one tenant's traffic into another's accounting
— and exhaustion mirrors the backend-budget contract: the in-budget prefix
is still served, then :class:`~repro.errors.TenantBudgetExceeded` raises
naming the first unfunded request's position.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Sequence

from ..errors import BackendError, ServiceSaturated, TenantBudgetExceeded
from .backend import Completion, LLMBackend, LLMRequest, Prompt


class _Submission:
    """One caller's pending batch: requests in, completions (or an error) out."""

    __slots__ = ("requests", "client", "tenant", "event", "results", "error")

    def __init__(self, requests: list[LLMRequest], client: str | None, tenant: str | None):
        self.requests = requests
        self.client = client
        self.tenant = tenant
        self.event = threading.Event()
        self.results: list[Completion] | None = None
        self.error: BaseException | None = None


class BatchCoalescer:
    """Window/size-triggered accumulator merging requests across sessions."""

    def __init__(
        self,
        backend: LLMBackend,
        *,
        window: float = 0.01,
        max_batch: int = 64,
        drain: bool = False,
    ):
        self.backend = backend
        self.window = max(0.0, window)
        self.max_batch = max(1, max_batch)
        #: Drain mode: no flusher thread; every submission (outside a
        #: :meth:`hold` block) flushes inline, alone, in admission order.
        self.drain = drain
        self._cond = threading.Condition()
        # Serializes actual serving so flush order equals admission order
        # even when several threads race to flush.
        self._flush_lock = threading.Lock()
        self._pending: list[_Submission] = []
        self._pending_requests = 0
        self._first_at: float | None = None
        self._held = 0
        self._eager = drain
        self._expected = 0
        self._closed = False
        #: Optional callable fed one summary dict per non-empty flush
        #: (submissions/requests/distinct counts) — the serving layer's
        #: event-log hook.  Called outside the admission lock, after the
        #: flush's waiters are released.  A raising observer can never kill
        #: the flusher thread, but it is not silently dropped either: the
        #: failure is counted in ``stats()["observer_errors"]`` and routed
        #: to :attr:`on_observer_error` (the serving layer turns it into an
        #: ``observer_error`` event-log record).
        self.observer = None
        #: Optional callable fed each exception a broken :attr:`observer`
        #: raised; its own exceptions are dropped (there is no fourth
        #: level of error routing to escalate to).
        self.on_observer_error = None
        self._stats_lock = threading.Lock()
        self._stats = {
            "flushes": 0,
            "merged_flushes": 0,
            "submissions": 0,
            "requests": 0,
            "distinct_requests": 0,
            "queries_saved_by_coalescing": 0,
            "max_merged_batch": 0,
            "errors": 0,
            "isolated_flushes": 0,
            "tenant_faults": 0,
            "observer_errors": 0,
        }
        self._by_kind: dict[str, dict] = {}
        self._clients: dict[str, dict] = {}
        self._tenants: dict[str, dict] = {}
        self._thread: threading.Thread | None = None
        if not drain:
            self._thread = threading.Thread(
                target=self._flush_loop, name="llm-coalescer", daemon=True
            )
            self._thread.start()

    # ---------------------------------------------------------------- tenants
    def set_tenant_budget(self, tenant: str, limit: int) -> None:
        """Cap ``tenant`` at ``limit`` distinct backend-bound queries.

        Budgets meter post-memoization traffic (what actually reaches the
        coalescer), exactly like backend member budgets meter what reaches
        the member.  Unregistered tenants are unmetered.
        """
        with self._stats_lock:
            self._tenants[tenant] = {"limit": max(0, limit), "used": 0}

    def tenant_usage(self) -> dict[str, dict]:
        """Per-tenant budget accounting: limit, used, remaining."""
        with self._stats_lock:
            return {
                tenant: {**entry, "remaining": max(0, entry["limit"] - entry["used"])}
                for tenant, entry in self._tenants.items()
            }

    def _reserve_tenant(self, tenant: str | None, distinct: int) -> int:
        """Atomically reserve up to ``distinct`` slots; returns the grant."""
        if tenant is None:
            return distinct
        with self._stats_lock:
            entry = self._tenants.get(tenant)
            if entry is None:
                return distinct
            available = max(0, entry["limit"] - entry["used"])
            granted = min(distinct, available)
            entry["used"] += granted
            return granted

    # ------------------------------------------------------------- submission
    def submit(
        self,
        requests: "Sequence[LLMRequest | Prompt]",
        *,
        tenant: str | None = None,
        client: str | None = None,
    ) -> list[Completion]:
        """Enqueue a batch and block until its completions arrive.

        Returns completions in request order.  Raises whatever the merged
        backend call raised, or :class:`~repro.errors.TenantBudgetExceeded`
        after serving the tenant-fundable prefix (see the module docstring
        for the exact semantics).
        """
        normalized = [LLMRequest.of(item) for item in requests]
        if not normalized:
            return []
        distinct_positions: list[int] = []
        seen: set[tuple] = set()
        for position, request in enumerate(normalized):
            key = request.batch_key()
            if key not in seen:
                seen.add(key)
                distinct_positions.append(position)
        granted = self._reserve_tenant(tenant, len(distinct_positions))
        over: TenantBudgetExceeded | None = None
        funded = normalized
        if granted < len(distinct_positions):
            limit = self._tenants[tenant]["limit"]
            over = TenantBudgetExceeded(
                tenant,
                limit=limit,
                requested=len(distinct_positions),
                request_index=distinct_positions[granted],
            )
            funded_keys = {
                normalized[position].batch_key()
                for position in distinct_positions[:granted]
            }
            funded = [request for request in normalized if request.batch_key() in funded_keys]
        self._note_client(client, submissions=1, requests=len(normalized))
        if not funded:
            raise over
        submission = _Submission(funded, client, tenant)
        with self._cond:
            if self._closed:
                raise ServiceSaturated("coalescer is closed; no further submissions admitted")
            self._pending.append(submission)
            self._pending_requests += len(funded)
            if self._first_at is None:
                self._first_at = time.monotonic()
            inline = self._eager and self._held == 0
            self._cond.notify_all()
        with self._stats_lock:
            self._stats["submissions"] += 1
        if inline:
            self.flush()
        submission.event.wait()
        if submission.error is not None:
            raise submission.error
        if over is not None:
            raise over
        assert submission.results is not None
        return submission.results

    # ---------------------------------------------------------------- flushing
    def flush(self) -> int:
        """Serve everything pending as one merged backend batch.

        Returns the number of submissions served (0 when nothing was
        pending — an empty flush is a no-op, never a backend call).  A
        failing backend call delivers its exception to every waiting
        submission instead of propagating here, so a flusher-thread failure
        can never strand waiters.
        """
        with self._flush_lock:
            with self._cond:
                batch = self._pending
                self._pending = []
                self._pending_requests = 0
                self._first_at = None
            if not batch:
                return 0
            merged = [request for submission in batch for request in submission.requests]
            self._note_flush(batch, merged)
            try:
                completions = self.backend.complete_batch(merged)
            except BackendError:
                # Tenant fault isolation: a backend fault inside a merged
                # flush must not fail every rider.  Re-serve each
                # submission individually, in admission order, so only the
                # submissions whose own requests fault see an error.
                with self._stats_lock:
                    self._stats["errors"] += 1
                    self._stats["isolated_flushes"] += 1
                self._serve_isolated(batch)
                self._notify_observer(batch, merged, ok=False)
                return len(batch)
            except BaseException as exc:  # noqa: BLE001 - delivered to waiters
                with self._stats_lock:
                    self._stats["errors"] += 1
                for submission in batch:
                    submission.error = exc
                    submission.event.set()
                self._notify_observer(batch, merged, ok=False)
                return len(batch)
            offset = 0
            for submission in batch:
                count = len(submission.requests)
                submission.results = list(completions[offset : offset + count])
                offset += count
                submission.event.set()
            self._notify_observer(batch, merged, ok=True)
            return len(batch)

    def _serve_isolated(self, batch: "list[_Submission]") -> None:
        """Degraded re-serve after a merged-flush fault: one call per rider.

        Runs under the flush lock, in admission order, so the fallback is
        as deterministic as the merge it replaces.  Submissions whose own
        requests still fault get *their* error; everyone else gets served —
        one tenant's faults never take down a neighbour.  (The backend's
        own dedupe/memoization keeps the re-serve from recomputing what a
        retry layer below already converged on.)
        """
        for submission in batch:
            try:
                submission.results = list(self.backend.complete_batch(submission.requests))
            except BaseException as exc:  # noqa: BLE001 - delivered to the one waiter
                submission.error = exc
                with self._stats_lock:
                    self._stats["tenant_faults"] += 1
            submission.event.set()

    def _flush_loop(self) -> None:
        """The flusher thread: window / size / expected-clients triggers."""
        while True:
            with self._cond:
                while not self._closed and not self._pending:
                    self._cond.wait()
                if self._closed and not self._pending:
                    return
                deadline = (self._first_at or time.monotonic()) + self.window
                while not self._closed and self._pending:
                    if self._pending_requests >= self.max_batch:
                        break
                    if 2 <= self._expected <= len(self._pending):
                        break
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(timeout=remaining)
            self.flush()

    @contextmanager
    def hold(self):
        """Suspend eager/inline flushing while the block runs (tests).

        Submissions made (from other threads) inside a ``hold`` accumulate;
        the exit of the outermost hold flushes them as one merged batch in
        admission order.
        """
        with self._cond:
            self._held += 1
        try:
            yield self
        finally:
            with self._cond:
                self._held -= 1
                release = self._held == 0
            if release:
                self.flush()

    def set_eager(self, eager: bool) -> None:
        """Toggle inline flushing (used by the service at ≤1 job in flight).

        Eager submissions flush themselves synchronously, so a lone job's
        backend batch sequence is exactly the CLI path's.  Drain-mode
        coalescers are permanently eager.
        """
        with self._cond:
            self._eager = bool(eager) or self.drain
            flush_now = self._eager and self._held == 0 and bool(self._pending)
            self._cond.notify_all()
        if flush_now:
            self.flush()

    def set_expected(self, clients: int) -> None:
        """Hint how many clients are actively submitting (jobs in flight)."""
        with self._cond:
            self._expected = max(0, clients)
            self._cond.notify_all()

    def wait_for_pending(self, count: int, timeout: float = 5.0) -> bool:
        """Block until ``count`` submissions are pending (test helper)."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while len(self._pending) < count:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(timeout=remaining)
            return True

    def close(self) -> None:
        """Refuse new submissions, stop the flusher, flush what is pending."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.flush()

    # ------------------------------------------------------------- statistics
    def _note_client(self, client: str | None, **deltas: int) -> None:
        if client is None:
            return
        with self._stats_lock:
            entry = self._clients.setdefault(
                client,
                {"submissions": 0, "requests": 0, "queries_saved_by_coalescing": 0, "flushes_joined": 0},
            )
            for key, delta in deltas.items():
                entry[key] += delta

    def _notify_observer(self, batch: list[_Submission], merged: list[LLMRequest], *, ok: bool) -> None:
        observer = self.observer
        if observer is None:
            return
        try:
            observer(
                {
                    "submissions": len(batch),
                    "requests": len(merged),
                    "distinct": len({request.batch_key() for request in merged}),
                    "ok": ok,
                }
            )
        except Exception as error:  # noqa: BLE001 - observers must not break serving
            with self._stats_lock:
                self._stats["observer_errors"] += 1
            handler = self.on_observer_error
            if handler is not None:
                try:
                    handler(error)
                except Exception:  # noqa: BLE001 - nowhere left to report to
                    pass

    def _note_flush(self, batch: list[_Submission], merged: list[LLMRequest]) -> None:
        """Record one flush: merge/dedupe accounting plus per-kind batch sizes.

        ``queries_saved_by_coalescing`` counts requests whose batch key
        already appeared earlier in the merged batch under a *different*
        submission — the round-trips-worth of work the merge absorbed —
        credited to the submission that got the free ride.
        """
        seen_owner: dict[tuple, _Submission] = {}
        kind_counts: dict[str, int] = {}
        saved_total = 0
        saved_by_client: dict[str, int] = {}
        for submission in batch:
            for request in submission.requests:
                key = request.batch_key()
                owner = seen_owner.get(key)
                if owner is None:
                    seen_owner[key] = submission
                elif owner is not submission:
                    saved_total += 1
                    if submission.client is not None:
                        saved_by_client[submission.client] = (
                            saved_by_client.get(submission.client, 0) + 1
                        )
                kind = request.prompt.kind
                kind_counts[kind] = kind_counts.get(kind, 0) + 1
        with self._stats_lock:
            self._stats["flushes"] += 1
            if len(batch) > 1:
                self._stats["merged_flushes"] += 1
            self._stats["requests"] += len(merged)
            self._stats["distinct_requests"] += len(seen_owner)
            self._stats["queries_saved_by_coalescing"] += saved_total
            self._stats["max_merged_batch"] = max(self._stats["max_merged_batch"], len(merged))
            for kind, count in kind_counts.items():
                entry = self._by_kind.setdefault(
                    kind, {"batches": 0, "requests": 0, "max_batch": 0}
                )
                entry["batches"] += 1
                entry["requests"] += count
                entry["max_batch"] = max(entry["max_batch"], count)
            for submission in batch:
                if submission.client is None:
                    continue
                entry = self._clients.get(submission.client)
                if entry is not None:
                    entry["flushes_joined"] += 1
                    entry["queries_saved_by_coalescing"] += saved_by_client.get(
                        submission.client, 0
                    )

    def stats(self) -> dict:
        """Coalescer-wide counters plus the per-kind batch-size breakdown."""
        with self._stats_lock:
            return {
                **self._stats,
                "by_kind": {kind: dict(entry) for kind, entry in self._by_kind.items()},
            }

    def client_stats(self, client: str) -> dict:
        """One client's (job's) coalescing accounting; zeros when unknown."""
        with self._stats_lock:
            entry = self._clients.get(client)
            if entry is None:
                return {
                    "submissions": 0,
                    "requests": 0,
                    "queries_saved_by_coalescing": 0,
                    "flushes_joined": 0,
                }
            return dict(entry)


class CoalescingBackend(LLMBackend):
    """A per-session handle onto a shared :class:`BatchCoalescer`.

    One instance per job: it stamps every batch with the job's tenant (for
    budget accounting) and client id (for per-job statistics), and its own
    usage meter records the job's view of the traffic — so per-job usage is
    attributable even though the backend round-trips are shared.

    Picklability: a process-pool worker cannot reach the parent's coalescer,
    so pickling drops it and the unpickled copy is a transparent pass-through
    to its own copy of ``inner`` — worker-side traffic is served locally, at
    worker-batch granularity, exactly like every other pickled backend.
    """

    def __init__(
        self,
        coalescer: BatchCoalescer | None,
        *,
        inner: LLMBackend | None = None,
        tenant: str | None = None,
        client: str | None = None,
    ):
        resolved = inner if inner is not None else (coalescer.backend if coalescer else None)
        if resolved is None:
            raise ValueError("CoalescingBackend needs a coalescer or an inner backend")
        super().__init__(model=f"coalesced({resolved.model})")
        self.coalescer = coalescer
        self.inner = resolved
        self.tenant = tenant
        self.client = client

    def store_profile(self) -> str:
        """Delegate to the wrapped backend: coalescing never changes completions.

        This is what lets a ``serve --store`` warm cache interoperate with
        the batch CLI's: both derive keys from the underlying analyst, so
        artifacts recorded by one are hits for the other.
        """
        return self.inner.store_profile()

    def complete_batch(self, requests: "Sequence[LLMRequest | Prompt]") -> list[Completion]:
        normalized = [LLMRequest.of(item) for item in requests]
        if not normalized:
            return []
        if self.coalescer is None:
            completions = self.inner.complete_batch(normalized)
        else:
            completions = self.coalescer.submit(
                normalized, tenant=self.tenant, client=self.client
            )
        self.usage.record_batch(
            (request.prompt, completion)
            for request, completion in zip(normalized, completions)
        )
        return completions

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state["coalescer"] = None
        return state


__all__ = ["BatchCoalescer", "CoalescingBackend"]
