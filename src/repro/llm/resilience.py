"""Retry policies, circuit breakers and the resilient backend wrapper.

The recovery half of the resilience layer (:mod:`repro.llm.faults` is the
failure half).  Three pieces:

* :class:`RetryPolicy` — capped exponential backoff whose jitter is a
  seeded hash of ``(key, attempt)``, not a wall-clock RNG, so two runs of
  the same workload back off identically and determinism rule 11 extends
  to the retry schedule itself;
* :class:`ResilientBackend` — wraps any backend with **batch-aware partial
  retry**: a failing ``complete_batch`` that attached batch state
  (:meth:`~repro.errors.BackendError.attach_batch_state`) has only its
  failed sub-requests re-sent, so served requests are never re-charged and
  budgets still charge distinct queries exactly once.  Permanent faults
  fail fast; transient faults retry until the policy's attempt cap, then
  re-raise the last error stamped with ``attempts``;
* :class:`CircuitBreaker` — a count-based closed → open → half-open state
  machine (no wall clocks: deterministic under any scheduler).  The
  :class:`~repro.llm.pool.BackendPool` keeps one per member and fails
  routed requests over to healthy members in declaration order.

Like every transparent wrapper, ``ResilientBackend`` delegates
``store_profile`` and *shares* the inner usage meter: retries change how
many round-trips carry a completion, never which completion — or how much
usage — a request produces.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..errors import BackendError, RateLimited
from .backend import Completion, LLMBackend, LLMRequest, Prompt
from .faults import request_digest


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with seeded deterministic jitter."""

    max_attempts: int = 4
    base_delay: float = 0.0
    max_delay: float = 0.25
    multiplier: float = 2.0
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    @classmethod
    def parse(cls, spec: str) -> "RetryPolicy":
        """Build a policy from a ``--retry`` CLI spec.

        Comma-separated ``key=value`` fields: ``attempts``, ``base`` and
        ``max`` (seconds), ``multiplier``, ``seed``.  A bare number is
        shorthand for ``attempts=N``.
        """
        fields: dict[str, object] = {}
        names = {
            "attempts": ("max_attempts", int),
            "base": ("base_delay", float),
            "max": ("max_delay", float),
            "multiplier": ("multiplier", float),
            "seed": ("jitter_seed", int),
        }
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, separator, value = part.partition("=")
            if not separator:
                key, value = "attempts", key
            key, value = key.strip(), value.strip()
            if key not in names:
                raise ValueError(f"bad retry spec {spec!r}: unknown field {key!r}")
            attr, cast = names[key]
            try:
                fields[attr] = cast(value)
            except ValueError:
                raise ValueError(f"bad retry spec {spec!r}: {key}={value!r}") from None
        return cls(**fields)  # type: ignore[arg-type]

    def describe(self) -> str:
        return (
            f"attempts={self.max_attempts},base={self.base_delay},"
            f"max={self.max_delay},seed={self.jitter_seed}"
        )

    def delay_for(self, attempt: int, key: str, *, retry_after: float = 0.0) -> float:
        """Backoff before retry number ``attempt`` (1 = first retry).

        The exponential base is jittered into ``[0.5, 1.0)`` of itself by a
        hash of ``(jitter_seed, key, attempt)`` — herd-thinning like random
        jitter, reproducible like everything else here.  ``retry_after``
        (a rate-limited backend's explicit ask) is a lower bound.
        """
        base = min(self.max_delay, self.base_delay * (self.multiplier ** max(0, attempt - 1)))
        payload = f"retry-jitter-v1\x00{self.jitter_seed}\x00{key}\x00{attempt}"
        draw = hashlib.sha256(payload.encode("utf-8")).digest()
        factor = 0.5 + (int.from_bytes(draw[:8], "big") / 2**64) * 0.5
        return max(base * factor, max(0.0, retry_after))


#: Circuit-breaker states.
BREAKER_CLOSED, BREAKER_OPEN, BREAKER_HALF_OPEN = "closed", "open", "half-open"


class CircuitBreaker:
    """Count-based breaker: open after N consecutive failures, probe, close.

    All transitions are driven by call counts, never wall clocks, so a
    breaker's behaviour is a pure function of its event sequence:

    * **closed** — requests flow; ``threshold`` consecutive failures open it;
    * **open** — requests are denied; every ``probe_interval``-th denial
      admits one **half-open** probe instead;
    * **half-open** — the probe is in flight; its success closes the
      breaker, its failure re-opens it (denial count reset).

    ``on_transition`` (if set) is called as ``(old_state, new_state)``
    under the breaker lock — keep it cheap and non-reentrant.
    """

    def __init__(self, threshold: int = 3, *, probe_interval: int = 4):
        if threshold < 1:
            raise ValueError(f"breaker threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.probe_interval = max(1, probe_interval)
        self.on_transition: Callable[[str, str], None] | None = None
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._denied_since_open = 0
        self._transitions = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def _move(self, new_state: str) -> None:
        old_state, self._state = self._state, new_state
        self._transitions += 1
        if self.on_transition is not None:
            self.on_transition(old_state, new_state)

    def allow(self) -> bool:
        """Whether the next request may go to the guarded backend."""
        with self._lock:
            if self._state == BREAKER_CLOSED:
                return True
            if self._state == BREAKER_OPEN:
                self._denied_since_open += 1
                if self._denied_since_open % self.probe_interval == 0:
                    self._move(BREAKER_HALF_OPEN)
                    return True
                return False
            # Half-open: exactly one probe in flight; hold everything else.
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state != BREAKER_CLOSED:
                self._denied_since_open = 0
                self._move(BREAKER_CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == BREAKER_HALF_OPEN:
                self._denied_since_open = 0
                self._move(BREAKER_OPEN)
            elif self._state == BREAKER_CLOSED and (
                self._consecutive_failures >= self.threshold
            ):
                self._denied_since_open = 0
                self._move(BREAKER_OPEN)

    def stats(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "transitions": self._transitions,
            }

    # Breakers ride inside pickled pools; the lock is recreated and the
    # observer dropped (it closes over parent-process state).
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_lock", None)
        state["on_transition"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


@dataclass
class RetryStats:
    """Worker-local retry accounting for one :class:`ResilientBackend`."""

    batches: int = 0
    retries: int = 0
    recovered_requests: int = 0
    exhausted: int = 0
    failed_fast: int = 0
    slept: float = 0.0
    by_error: dict = field(default_factory=dict)

    def summary(self) -> dict:
        return {
            "batches": self.batches,
            "retries": self.retries,
            "recovered_requests": self.recovered_requests,
            "exhausted": self.exhausted,
            "failed_fast": self.failed_fast,
            "slept": round(self.slept, 6),
            "by_error": dict(self.by_error),
        }


class ResilientBackend(LLMBackend):
    """Batch-aware retry wrapper over any backend.

    ``on_retry`` (if set) receives one dict per scheduled retry —
    ``{"attempt", "failed", "error", "delay"}`` — the serving layer's
    event-log hook.  ``sleep`` is injectable for tests and defaults to
    :func:`time.sleep`; with the default zero ``base_delay`` the policy
    sleeps only when a rate-limited fault asks for ``retry_after``.
    """

    def __init__(
        self,
        inner: LLMBackend,
        policy: RetryPolicy | None = None,
        *,
        sleep: Callable[[float], None] = time.sleep,
        on_retry: "Callable[[dict], None] | None" = None,
    ):
        super().__init__(model=f"resilient({inner.model})")
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self.on_retry = on_retry
        self.stats = RetryStats()
        self._sleep = sleep
        self._stats_lock = threading.Lock()

        # Transparent metering: the inner backend charges each distinct
        # request exactly once (on the attempt that serves it), and this
        # wrapper adds nothing on top.
        self.usage = inner.usage

    def store_profile(self) -> str:
        """Delegate: retries never change which completion a prompt yields."""
        return self.inner.store_profile()

    def remaining_budget(self) -> int | None:
        return self.inner.remaining_budget()

    def note_external_queries(self, queries: int) -> None:
        self.inner.note_external_queries(queries)

    def complete_batch(self, requests: "Sequence[LLMRequest | Prompt]") -> list[Completion]:
        normalized = [LLMRequest.of(item) for item in requests]
        if not normalized:
            return []
        with self._stats_lock:
            self.stats.batches += 1
        results: list[Completion | None] = [None] * len(normalized)
        pending = list(range(len(normalized)))
        attempt = 1
        while True:
            sub = [normalized[position] for position in pending]
            try:
                completions = self.inner.complete_batch(sub)
            except BackendError as error:
                pending, retry_after = self._absorb_failure(
                    error, sub, pending, results, attempt
                )
                key = request_digest(normalized[pending[0]])
                delay = self.policy.delay_for(attempt, key, retry_after=retry_after)
                self._note_retry(attempt, error, pending, delay)
                if delay > 0.0:
                    self._sleep(delay)
                attempt += 1
                continue
            for position, completion in zip(pending, completions):
                results[position] = completion
            if attempt > 1:
                with self._stats_lock:
                    self.stats.recovered_requests += len(pending)
            return results  # type: ignore[return-value]

    def _absorb_failure(
        self,
        error: BackendError,
        sub: list[LLMRequest],
        pending: list[int],
        results: "list[Completion | None]",
        attempt: int,
    ) -> tuple[list[int], float]:
        """Fold one failed attempt's partial outcome into ``results``.

        Returns the still-failed positions (into the original batch) and
        the largest ``retry_after`` any rate-limited sub-request asked for.
        Re-raises immediately — stamped with ``attempts`` — on permanent
        faults and on policy exhaustion.
        """
        served = error.served if error.served is not None else {}
        for relative, completion in served.items():
            results[pending[relative]] = completion
        failures = list(error.failed) if error.failed else []
        # Every unserved position must be accounted for: a raiser that
        # reported neither success nor failure for a position (no batch
        # state at all, or a gap) gets it retried, never silently dropped.
        covered = set(served) | {relative for relative, _ in failures}
        failures.extend(
            (relative, error) for relative in range(len(sub)) if relative not in covered
        )
        failures.sort(key=lambda entry: entry[0])
        if not failures:
            failures = [(0, error)]
        # Re-raises carry batch state re-mapped to *this* call's request
        # frame (the attach contract), covering everything served across
        # all attempts so far — an upstream retry/failover layer re-sends
        # only what is still missing.
        full_served = {
            position: completion
            for position, completion in enumerate(results)
            if completion is not None
        }
        full_failed = tuple((pending[relative], exc) for relative, exc in failures)
        permanent = [entry for entry in failures if not getattr(entry[1], "is_transient", False)]
        if permanent:
            with self._stats_lock:
                self.stats.failed_fast += 1
            fatal = permanent[0][1]
            fatal.attempts = attempt
            fatal.attach_batch_state(full_served, full_failed)
            raise fatal
        if attempt >= self.policy.max_attempts:
            with self._stats_lock:
                self.stats.exhausted += 1
            error.attempts = attempt
            error.attach_batch_state(full_served, full_failed)
            raise error
        retry_after = max(
            (getattr(entry[1], "retry_after", 0.0) for entry in failures),
            default=0.0,
        )
        if isinstance(error, RateLimited):
            retry_after = max(retry_after, error.retry_after)
        return [pending[relative] for relative, _ in failures], retry_after

    def _note_retry(
        self, attempt: int, error: BackendError, pending: list[int], delay: float
    ) -> None:
        with self._stats_lock:
            self.stats.retries += 1
            self.stats.slept += delay
            name = type(error).__name__
            self.stats.by_error[name] = self.stats.by_error.get(name, 0) + 1
        hook = self.on_retry
        if hook is not None:
            try:
                hook(
                    {
                        "attempt": attempt,
                        "failed": len(pending),
                        "error": f"{type(error).__name__}: {error}",
                        "delay": round(delay, 6),
                    }
                )
            except Exception:  # noqa: BLE001 - observers must not break serving
                pass

    # The sleep callable and retry hook close over parent-process state;
    # worker copies fall back to the defaults, counters start fresh.
    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state.pop("_stats_lock", None)
        state.pop("_sleep", None)
        state["on_retry"] = None
        state["stats"] = RetryStats()
        return state

    def __setstate__(self, state: dict) -> None:
        super().__setstate__(state)
        self._stats_lock = threading.Lock()
        self._sleep = time.sleep


def resilient_analyst(
    backend: LLMBackend,
    *,
    fault_plan: str | None = None,
    retry_spec: str | None = None,
) -> LLMBackend:
    """Apply the configured fault/retry wrappers around an analyst backend.

    ``fault_plan`` and ``retry_spec`` are the raw ``--fault-plan`` /
    ``--retry`` CLI strings (hashable config fields).  Injecting faults
    without a retry policy would make runs fail by design, so a fault plan
    implies the default :class:`RetryPolicy` unless ``retry_spec`` is
    ``"off"`` (targeted failure tests).
    """
    from .faults import FaultPlan, FaultyBackend

    if fault_plan:
        backend = FaultyBackend(backend, FaultPlan.parse(fault_plan))
    if retry_spec == "off":
        return backend
    if retry_spec or fault_plan:
        policy = RetryPolicy.parse(retry_spec) if retry_spec else RetryPolicy()
        backend = ResilientBackend(backend, policy)
    return backend


def wire_resilience_events(backend: LLMBackend, emit: "Callable[[str, dict], None]") -> None:
    """Attach event-log hooks down a wrapper chain (serve ``--events``).

    Walks ``inner`` links from the outermost backend: every
    :class:`ResilientBackend` gets an ``on_retry`` hook and every pool
    member breaker an ``on_transition`` hook, each forwarding to
    ``emit(event_type, fields)``.
    """
    from .pool import BackendPool

    seen: set[int] = set()
    node: LLMBackend | None = backend
    while node is not None and id(node) not in seen:
        seen.add(id(node))
        if isinstance(node, ResilientBackend):
            node.on_retry = lambda info: emit("backend_retry", dict(info))
        if isinstance(node, BackendPool):
            for name, breaker in getattr(node, "breakers", {}).items():
                def observer(old: str, new: str, member: str = name) -> None:
                    emit("breaker_transition", {"member": member, "from": old, "to": new})

                breaker.on_transition = observer
        node = getattr(node, "inner", None)


__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "ResilientBackend",
    "RetryPolicy",
    "RetryStats",
    "resilient_analyst",
    "wire_resilience_events",
]
